"""Tests for crawl pacing against the simulated clock."""

import pytest

from repro.crawler.politeness import Pacer, PolitenessPolicy
from repro.osn.clock import SimClock


class TestBeforeRequest:
    def test_sleeps_at_least_base_delay(self):
        clock = SimClock()
        pacer = Pacer(clock, PolitenessPolicy(base_delay_seconds=2.0, jitter_seconds=0))
        pacer.before_request()
        assert clock.elapsed_seconds == pytest.approx(2.0)

    def test_jitter_adds_bounded_extra(self):
        clock = SimClock()
        pacer = Pacer(clock, PolitenessPolicy(base_delay_seconds=1.0, jitter_seconds=2.0))
        for _ in range(50):
            before = clock.elapsed_seconds
            pacer.before_request()
            delta = clock.elapsed_seconds - before
            assert 1.0 <= delta <= 3.0

    def test_total_slept_tracked(self):
        clock = SimClock()
        pacer = Pacer(clock, PolitenessPolicy(base_delay_seconds=1.0, jitter_seconds=0))
        for _ in range(5):
            pacer.before_request()
        assert pacer.total_slept == pytest.approx(5.0)

    def test_no_real_time_consumed(self):
        """The whole point: politeness costs simulated, not wall, time."""
        import time

        clock = SimClock()
        pacer = Pacer(clock, PolitenessPolicy(base_delay_seconds=60.0, jitter_seconds=0))
        start = time.monotonic()
        for _ in range(100):
            pacer.before_request()
        assert time.monotonic() - start < 1.0
        assert clock.elapsed_seconds == pytest.approx(6000.0)


class TestBackoff:
    def test_backoff_escalates_geometrically(self):
        clock = SimClock()
        pacer = Pacer(clock, PolitenessPolicy(backoff_factor=2.0))
        pacer.on_throttle(10.0)
        first = clock.elapsed_seconds
        pacer.on_throttle(10.0)
        second = clock.elapsed_seconds - first
        assert first == pytest.approx(10.0)
        assert second == pytest.approx(20.0)

    def test_backoff_capped(self):
        clock = SimClock()
        pacer = Pacer(
            clock, PolitenessPolicy(backoff_factor=10.0, max_backoff_seconds=50.0)
        )
        for _ in range(5):
            pacer.on_throttle(30.0)
        assert clock.elapsed_seconds <= 5 * 50.0

    def test_success_resets_escalation(self):
        clock = SimClock()
        pacer = Pacer(clock, PolitenessPolicy(backoff_factor=2.0))
        pacer.on_throttle(10.0)
        pacer.on_success()
        before = clock.elapsed_seconds
        pacer.on_throttle(10.0)
        assert clock.elapsed_seconds - before == pytest.approx(10.0)


class TestValidation:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            PolitenessPolicy(base_delay_seconds=-1).validate()

    def test_backoff_below_one_rejected(self):
        with pytest.raises(ValueError):
            PolitenessPolicy(backoff_factor=0.5).validate()

    def test_negative_max_backoff_rejected(self):
        with pytest.raises(ValueError, match="max_backoff_seconds"):
            PolitenessPolicy(base_delay_seconds=0, max_backoff_seconds=-5).validate()

    def test_max_backoff_below_base_delay_rejected(self):
        with pytest.raises(ValueError, match="max_backoff_seconds"):
            PolitenessPolicy(base_delay_seconds=10.0, max_backoff_seconds=5.0).validate()

    def test_max_backoff_equal_to_base_delay_allowed(self):
        PolitenessPolicy(base_delay_seconds=5.0, max_backoff_seconds=5.0).validate()

    def test_pacer_construction_enforces_validation(self):
        with pytest.raises(ValueError, match="max_backoff_seconds"):
            Pacer(SimClock(), PolitenessPolicy(max_backoff_seconds=-1.0))


class TestThrottleReturnsPenalty:
    def test_on_throttle_returns_seconds_slept(self):
        clock = SimClock()
        pacer = Pacer(
            clock, PolitenessPolicy(backoff_factor=2.0, max_backoff_seconds=15.0)
        )
        assert pacer.on_throttle(10.0) == pytest.approx(10.0)
        # Second consecutive throttle escalates to 20s but is capped at 15.
        assert pacer.on_throttle(10.0) == pytest.approx(15.0)
        assert clock.elapsed_seconds == pytest.approx(25.0)
