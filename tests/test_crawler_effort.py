"""Tests for measurement-effort accounting (Table 3's categories)."""

import pytest

from repro.crawler.effort import (
    CATEGORY_FRIEND_LISTS,
    CATEGORY_PROFILES,
    CATEGORY_SEEDS,
    EffortCounter,
    EffortReport,
    predicted_requests,
)


class TestCounter:
    def test_records_by_category(self):
        counter = EffortCounter()
        counter.record(CATEGORY_SEEDS, 1)
        counter.record(CATEGORY_PROFILES, 1)
        counter.record(CATEGORY_PROFILES, 2)
        assert counter.count(CATEGORY_SEEDS) == 1
        assert counter.count(CATEGORY_PROFILES) == 2
        assert counter.total == 3

    def test_unknown_category_goes_to_other(self):
        counter = EffortCounter()
        counter.record("weird", 1)
        report = counter.report()
        assert report.other_requests == 1

    def test_accounts_used_distinct(self):
        counter = EffortCounter()
        for account in (1, 2, 2, 3):
            counter.record(CATEGORY_SEEDS, account)
        assert counter.report().accounts_used == 3

    def test_report_totals(self):
        counter = EffortCounter()
        counter.record(CATEGORY_SEEDS, 1)
        counter.record(CATEGORY_PROFILES, 1)
        counter.record(CATEGORY_FRIEND_LISTS, 1)
        report = counter.report()
        assert report.total == 3
        assert report.seed_requests == 1
        assert report.profile_requests == 1
        assert report.friend_list_requests == 1


class TestReportArithmetic:
    def test_add_combines(self):
        a = EffortReport(2, 10, 20, 30)
        b = EffortReport(4, 1, 2, 3)
        combined = a + b
        assert combined.accounts_used == 4
        assert combined.seed_requests == 11
        assert combined.total == 66


class TestAnalyticFormula:
    def test_matches_paper_structure(self):
        # A*R + |S| + |C| * f / p
        value = predicted_requests(
            accounts=2,
            requests_per_account_for_seeds=17,
            seed_count=352,
            core_size=18,
            mean_friends=400,
            page_size=20,
        )
        assert value == pytest.approx(2 * 17 + 352 + 18 * 20)

    def test_zero_page_size_rejected(self):
        with pytest.raises(ValueError):
            predicted_requests(1, 1, 1, 1, 1, page_size=0)
