"""Tests for the COPPA age-lying model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osn.profile import Gender, Name
from repro.worldgen.config import LyingConfig
from repro.worldgen.lying import (
    expected_registered_adult_fraction,
    plan_registration,
)
from repro.worldgen.population import Person, Role

OBS = 2012.25


def student(birth_year_fraction: float) -> Person:
    return Person(
        person_id=0,
        name=Name("Test", "Student"),
        gender=Gender.FEMALE,
        birth_year_fraction=birth_year_fraction,
        role=Role.STUDENT,
        city="Springfield",
        cohort_year=2015,
    )


class TestPlanRegistration:
    def test_always_lies_when_forced(self):
        config = LyingConfig(p_lie_if_under_13=1.0)
        rng = random.Random(1)
        plan = plan_registration(student(2000.0), config, OBS, rng)
        assert plan is not None
        assert plan.lied
        assert plan.registered_birthday.year < 2000

    def test_never_lies_when_disabled_probability(self):
        config = LyingConfig(p_lie_if_under_13=0.0)
        for seed in range(20):
            plan = plan_registration(student(1998.0), config, OBS, random.Random(seed))
            if plan is not None:
                assert not plan.lied
                assert plan.registered_birthday.year == 1998

    def test_non_liar_defers_until_13(self):
        config = LyingConfig(p_lie_if_under_13=0.0)
        plan = plan_registration(student(1998.0), config, OBS, random.Random(3))
        if plan is not None and plan.creation_year > 2011.0:
            age_at_creation = plan.creation_year - 1998.0
            assert age_at_creation >= 13.0

    def test_without_coppa_truthful_and_young(self):
        config = LyingConfig(enabled=False)
        plans = [
            plan_registration(student(2000.5), config, OBS, random.Random(s))
            for s in range(30)
        ]
        assert all(p is not None for p in plans)
        assert all(not p.lied for p in plans)
        assert all(p.registered_birthday.year == 2000 for p in plans)
        # joins at the natural tween age even though under 13
        ages = [p.creation_year - 2000.5 for p in plans]
        assert min(ages) < 13.0

    def test_too_young_non_liar_has_no_account(self):
        config = LyingConfig(p_lie_if_under_13=0.0)
        # Born late 2000: turns 13 after the observation date.
        results = [
            plan_registration(student(2000.9), config, OBS, random.Random(s))
            for s in range(30)
        ]
        assert all(p is None for p in results)

    def test_adult_joiner_truthful(self):
        config = LyingConfig()
        person = student(1985.0)
        plan = plan_registration(person, config, OBS, random.Random(2))
        assert plan is not None
        assert not plan.lied
        assert plan.creation_year >= config.earliest_creation_year

    def test_creation_never_after_observation(self):
        config = LyingConfig()
        for seed in range(50):
            plan = plan_registration(student(1997.0), config, OBS, random.Random(seed))
            if plan is not None:
                assert plan.creation_year < OBS

    def test_registered_age_at(self):
        config = LyingConfig(p_lie_if_under_13=1.0, claim_13_weight=1.0,
                             claim_midteen_weight=0.0, claim_adult_weight=0.0)
        plan = plan_registration(student(1999.0), config, OBS, random.Random(7))
        claimed_at_creation = plan.registered_age_at(plan.creation_year)
        assert 13.0 <= claimed_at_creation <= 13.6


class TestClaimWeights:
    def test_normalised(self):
        w = LyingConfig(claim_13_weight=2, claim_midteen_weight=1, claim_adult_weight=1)
        assert sum(w.claim_weights()) == pytest.approx(1.0)

    def test_zero_weights_rejected(self):
        bad = LyingConfig(claim_13_weight=0, claim_midteen_weight=0, claim_adult_weight=0)
        with pytest.raises(ValueError):
            bad.claim_weights()


class TestExpectedAdultFraction:
    def test_disabled_matches_real_age(self):
        config = LyingConfig(enabled=False)
        assert expected_registered_adult_fraction(config, 19.0, 5.0) == 1.0
        assert expected_registered_adult_fraction(config, 15.0, 5.0) == 0.0

    def test_adult_claims_always_count(self):
        config = LyingConfig(
            p_lie_if_under_13=1.0,
            claim_13_weight=0.0,
            claim_midteen_weight=0.0,
            claim_adult_weight=1.0,
        )
        assert expected_registered_adult_fraction(config, 15.0, 1.0) == pytest.approx(1.0)

    def test_monotone_in_years_since_join(self):
        config = LyingConfig()
        early = expected_registered_adult_fraction(config, 15.0, 1.0)
        late = expected_registered_adult_fraction(config, 15.0, 6.0)
        assert late >= early

    @given(st.floats(13.0, 18.0), st.floats(0.0, 8.0))
    @settings(max_examples=40)
    def test_is_a_probability(self, age, years):
        value = expected_registered_adult_fraction(LyingConfig(), age, years)
        assert 0.0 <= value <= 1.0


class TestEmpiricalRates:
    def test_lying_rate_close_to_config(self):
        config = LyingConfig(p_lie_if_under_13=0.8)
        rng = random.Random(42)
        lied = joined_young = 0
        for _ in range(2000):
            plan = plan_registration(student(1999.5), config, OBS, rng)
            if plan is None:
                continue
            if plan.creation_year - 1999.5 < 13.0:
                joined_young += 1
                if plan.lied:
                    lied += 1
        assert joined_young > 0
        assert lied / joined_young == pytest.approx(1.0, abs=0.05)
