"""Tests for core-set extraction (C', C, C_i)."""

import pytest

from repro.core.coreset import CoreSet, claimed_graduation_year, extract_claims
from repro.osn.profile import SchoolAffiliation
from repro.osn.view import ProfileView


def view_claiming(uid, school_id, year):
    return ProfileView(
        user_id=uid,
        name=f"User {uid}",
        high_schools=(SchoolAffiliation(school_id, "Target High", year),),
    )


class TestClaimedGraduationYear:
    def test_current_year_counts(self):
        assert claimed_graduation_year(view_claiming(1, 5, 2012), 5, 2012) == 2012

    def test_three_years_out_counts(self):
        assert claimed_graduation_year(view_claiming(1, 5, 2015), 5, 2012) == 2015

    def test_four_years_out_rejected(self):
        assert claimed_graduation_year(view_claiming(1, 5, 2016), 5, 2012) is None

    def test_past_year_rejected(self):
        assert claimed_graduation_year(view_claiming(1, 5, 2011), 5, 2012) is None

    def test_wrong_school_rejected(self):
        assert claimed_graduation_year(view_claiming(1, 6, 2013), 5, 2012) is None

    def test_missing_year_rejected(self):
        assert claimed_graduation_year(view_claiming(1, 5, None), 5, 2012) is None

    def test_no_schools_rejected(self):
        view = ProfileView(user_id=1, name="Nobody")
        assert claimed_graduation_year(view, 5, 2012) is None

    def test_custom_horizon(self):
        assert claimed_graduation_year(view_claiming(1, 5, 2016), 5, 2012, horizon_years=5) == 2016


class TestExtractClaims:
    def test_extracts_only_current_claims(self):
        profiles = {
            1: view_claiming(1, 5, 2013),
            2: view_claiming(2, 5, 2009),
            3: view_claiming(3, 7, 2013),
            4: ProfileView(user_id=4, name="Blank"),
        }
        assert extract_claims(profiles, 5, 2012) == {1: 2013}


class TestCoreSet:
    @pytest.fixture()
    def core(self):
        core = CoreSet(school_id=5, current_year=2012)
        core.add_core(10, 2012, [100, 101])
        core.add_core(11, 2012, [101, 102])
        core.add_core(12, 2014, [103])
        core.add_claimed(13, 2015)  # friend list hidden: C' only
        return core

    def test_years_are_four_cohorts(self, core):
        assert core.years == [2012, 2013, 2014, 2015]

    def test_core_subset_of_claimed(self, core):
        assert set(core.core) <= set(core.claimed)

    def test_sizes(self, core):
        assert core.core_size == 3
        assert core.claimed_size == 4

    def test_core_by_year(self, core):
        grouped = core.core_by_year()
        assert grouped[2012] == {10, 11}
        assert grouped[2013] == set()
        assert grouped[2014] == {12}

    def test_year_sizes(self, core):
        assert core.year_sizes() == {2012: 2, 2013: 0, 2014: 1, 2015: 0}

    def test_candidate_set_excludes_core(self, core):
        core.add_core(14, 2013, [10, 200])
        candidates = core.candidate_set()
        assert 10 not in candidates
        assert candidates == {100, 101, 102, 103, 200}

    def test_copy_is_deep_enough(self, core):
        clone = core.copy()
        clone.add_core(99, 2015, [1])
        clone.friend_lists[10].append(999)
        assert 99 not in core.core
        assert 999 not in core.friend_lists[10]
