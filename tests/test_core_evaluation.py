"""Tests for full and partial ground-truth evaluation."""

import pytest

from repro.core.api import make_client
from repro.core.evaluation import (
    collect_test_users,
    evaluate_full,
    evaluate_partial,
    sweep_full,
    sweep_partial,
)


class TestFullEvaluation:
    def test_accounting_identity(self, tiny_attack, tiny_world):
        truth = tiny_world.ground_truth()
        e = evaluate_full(tiny_attack, truth, 60)
        assert e.found + e.false_positives == e.selected
        assert 0 <= e.correct_year <= e.found

    def test_found_fraction_bounded(self, tiny_attack, tiny_world):
        e = evaluate_full(tiny_attack, tiny_world.ground_truth(), 60)
        assert 0.0 <= e.found_fraction <= 1.0
        assert 0.0 <= e.false_positive_rate <= 1.0

    def test_attack_beats_chance(self, tiny_attack, tiny_world):
        """The headline: most students found at t ~ school size."""
        truth = tiny_world.ground_truth()
        e = evaluate_full(tiny_attack, truth, 120)
        assert e.found_fraction > 0.5

    def test_year_accuracy_high(self, tiny_attack, tiny_world):
        e = evaluate_full(tiny_attack, tiny_world.ground_truth(), 120)
        assert e.year_accuracy > 0.7

    def test_found_over_correct_format(self, tiny_attack, tiny_world):
        e = evaluate_full(tiny_attack, tiny_world.ground_truth(), 60)
        assert e.found_over_correct == f"{e.found}/{e.correct_year}"

    def test_sweep_monotone_found(self, tiny_attack, tiny_world):
        truth = tiny_world.ground_truth()
        evals = sweep_full(tiny_attack, truth, [30, 60, 90, 120])
        founds = [e.found for e in evals]
        assert founds == sorted(founds)

    def test_sweep_fp_monotone(self, tiny_attack, tiny_world):
        truth = tiny_world.ground_truth()
        evals = sweep_full(tiny_attack, truth, [30, 60, 90, 120])
        fps = [e.false_positives for e in evals]
        assert fps == sorted(fps)

    def test_default_threshold_used(self, tiny_attack, tiny_world):
        e = evaluate_full(tiny_attack, tiny_world.ground_truth())
        assert e.threshold == tiny_attack.threshold


class TestPartialEvaluation:
    @pytest.fixture(scope="class")
    def test_users(self, tiny_world, tiny_attack):
        client = make_client(tiny_world, 2)
        return collect_test_users(
            client, tiny_world.school().school_id, exclude=tiny_attack.seeds
        )

    def test_test_users_disjoint_from_seeds(self, test_users, tiny_attack):
        assert not (set(test_users) & set(tiny_attack.seeds))

    def test_test_users_claim_current_years(self, test_users, tiny_attack):
        years = set(tiny_attack.core.years)
        assert all(year in years for year in test_users.values())

    def test_estimator_formula(self, tiny_attack, tiny_world, test_users):
        if not test_users:
            pytest.skip("no disjoint test users in this tiny world")
        school_size = tiny_world.school().enrollment_hint
        pe = evaluate_partial(tiny_attack, test_users, school_size, t=100)
        core = tiny_attack.extended_core_size
        z = pe.test_found
        expected = core + z / len(test_users) * (school_size - core)
        assert pe.estimated_students_found == pytest.approx(expected)

    def test_estimates_bounded(self, tiny_attack, tiny_world, test_users):
        if not test_users:
            pytest.skip("no disjoint test users in this tiny world")
        pe = evaluate_partial(tiny_attack, test_users, 120, t=100)
        assert pe.estimated_false_positives >= 0
        assert 0.0 <= pe.estimated_false_positive_rate <= 1.0

    def test_empty_test_users_rejected(self, tiny_attack):
        with pytest.raises(ValueError):
            evaluate_partial(tiny_attack, {}, 120, t=50)

    def test_sweep_partial_lengths(self, tiny_attack, test_users):
        if not test_users:
            pytest.skip("no disjoint test users in this tiny world")
        evals = sweep_partial(tiny_attack, test_users, 120, [40, 80, 120])
        assert [e.threshold for e in evals] == [40, 80, 120]


class TestEstimatorAgreesWithTruth:
    def test_partial_tracks_full_on_hs1(self, hs1_world, hs1_attack):
        """The Section-5.5 estimator should roughly agree with exact
        evaluation when both are available (our worlds give us both)."""
        client = make_client(hs1_world, 2)
        test_users = collect_test_users(
            client, hs1_world.school().school_id, exclude=hs1_attack.seeds
        )
        if len(test_users) < 5:
            pytest.skip("too few disjoint test users")
        truth = hs1_world.ground_truth()
        full = evaluate_full(hs1_attack, truth, 400)
        partial = evaluate_partial(
            hs1_attack, test_users, truth.on_osn_count, t=400
        )
        assert partial.estimated_found_fraction == pytest.approx(
            full.found_fraction, abs=0.25
        )
