"""The concurrency-safety rules: PURE001, SHARE001, ASYNC001, ASYNC002.

Fixture projects live under ``tmp_path/repro/...`` so
:func:`~repro.lint.module_name_for` derives real ``repro.*`` dotted
names and entry-point discovery finds the fixture's
``HtmlFrontend``/``CrawlClient`` exactly as it finds the shipped ones.
Every firing fixture violates through a *two-hop* interprocedural
chain — no single function both is an entry point and mutates — so the
tests pin the effect propagation, not just the per-function scan.
"""

from __future__ import annotations

import textwrap

from repro.lint import LintCache, all_rules, lint_paths, rule_signature


def _rules(*ids):
    return [rule for rule in all_rules() if rule.rule_id in ids]


def _project(tmp_path, files):
    for relative, content in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return str(tmp_path / "repro")


# ----------------------------------------------------------------------
# PURE001: the serve path must not mutate world state
# ----------------------------------------------------------------------

#: ``get`` never writes anything itself; the mutation hides two calls
#: deep (get -> Network.search -> Network._reindex), crossing a class
#: boundary through an annotated constructor attribute.
LAZY_REBUILD = {
    "repro/__init__.py": "",
    "repro/osn/__init__.py": "",
    "repro/osn/network.py": """
        class Network:
            def __init__(self) -> None:
                self.members = {}
                self._dirty = True

            def search(self, path):
                self._reindex()
                return self.members.get(path)

            def _reindex(self):
                self.members["seen"] = 1
                self._dirty = False
        """,
    "repro/osn/frontend.py": """
        from repro.osn.network import Network


        class HtmlFrontend:
            def __init__(self, network: Network) -> None:
                self.network = network

            def get(self, path):
                return self.network.search(path)
        """,
}

#: The sanctioned fix: indexing happens eagerly at registration, the
#: serve path only reads.
EAGER_REBUILD = {
    "repro/__init__.py": "",
    "repro/osn/__init__.py": "",
    "repro/osn/network.py": """
        class Network:
            def __init__(self) -> None:
                self.members = {}

            def register(self, path):
                self.members[path] = 1

            def search(self, path):
                return self.members.get(path)
        """,
    "repro/osn/frontend.py": """
        from repro.osn.network import Network


        class HtmlFrontend:
            def __init__(self, network: Network) -> None:
                self.network = network

            def get(self, path):
                return self.network.search(path)
        """,
}


class TestPure001:
    def test_two_hop_lazy_rebuild_is_caught(self, tmp_path):
        root = _project(tmp_path, LAZY_REBUILD)
        report = lint_paths([root], rules=_rules("PURE001"))
        assert {f.rule for f in report.findings} == {"PURE001"}
        finding = report.findings[0]
        assert finding.path.endswith("network.py")
        assert "HtmlFrontend.get" in finding.message
        assert "_reindex" in finding.message  # the chain names the culprit

    def test_eager_indexing_is_clean(self, tmp_path):
        root = _project(tmp_path, EAGER_REBUILD)
        report = lint_paths([root], rules=_rules("PURE001"))
        assert report.findings == []

    def test_write_path_may_mutate_world(self, tmp_path):
        files = dict(LAZY_REBUILD)
        files["repro/osn/frontend.py"] = """
            from repro.osn.network import Network


            class HtmlFrontend:
                def __init__(self, network: Network) -> None:
                    self.network = network

                def get(self, path):
                    return self.network.members.get(path)

                def post(self, path):
                    return self.network.search(path)
            """
        root = _project(tmp_path, files)
        report = lint_paths([root], rules=_rules("PURE001"))
        assert report.findings == []  # only the read path is policed


# ----------------------------------------------------------------------
# SHARE001: cross-session shared mutable state needs an owner
# ----------------------------------------------------------------------

#: get and post both reach SessionStore.note, which mutates a dict on
#: an object shared through the frontend — two entry points, two hops.
SHARED_COUNTER = {
    "repro/__init__.py": "",
    "repro/session.py": """
        class SessionStore:
            def __init__(self) -> None:
                self.counts = {}

            def note(self, uid):
                self.counts[uid] = self.counts.get(uid, 0) + 1
        """,
    "repro/osn/__init__.py": "",
    "repro/osn/frontend.py": """
        from repro.session import SessionStore


        class HtmlFrontend:
            def __init__(self, store: SessionStore) -> None:
                self.store = store

            def get(self, uid):
                self.store.note(uid)
                return uid

            def post(self, uid):
                self.store.note(uid)
                return uid
        """,
}


def _with_annotation(files):
    annotated = dict(files)
    annotated["repro/session.py"] = """
        class SessionStore:
            def __init__(self) -> None:
                self.counts = {}

            def note(self, uid):
                self.counts[uid] = self.counts.get(uid, 0) + 1  # repro-lint: shared(SessionStore) -- one counter across sessions by design
        """
    return annotated


class TestShare001:
    def test_two_hop_shared_write_is_caught(self, tmp_path):
        root = _project(tmp_path, SHARED_COUNTER)
        report = lint_paths([root], rules=_rules("SHARE001"))
        assert {f.rule for f in report.findings} == {"SHARE001"}
        finding = report.findings[0]
        assert finding.path.endswith("session.py")
        assert "2 session entry points" in finding.message
        assert "shared(Owner)" in finding.message

    def test_shared_owner_annotation_silences_it(self, tmp_path):
        root = _project(tmp_path, _with_annotation(SHARED_COUNTER))
        report = lint_paths([root], rules=_rules("SHARE001"))
        assert report.findings == []

    def test_single_entry_state_is_not_shared(self, tmp_path):
        files = dict(SHARED_COUNTER)
        files["repro/osn/frontend.py"] = """
            from repro.session import SessionStore


            class HtmlFrontend:
                def __init__(self, store: SessionStore) -> None:
                    self.store = store

                def get(self, uid):
                    self.store.note(uid)
                    return uid

                def post(self, uid):
                    return uid
            """
        root = _project(tmp_path, files)
        report = lint_paths([root], rules=_rules("SHARE001"))
        assert report.findings == []

    def test_module_global_write_is_always_shared(self, tmp_path):
        files = dict(SHARED_COUNTER)
        files["repro/session.py"] = """
            TOTAL = 0


            class SessionStore:
                def note(self, uid):
                    global TOTAL
                    TOTAL = TOTAL + 1
            """
        root = _project(tmp_path, files)
        report = lint_paths([root], rules=_rules("SHARE001"))
        assert {f.rule for f in report.findings} == {"SHARE001"}
        assert "TOTAL" in report.findings[0].message


# ----------------------------------------------------------------------
# ASYNC001: no blocking calls on async paths
# ----------------------------------------------------------------------

#: The blocking call sits in a sync helper one hop below the coroutine.
BLOCKING_BACKOFF = {
    "repro/__init__.py": "",
    "repro/crawler/__init__.py": "",
    "repro/crawler/aio.py": """
        import time


        def backoff(seconds):
            time.sleep(seconds)


        async def fetch(page):
            backoff(1.0)
            return page
        """,
}

SIMCLOCK_BACKOFF = {
    "repro/__init__.py": "",
    "repro/crawler/__init__.py": "",
    "repro/crawler/aio.py": """
        def backoff(clock, seconds):
            clock.sleep(seconds)


        async def fetch(clock, page):
            backoff(clock, 1.0)
            return page
        """,
}


class TestAsync001:
    def test_two_hop_blocking_call_is_caught(self, tmp_path):
        root = _project(tmp_path, BLOCKING_BACKOFF)
        report = lint_paths([root], rules=_rules("ASYNC001"))
        assert {f.rule for f in report.findings} == {"ASYNC001"}
        finding = report.findings[0]
        assert "time.sleep" in finding.message
        assert "fetch" in finding.message
        assert "backoff" in finding.message  # the chain is spelled out

    def test_simclock_sleep_is_cooperative(self, tmp_path):
        root = _project(tmp_path, SIMCLOCK_BACKOFF)
        report = lint_paths([root], rules=_rules("ASYNC001"))
        assert report.findings == []

    def test_blocking_call_in_sync_only_code_is_fine(self, tmp_path):
        files = {
            "repro/__init__.py": "",
            "repro/crawler/__init__.py": "",
            "repro/crawler/aio.py": """
                import time


                def backoff(seconds):
                    time.sleep(seconds)
                """,
        }
        root = _project(tmp_path, files)
        report = lint_paths([root], rules=_rules("ASYNC001"))
        assert report.findings == []


# ----------------------------------------------------------------------
# ASYNC002: awaits under locks, mutation across awaits
# ----------------------------------------------------------------------

AWAIT_UNDER_LOCK = {
    "repro/__init__.py": "",
    "repro/crawler/__init__.py": "",
    "repro/crawler/aio.py": """
        import threading


        class Cache:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self.data = {}

            async def refresh(self, fetch):
                with self._lock:
                    value = await fetch()
                    self.data["v"] = value
        """,
}

MUTATE_ACROSS_AWAIT = {
    "repro/__init__.py": "",
    "repro/crawler/__init__.py": "",
    "repro/crawler/aio.py": """
        class Tally:
            def __init__(self) -> None:
                self.count = 0

            async def bump(self, flush):
                count = self.count
                await flush()
                self.count = count + 1
        """,
}

REREAD_AFTER_AWAIT = {
    "repro/__init__.py": "",
    "repro/crawler/__init__.py": "",
    "repro/crawler/aio.py": """
        class Tally:
            def __init__(self) -> None:
                self.count = 0

            async def bump(self, flush):
                await flush()
                self.count = self.count + 1
        """,
}


class TestAsync002:
    def test_await_while_holding_lock_is_caught(self, tmp_path):
        root = _project(tmp_path, AWAIT_UNDER_LOCK)
        report = lint_paths([root], rules=_rules("ASYNC002"))
        assert any(
            "holding lock" in f.message and "self._lock" in f.message
            for f in report.findings
        )

    def test_stale_read_written_after_await_is_caught(self, tmp_path):
        root = _project(tmp_path, MUTATE_ACROSS_AWAIT)
        report = lint_paths([root], rules=_rules("ASYNC002"))
        assert {f.rule for f in report.findings} == {"ASYNC002"}
        assert any("self.count" in f.message for f in report.findings)

    def test_reread_after_await_is_clean(self, tmp_path):
        root = _project(tmp_path, REREAD_AFTER_AWAIT)
        report = lint_paths([root], rules=_rules("ASYNC002"))
        assert report.findings == []


# ----------------------------------------------------------------------
# Cache: the conc rules ride the warm path
# ----------------------------------------------------------------------

class TestConcCache:
    def test_warm_run_reparses_nothing_and_agrees(self, tmp_path):
        root = _project(tmp_path, SHARED_COUNTER)
        cache_path = str(tmp_path / "cache.json")
        rules = all_rules()
        signature = rule_signature([r.rule_id for r in rules])

        cold = lint_paths(
            [root], rules=rules, cache=LintCache(cache_path, signature)
        )
        warm = lint_paths(
            [root], rules=rules, cache=LintCache(cache_path, signature)
        )
        assert cold.files_reparsed == cold.files_checked > 0
        assert warm.files_reparsed == 0
        assert warm.cache_hits == warm.files_checked
        # Whole-program conc findings reproduce from cached summaries.
        assert [
            (f.rule, f.line, f.message) for f in warm.findings
        ] == [(f.rule, f.line, f.message) for f in cold.findings]
        assert any(f.rule == "SHARE001" for f in warm.findings)

    def test_edit_invalidates_only_the_edited_file(self, tmp_path):
        root = _project(tmp_path, SHARED_COUNTER)
        cache_path = str(tmp_path / "cache.json")
        rules = all_rules()
        signature = rule_signature([r.rule_id for r in rules])
        lint_paths([root], rules=rules, cache=LintCache(cache_path, signature))

        session = tmp_path / "repro" / "session.py"
        session.write_text(
            session.read_text(encoding="utf-8") + "\n# touched\n",
            encoding="utf-8",
        )
        warm = lint_paths(
            [root], rules=rules, cache=LintCache(cache_path, signature)
        )
        assert warm.files_reparsed == 1
        assert warm.cache_hits == warm.files_checked - 1
