"""Tests for interaction-graph scoring (the paper's future-work idea)."""

import pytest

from repro.core.coreset import CoreSet
from repro.core.interaction import (
    interaction_counts,
    score_with_interactions,
    summarize_interactions,
)
from repro.core.scoring import score_candidates
from repro.osn.view import ProfileView, WallPostView


def make_core_and_profiles():
    core = CoreSet(school_id=1, current_year=2012)
    core.add_core(10, 2012, [100, 101])
    core.add_core(11, 2013, [100, 102])
    profiles = {
        10: ProfileView(
            user_id=10,
            name="Core A",
            wall_post_count=3,
            wall_posts=(
                WallPostView(100, "hey"),
                WallPostView(100, "yo"),
                WallPostView(999, "spam"),
            ),
        ),
        11: ProfileView(
            user_id=11,
            name="Core B",
            wall_post_count=1,
            wall_posts=(WallPostView(100, "hi"),),
        ),
    }
    return core, profiles


class TestInteractionCounts:
    def test_counts_posts_by_author(self):
        core, profiles = make_core_and_profiles()
        counts = interaction_counts(core, profiles)
        assert counts[100] == 3
        assert counts[999] == 1
        assert 101 not in counts

    def test_self_posts_ignored(self):
        core = CoreSet(school_id=1, current_year=2012)
        core.add_core(10, 2012, [100])
        profiles = {
            10: ProfileView(
                user_id=10, name="C", wall_posts=(WallPostView(10, "me"),)
            )
        }
        assert interaction_counts(core, profiles) == {}

    def test_missing_profiles_skipped(self):
        core, _ = make_core_and_profiles()
        assert interaction_counts(core, {}) == {}


class TestBoostedScoring:
    def test_alpha_zero_is_paper_ranking(self):
        core, profiles = make_core_and_profiles()
        base = score_candidates(core)
        boosted = score_with_interactions(core, profiles, alpha=0.0)
        assert {u: s.score for u, s in base.scores.items()} == {
            u: s.score for u, s in boosted.scores.items()
        }

    def test_interacting_candidate_boosted(self):
        core, profiles = make_core_and_profiles()
        base = score_candidates(core)
        boosted = score_with_interactions(core, profiles, alpha=0.5)
        assert boosted.scores[100].score > base.scores[100].score
        # 101 never posted: unchanged.
        assert boosted.scores[101].score == pytest.approx(base.scores[101].score)

    def test_year_assignment_unchanged(self):
        core, profiles = make_core_and_profiles()
        base = score_candidates(core)
        boosted = score_with_interactions(core, profiles, alpha=1.0)
        for uid in base.scores:
            assert base.scores[uid].year == boosted.scores[uid].year

    def test_negative_alpha_rejected(self):
        core, profiles = make_core_and_profiles()
        with pytest.raises(ValueError):
            score_with_interactions(core, profiles, alpha=-0.1)


class TestSummary:
    def test_summary_counts(self):
        core, profiles = make_core_and_profiles()
        stats = summarize_interactions(core, profiles)
        assert stats.core_profiles_with_walls == 2
        assert stats.total_posts_observed == 4
        assert stats.candidates_with_interactions == 2
        assert stats.has_signal


class TestOnRealWorld:
    def test_interaction_signal_exists_in_crawled_data(self, tiny_attack):
        stats = summarize_interactions(tiny_attack.core, tiny_attack.profiles)
        assert stats.core_profiles_with_walls > 0
        assert stats.has_signal

    def test_boost_does_not_hurt_coverage(self, tiny_world, tiny_attack):
        from repro.core.evaluation import evaluate_full
        from repro.core.profiler import AttackResult

        boosted_table = score_with_interactions(
            tiny_attack.core, tiny_attack.profiles, alpha=0.5
        )
        ranking = [
            uid
            for uid in boosted_table.ranked(exclude=set(tiny_attack.core.claimed))
            if uid not in tiny_attack.filtered_out
        ]
        boosted = AttackResult(
            school=tiny_attack.school,
            config=tiny_attack.config,
            current_year=tiny_attack.current_year,
            seeds=tiny_attack.seeds,
            core=tiny_attack.core,
            initial_core_size=tiny_attack.initial_core_size,
            initial_claimed_size=tiny_attack.initial_claimed_size,
            candidates=tiny_attack.candidates,
            scores=boosted_table,
            ranking=ranking,
            filtered_out=tiny_attack.filtered_out,
            profiles=tiny_attack.profiles,
            threshold=tiny_attack.threshold,
            effort=tiny_attack.effort,
        )
        truth = tiny_world.ground_truth()
        base_eval = evaluate_full(tiny_attack, truth, 80)
        boost_eval = evaluate_full(boosted, truth, 80)
        assert boost_eval.found >= base_eval.found - 5
