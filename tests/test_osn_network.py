"""Tests for the SocialNetwork: views, friend pages, search, countermeasure."""

import pytest

from repro.osn.clock import SimClock
from repro.osn.errors import ForbiddenError, NotFoundError, RegistrationError
from repro.osn.network import GraphSearchQuery, SocialNetwork
from repro.osn.privacy import Audience, PrivacySettings, ProfileField, Relationship
from repro.osn.profile import Birthday, Name, Profile, SchoolAffiliation


class TestRegistration:
    def test_under_13_registered_age_rejected(self, empty_network):
        with pytest.raises(RegistrationError):
            empty_network.register_account(
                profile=Profile(name=Name("Too", "Young")),
                registered_birthday=Birthday(2002),  # age ~10 in 2012
            )

    def test_lying_child_accepted(self, empty_network):
        account = empty_network.register_account(
            profile=Profile(name=Name("Lying", "Child")),
            registered_birthday=Birthday(1994),
            real_birthday=Birthday(2001),
            created_at_year=2010.0,
        )
        assert account.lied_about_age()

    def test_enforcement_can_be_disabled(self, empty_network):
        account = empty_network.register_account(
            profile=Profile(name=Name("No", "Coppa")),
            registered_birthday=Birthday(2004),
            enforce_minimum_age=False,
        )
        assert empty_network.is_registered_minor(account.user_id)

    def test_age_check_uses_creation_time_not_now(self, empty_network):
        # Registered 2006 at age 13 (born 1993) - fine even though the
        # check happens "today".
        account = empty_network.register_account(
            profile=Profile(name=Name("Old", "Timer")),
            registered_birthday=Birthday(1993, 0.0),
            created_at_year=2006.5,
        )
        assert account.created_at_year == 2006.5

    def test_unknown_user_lookup_raises(self, empty_network):
        with pytest.raises(NotFoundError):
            empty_network.get_account(404)


class TestRelationships:
    def test_stranger_when_unconnected(self, school_network):
        net, _, accounts = school_network
        rel = net.relationship(
            accounts["crawler"].user_id, accounts["minor"].user_id
        )
        assert rel is Relationship.STRANGER

    def test_logged_out_viewer_is_stranger(self, school_network):
        net, _, accounts = school_network
        assert net.relationship(None, accounts["minor"].user_id) is Relationship.STRANGER

    def test_friend(self, school_network):
        net, _, accounts = school_network
        rel = net.relationship(
            accounts["lying_minor"].user_id, accounts["minor"].user_id
        )
        assert rel is Relationship.FRIEND

    def test_friend_of_friend(self, school_network):
        net, _, accounts = school_network
        rel = net.relationship(accounts["minor"].user_id, accounts["alumnus"].user_id)
        assert rel is Relationship.FRIEND_OF_FRIEND

    def test_self(self, school_network):
        net, _, accounts = school_network
        uid = accounts["minor"].user_id
        assert net.relationship(uid, uid) is Relationship.SELF


class TestProfileViews:
    def test_minor_view_is_minimal_for_stranger(self, school_network):
        net, _, accounts = school_network
        view = net.view_profile(accounts["crawler"].user_id, accounts["minor"].user_id)
        assert view.is_minimal()
        assert not view.high_schools
        assert not view.message_button
        assert not view.friend_list_visible

    def test_lying_minor_fully_exposed(self, school_network):
        net, school, accounts = school_network
        view = net.view_profile(
            accounts["crawler"].user_id, accounts["lying_minor"].user_id
        )
        assert not view.is_minimal()
        assert view.high_schools[0].graduation_year == 2014
        assert view.friend_list_visible
        assert view.message_button

    def test_friend_sees_minor_details(self, school_network):
        net, _, accounts = school_network
        view = net.view_profile(
            accounts["lying_minor"].user_id, accounts["minor"].user_id
        )
        assert view.high_schools  # friends see the school affiliation

    def test_view_has_registered_birth_year_not_real(self, school_network):
        net, _, accounts = school_network
        lying = accounts["lying_minor"]
        lying.profile.birthday = Birthday(1996)
        lying.settings = lying.settings.with_field(
            ProfileField.BIRTHDAY, Audience.PUBLIC
        )
        view = net.view_profile(accounts["crawler"].user_id, lying.user_id)
        assert view.birthday_year == 1990  # the registered (lied) year


class TestFriendPages:
    def test_minor_friend_list_forbidden_to_stranger(self, school_network):
        net, _, accounts = school_network
        with pytest.raises(ForbiddenError):
            net.friend_page(accounts["crawler"].user_id, accounts["minor"].user_id)

    def test_adult_friend_list_paginates(self, empty_network):
        net = empty_network
        owner = net.register_account(
            profile=Profile(name=Name("Pop", "Ular")),
            registered_birthday=Birthday(1985),
            settings=PrivacySettings.facebook_adult_default_2012(),
        )
        for i in range(45):
            friend = net.register_account(
                profile=Profile(name=Name("F", str(i))),
                registered_birthday=Birthday(1985),
            )
            net.add_friendship(owner.user_id, friend.user_id)
        total, page0 = net.friend_page(None, owner.user_id, 0)
        total2, page2 = net.friend_page(None, owner.user_id, 40)
        assert total == total2 == 45
        assert len(page0) == net.friends_page_size == 20
        assert len(page2) == 5

    def test_reverse_lookup_countermeasure_hides_minors(self, school_network):
        net, _, accounts = school_network
        lying = accounts["lying_minor"].user_id
        viewer = accounts["crawler"].user_id
        total_before, _ = net.friend_page(viewer, lying)
        net.reverse_lookup_enabled = False
        try:
            total_after, entries = net.friend_page(viewer, lying)
        finally:
            net.reverse_lookup_enabled = True
        # the truthful minor's friend list is hidden, so they vanish
        assert total_before == 2
        member_ids = {e.user_id for e in entries}
        assert accounts["minor"].user_id not in member_ids
        # the alumnus (public list) is still visible
        assert accounts["alumnus"].user_id in member_ids


class TestSchoolSearch:
    def test_search_excludes_registered_minors(self, school_network):
        net, school, accounts = school_network
        _, entries = net.school_search(accounts["crawler"].user_id, school.school_id)
        ids = {e.user_id for e in entries}
        assert accounts["minor"].user_id not in ids
        assert accounts["lying_minor"].user_id in ids
        assert accounts["alumnus"].user_id in ids

    def test_search_unknown_school_raises(self, school_network):
        net, _, accounts = school_network
        with pytest.raises(NotFoundError):
            net.school_search(accounts["crawler"].user_id, 999)

    def test_search_cap_and_account_variation(self, empty_network):
        net = empty_network
        net.search_result_cap = 10
        school = net.register_school("Big High", "Metropolis")
        for i in range(50):
            net.register_account(
                profile=Profile(
                    name=Name("A", str(i)),
                    high_schools=(SchoolAffiliation(school.school_id, school.name, 2005),),
                ),
                registered_birthday=Birthday(1985),
                settings=PrivacySettings.facebook_adult_default_2012(),
            )
        viewer_a = net.register_account(
            profile=Profile(name=Name("V", "A")), registered_birthday=Birthday(1980)
        )
        viewer_b = net.register_account(
            profile=Profile(name=Name("V", "B")), registered_birthday=Birthday(1980)
        )
        total_a, page_a = net.school_search(viewer_a.user_id, school.school_id)
        total_b, page_b = net.school_search(viewer_b.user_id, school.school_id)
        assert total_a == total_b == 10
        # different accounts get (deterministically) different samples
        assert {e.user_id for e in page_a} != {e.user_id for e in page_b}
        # and the same account always gets the same sample
        total_a2, page_a2 = net.school_search(viewer_a.user_id, school.school_id)
        assert [e.user_id for e in page_a] == [e.user_id for e in page_a2]


class TestGraphSearch:
    def test_current_students_only(self, school_network):
        net, school, accounts = school_network
        query = GraphSearchQuery(school_id=school.school_id, current_students_only=True)
        results = net.graph_search(accounts["crawler"].user_id, query)
        ids = {e.user_id for e in results}
        assert accounts["lying_minor"].user_id in ids
        assert accounts["alumnus"].user_id not in ids

    def test_year_filters(self, school_network):
        net, school, accounts = school_network
        before = net.graph_search(
            accounts["crawler"].user_id,
            GraphSearchQuery(school_id=school.school_id, year_op="before", year=2010),
        )
        assert {e.user_id for e in before} == {accounts["alumnus"].user_id}
        exact = net.graph_search(
            accounts["crawler"].user_id,
            GraphSearchQuery(school_id=school.school_id, year_op="in", year=2014),
        )
        assert {e.user_id for e in exact} == {accounts["lying_minor"].user_id}

    def test_city_filter(self, school_network):
        net, school, accounts = school_network
        results = net.graph_search(
            accounts["crawler"].user_id,
            GraphSearchQuery(school_id=school.school_id, current_city="Springfield"),
        )
        assert {e.user_id for e in results} == {accounts["lying_minor"].user_id}

    def test_bad_year_op_raises(self, school_network):
        net, school, accounts = school_network
        with pytest.raises(ValueError):
            net.graph_search(
                accounts["crawler"].user_id,
                GraphSearchQuery(school_id=school.school_id, year_op="near", year=2012),
            )

    def test_never_returns_registered_minors(self, school_network):
        net, school, accounts = school_network
        results = net.graph_search(
            accounts["crawler"].user_id,
            GraphSearchQuery(school_id=school.school_id),
        )
        assert accounts["minor"].user_id not in {e.user_id for e in results}


class TestStats:
    def test_population_stats_counts(self, school_network):
        net, _, accounts = school_network
        stats = net.population_stats()
        assert stats["users"] == 4
        assert stats["registered_minors"] == 1
        assert stats["age_liars"] == 1
        assert stats["edges"] == 2
