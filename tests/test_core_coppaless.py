"""Tests for the Section-7 without-COPPA analysis."""

import pytest

from repro.core.api import make_client
from repro.core.coppaless import (
    natural_approach_points,
    run_natural_approach,
    with_coppa_minimal_points,
)


@pytest.fixture(scope="module")
def natural(tiny_world):
    client = make_client(tiny_world, 2)
    current = tiny_world.network.clock.current_year
    return run_natural_approach(
        client, tiny_world.school().school_id, [current - 1, current - 2]
    )


class TestNaturalApproach:
    def test_core_is_recent_graduates(self, natural, tiny_world):
        current = tiny_world.network.clock.current_year
        assert natural.core
        assert all(year in (current - 1, current - 2) for year in natural.core.values())

    def test_candidates_exclude_core(self, natural):
        assert not (natural.candidates & set(natural.core))

    def test_minimal_candidates_subset(self, natural):
        assert natural.minimal_candidates <= natural.candidates

    def test_core_friend_counts_positive(self, natural):
        assert all(v >= 1 for v in natural.core_friend_counts.values())

    def test_selection_shrinks_with_n(self, natural):
        sizes = [len(natural.select(n)) for n in (1, 2, 3)]
        assert sizes == sorted(sizes, reverse=True)

    def test_selection_nested(self, natural):
        assert natural.select(3) <= natural.select(2) <= natural.select(1)

    def test_bad_n_rejected(self, natural):
        with pytest.raises(ValueError):
            natural.select(0)


class TestFigure3Points:
    def test_without_coppa_points_shape(self, natural, tiny_world):
        minimal = tiny_world.minimal_profile_students()
        points = natural_approach_points(natural, minimal)
        assert [p.label for p in points] == ["n=1", "n=2", "n=3"]
        for p in points:
            assert 0 <= p.found_percent <= 100
            assert p.false_positives >= 0

    def test_with_coppa_points_shape(self, tiny_attack, tiny_world):
        minimal = tiny_world.minimal_profile_students()
        points = with_coppa_minimal_points(tiny_attack, minimal, (60, 90, 120))
        assert len(points) == 3
        founds = [p.found for p in points]
        assert founds == sorted(founds)

    def test_empty_truth_rejected(self, natural, tiny_attack):
        with pytest.raises(ValueError):
            natural_approach_points(natural, set())
        with pytest.raises(ValueError):
            with_coppa_minimal_points(tiny_attack, set())

    def test_papers_headline_direction(self, natural, tiny_attack, tiny_world):
        """At comparable coverage, without-COPPA has far more FPs."""
        minimal = tiny_world.minimal_profile_students()
        without = natural_approach_points(natural, minimal, ns=(1,))[0]
        with_pts = with_coppa_minimal_points(tiny_attack, minimal, (60, 90, 120))
        closest = min(
            with_pts, key=lambda p: abs(p.found_percent - without.found_percent)
        )
        assert without.false_positives > 3 * max(closest.false_positives, 1)


class TestCounterfactualWorld:
    def test_main_attack_degrades_without_coppa(self, tiny_world):
        """In a truthful world the search yields no lying minors, so the
        core shrinks to (at most) real-adult seniors and coverage of the
        lower years collapses."""
        from repro.core.api import run_attack
        from repro.core.evaluation import evaluate_full
        from repro.core.profiler import ProfilerConfig
        from repro.worldgen.presets import tiny
        from repro.worldgen.world import build_world

        counter_world = build_world(tiny(seed=7).without_coppa())
        result = run_attack(
            counter_world, accounts=2, config=ProfilerConfig(threshold=120)
        )
        truth = counter_world.ground_truth()
        current = counter_world.network.clock.current_year
        # Core users can only be (claimed) seniors - never lower years.
        assert all(year == current for year in result.core.core.values())
        lower_years = {
            uid
            for year in (current + 1, current + 2, current + 3)
            for uid in truth.student_uids_by_year.get(year, [])
        }
        selection = set(result.select(120))
        lower_found = len(selection & lower_years)
        coppa_eval = evaluate_full(result, truth, 120)
        # Coverage of the school collapses versus the with-COPPA tiny run.
        assert coppa_eval.found_fraction < 0.55
        assert lower_found / max(len(lower_years), 1) < 0.6
