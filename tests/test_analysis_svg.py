"""Tests for SVG figure rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.figures import Figure, Series
from repro.analysis.svg import (
    SvgChartBuilder,
    _log_ticks,
    _nice_ticks,
    render_figure_svg,
    save_figure_svg,
)


def sample_figure(log_y=False):
    return Figure(
        title="Demo <figure>",
        x_label="t",
        y_label="percent",
        series=[
            Series.of("found", [(200, 54.0), (300, 70.0), (500, 92.0)]),
            Series.of("false positives", [(200, 13.0), (300, 22.0), (500, 50.0)]),
        ],
        log_y=log_y,
    )


class TestTicks:
    def test_nice_ticks_cover_range(self):
        ticks = _nice_ticks(0, 100)
        assert ticks[0] <= 0 and ticks[-1] >= 100
        assert len(ticks) <= 8

    def test_nice_ticks_degenerate(self):
        assert _nice_ticks(5, 5) == [5]

    def test_log_ticks_are_decades(self):
        ticks = _log_ticks(3, 4000)
        assert 10.0 in ticks and 1000.0 in ticks
        for a, b in zip(ticks, ticks[1:]):
            assert b / a == pytest.approx(10.0)


class TestRendering:
    def test_output_is_valid_xml(self):
        svg = render_figure_svg(sample_figure())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_title_escaped(self):
        svg = render_figure_svg(sample_figure())
        assert "Demo &lt;figure&gt;" in svg
        assert "<figure>" not in svg

    def test_one_polyline_per_series(self):
        svg = render_figure_svg(sample_figure())
        assert svg.count("<polyline") == 2

    def test_markers_per_point(self):
        svg = render_figure_svg(sample_figure())
        assert svg.count("<circle") == 6

    def test_legend_names_series(self):
        svg = render_figure_svg(sample_figure())
        assert "found" in svg and "false positives" in svg

    def test_log_scale_renders(self):
        figure = Figure(
            title="Log demo",
            x_label="coverage",
            y_label="FPs",
            series=[Series.of("s", [(10, 5.0), (50, 500.0), (90, 4000.0)])],
            log_y=True,
        )
        svg = render_figure_svg(figure)
        ET.fromstring(svg)
        assert "1000" in svg  # a decade tick

    def test_empty_figure_rejected(self):
        empty = Figure(title="x", x_label="x", y_label="y", series=[])
        with pytest.raises(ValueError):
            render_figure_svg(empty)

    def test_save_writes_file(self, tmp_path):
        path = str(tmp_path / "fig.svg")
        save_figure_svg(sample_figure(), path)
        with open(path) as f:
            assert f.read().startswith("<svg")

    def test_coordinates_inside_canvas(self):
        builder = SvgChartBuilder(sample_figure())
        for series in builder.figure.series:
            for x, y in series.points:
                assert 0 <= builder._x_px(x) <= builder.geom.width
                assert 0 <= builder._y_px(y) <= builder.geom.height
