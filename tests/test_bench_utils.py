"""Direct tests for benchmarks/_bench_utils (the emit helpers)."""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

from repro.perf.record import BenchRecordError, metric, new_record

BENCHMARKS_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
if str(BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS_DIR))

import _bench_utils  # noqa: E402  (needs the path tweak above)


@pytest.fixture
def output_dir(tmp_path, monkeypatch):
    monkeypatch.setattr(_bench_utils, "OUTPUT_DIR", tmp_path)
    return tmp_path


def valid_record():
    return new_record(
        "crawl",
        params={"preset": "tiny"},
        metrics={"requests": metric(10, "count", "exact")},
    )


def test_emit_writes_text_exhibit(output_dir, capsys):
    _bench_utils.emit("demo", "line one\nline two")
    assert (output_dir / "demo.txt").read_text() == "line one\nline two\n"
    assert "line one" in capsys.readouterr().out


def test_emit_json_writes_sorted_validated_record(output_dir):
    _bench_utils.emit_json("crawl", valid_record())
    path = output_dir / "BENCH_crawl.json"
    text = path.read_text()
    assert text.endswith("\n")
    loaded = json.loads(text)
    assert loaded["benchmark"] == "crawl"
    assert list(loaded) == sorted(loaded)  # sort_keys for stable diffs
    assert not list(output_dir.glob("*.tmp"))


def test_emit_json_rejects_malformed_record(output_dir):
    record = valid_record()
    record["metrics"] = {}
    with pytest.raises(BenchRecordError):
        _bench_utils.emit_json("crawl", record)
    # The bench fails here; nothing half-written lands for CI to upload.
    assert not list(output_dir.iterdir())


def test_emit_json_failure_preserves_previous_record(output_dir):
    _bench_utils.emit_json("crawl", valid_record())
    before = (output_dir / "BENCH_crawl.json").read_text()
    with pytest.raises(BenchRecordError):
        _bench_utils.emit_json("crawl", {"benchmark": "crawl"})
    assert (output_dir / "BENCH_crawl.json").read_text() == before
