"""Tests for Section-6 profile extension and Table-5 aggregation."""

import pytest

from repro.core.api import make_client
from repro.core.extension import (
    build_extended_profiles,
    infer_birth_year,
    registered_minor_friend_average,
    table5_stats,
)


@pytest.fixture(scope="module")
def extended(tiny_world, tiny_attack):
    client = make_client(tiny_world, 1)
    return build_extended_profiles(tiny_attack, client, t=100)


class TestInferBirthYear:
    def test_graduate_at_18(self):
        assert infer_birth_year(2014) == 1996

    def test_none_passthrough(self):
        assert infer_birth_year(None) is None


class TestExtendedProfiles:
    def test_covers_whole_selection(self, extended, tiny_attack):
        assert set(extended) == set(tiny_attack.select(100))

    def test_city_inferred_from_school(self, extended, tiny_world):
        city = tiny_world.school().city
        assert all(p.inferred_city == city for p in extended.values())

    def test_birth_year_consistent_with_year(self, extended):
        for p in extended.values():
            if p.inferred_year is not None:
                assert p.inferred_birth_year == p.inferred_year - 18

    def test_registered_minors_get_reverse_friends(self, extended, tiny_world):
        """The paper's key claim: friend lists for users whose own lists
        are hidden, via reverse lookup."""
        minors = [
            p for p in extended.values() if not p.appears_registered_adult
        ]
        assert minors
        with_friends = [p for p in minors if p.reverse_friends]
        assert len(with_friends) / len(minors) > 0.5

    def test_reverse_friends_stay_inside_selection(self, extended):
        members = set(extended)
        for p in extended.values():
            assert p.reverse_friends <= members

    def test_reverse_friends_are_real_friendships(self, extended, tiny_world):
        graph = tiny_world.network.graph
        for p in list(extended.values())[:200]:
            for friend in p.reverse_friends:
                assert graph.are_friends(p.user_id, friend)

    def test_adults_with_public_lists_have_direct_friends(self, extended):
        adults = [
            p
            for p in extended.values()
            if p.appears_registered_adult
            and p.view is not None
            and p.view.friend_list_visible
        ]
        assert adults
        assert all(p.direct_friends is not None for p in adults)

    def test_friend_count_known_prefers_direct(self, extended):
        for p in extended.values():
            if p.direct_friends is not None:
                assert p.friend_count_known == len(p.direct_friends)


class TestTable5:
    def test_stats_over_first_three_years(self, extended, tiny_attack):
        years = tiny_attack.core.years[1:]
        stats = table5_stats(extended, years)
        assert stats.count > 0
        assert 0 <= stats.pct_friend_list_public <= 100
        assert 0 <= stats.pct_message_link <= 100
        assert stats.avg_photos >= 0

    def test_message_link_majority(self, extended, tiny_attack):
        """Most adult-registered minors are messageable by strangers."""
        stats = table5_stats(extended, tiny_attack.core.years[1:])
        assert stats.pct_message_link > 50

    def test_empty_cohort_gives_zero_stats(self, extended):
        stats = table5_stats(extended, [1999])
        assert stats.count == 0
        assert stats.avg_photos == 0.0

    def test_minor_friend_average(self, extended, tiny_attack):
        count, avg = registered_minor_friend_average(
            extended, tiny_attack.core.years[1:]
        )
        assert count > 0
        assert avg > 0
