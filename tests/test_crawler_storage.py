"""Tests for the SQLite crawl store."""

import pytest

from repro.crawler.storage import CrawlStore
from repro.osn.network import DirectoryEntry
from repro.osn.profile import Gender, SchoolAffiliation
from repro.osn.view import ProfileView


@pytest.fixture()
def store():
    with CrawlStore(":memory:") as s:
        yield s


def sample_view(uid=1, **overrides):
    base = dict(
        user_id=uid,
        name="Jane Doe",
        gender=Gender.FEMALE,
        networks=("Net",),
        has_profile_photo=True,
        high_schools=(SchoolAffiliation(3, "Central High", 2014),),
        current_city="Springfield",
        photo_count=7,
        friend_list_visible=True,
        message_button=True,
    )
    base.update(overrides)
    return ProfileView(**base)


class TestProfiles:
    def test_round_trip(self, store):
        view = sample_view()
        store.save_profile(view, target_school_id=3)
        assert store.load_profile(1) == view

    def test_missing_profile_none(self, store):
        assert store.load_profile(404) is None

    def test_replace_on_conflict(self, store):
        store.save_profile(sample_view(photo_count=1))
        store.save_profile(sample_view(photo_count=99))
        assert store.load_profile(1).photo_count == 99

    def test_minimal_view_round_trip(self, store):
        view = ProfileView(user_id=2, name="Min Imal")
        store.save_profile(view)
        loaded = store.load_profile(2)
        assert loaded == view
        assert loaded.is_minimal()

    def test_profiles_claiming_school(self, store):
        store.save_profile(sample_view(uid=1), target_school_id=3)
        store.save_profile(
            sample_view(uid=2, high_schools=(SchoolAffiliation(3, "Central High", 2009),)),
            target_school_id=3,
        )
        store.save_profile(
            sample_view(uid=5, high_schools=(SchoolAffiliation(8, "Other", 2014),)),
            target_school_id=3,
        )
        all_claims = store.profiles_claiming_school(3)
        current = store.profiles_claiming_school(3, min_year=2012)
        assert {v.user_id for v in all_claims} == {1, 2}
        assert {v.user_id for v in current} == {1}

    def test_profile_count(self, store):
        store.save_profiles([sample_view(uid=i) for i in range(5)])
        assert store.profile_count() == 5


class TestFriendships:
    def test_save_and_load(self, store):
        entries = [DirectoryEntry(10, "A"), DirectoryEntry(11, "B")]
        store.save_friend_list(1, entries)
        assert store.load_friend_list(1) == entries

    def test_reverse_lookup(self, store):
        store.save_friend_list(1, [DirectoryEntry(10, "A")])
        store.save_friend_list(2, [DirectoryEntry(10, "A"), DirectoryEntry(11, "B")])
        assert store.reverse_lookup(10) == [1, 2]
        assert store.reverse_lookup(11) == [2]
        assert store.reverse_lookup(99) == []

    def test_owners_with_friend_lists(self, store):
        store.save_friend_list(1, [DirectoryEntry(10, "A")])
        store.save_friend_list(7, [DirectoryEntry(10, "A")])
        assert store.owners_with_friend_lists() == {1, 7}

    def test_friendship_count(self, store):
        store.save_friend_list(1, [DirectoryEntry(i, "x") for i in range(10, 15)])
        assert store.friendship_count() == 5


class TestSeeds:
    def test_save_and_load(self, store):
        store.save_seeds(3, {1: "A", 2: "B"})
        assert store.load_seeds(3) == {1: "A", 2: "B"}

    def test_seeds_scoped_by_school(self, store):
        store.save_seeds(3, {1: "A"})
        store.save_seeds(4, {2: "B"})
        assert store.load_seeds(3) == {1: "A"}


class TestPersistence:
    def test_on_disk_store_survives_reopen(self, tmp_path):
        path = str(tmp_path / "crawl.db")
        with CrawlStore(path) as store:
            store.save_profile(sample_view())
        with CrawlStore(path) as store:
            assert store.load_profile(1) is not None
