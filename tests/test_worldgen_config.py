"""Tests for world configuration and presets."""

import pytest

from repro.worldgen.config import (
    FriendshipConfig,
    LyingConfig,
    SchoolConfig,
    WorldConfig,
)
from repro.worldgen.presets import PRESETS, hs1, hs2, hs3, preset, tiny


class TestSchoolConfig:
    def test_cohort_size(self):
        assert SchoolConfig("X", "Y", enrollment=362).cohort_size == 90

    def test_cohort_size_never_zero(self):
        assert SchoolConfig("X", "Y", enrollment=2).cohort_size == 1


class TestWithoutCoppa:
    def test_disables_lying_and_age_ban(self):
        config = hs1().without_coppa()
        assert not config.lying.enabled
        assert not config.enforce_minimum_age

    def test_leaves_other_settings_untouched(self):
        base = hs1()
        counter = base.without_coppa()
        assert counter.schools == base.schools
        assert counter.students == base.students
        assert counter.seed == base.seed

    def test_with_seed(self):
        assert hs1().with_seed(77).seed == 77


class TestPresets:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_validate(self, name):
        preset(name).validate()

    def test_preset_seed_override(self):
        assert preset("hs1", seed=123).seed == 123

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset("hs9")

    def test_hs1_is_small_private(self):
        config = hs1()
        assert config.schools[0].enrollment == 362
        assert config.schools[0].churn_out_rate >= 0.10

    def test_hs2_hs3_are_large(self):
        for config in (hs2(), hs3()):
            assert config.schools[0].enrollment == 1500

    def test_hs3_shares_hs2_scale_but_differs(self):
        assert hs3().students.p_adult_friend_list_public > hs2().students.p_adult_friend_list_public

    def test_tiny_is_fast(self):
        assert tiny().schools[0].enrollment <= 200
        assert tiny().externals.size <= 2000


class TestValidation:
    def test_bad_claim_weights_rejected(self):
        config = WorldConfig(
            lying=LyingConfig(
                claim_13_weight=0, claim_midteen_weight=0, claim_adult_weight=0
            )
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_default_config_is_valid(self):
        WorldConfig().validate()
