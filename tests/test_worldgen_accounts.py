"""Tests for account creation from persons (profiles, settings, lying)."""

import pytest

from repro.osn.privacy import Audience, ProfileField
from repro.worldgen.population import Role
from repro.worldgen.presets import tiny
from repro.worldgen.world import build_world


@pytest.fixture(scope="module")
def world():
    return build_world(tiny(seed=17))


def accounts_with_role(world, role):
    out = []
    for person in world.population.people:
        if person.role is role:
            uid = world.account_index.user_for(person.person_id)
            if uid is not None:
                out.append(world.network.users[uid])
    return out


class TestAdoption:
    def test_not_everyone_has_an_account(self, world):
        with_accounts = len(world.account_index)
        assert with_accounts < len(world.population)

    def test_parents_always_adopt(self, world):
        parents = world.population.ids_with_role(Role.PARENT)
        adopted = sum(
            1 for pid in parents if world.account_index.user_for(pid) is not None
        )
        assert adopted == len(parents)


class TestStudentAccounts:
    def test_students_link_back_to_people(self, world):
        for account in accounts_with_role(world, Role.STUDENT)[:50]:
            person = world.population.person(account.person_id)
            assert person.role is Role.STUDENT
            assert account.profile.name == person.name

    def test_real_birthday_matches_person(self, world):
        for account in accounts_with_role(world, Role.STUDENT)[:50]:
            person = world.population.person(account.person_id)
            assert account.real_birthday.year == int(person.birth_year_fraction)

    def test_listed_grad_year_truthful(self, world):
        school_id = world.school().school_id
        for account in accounts_with_role(world, Role.STUDENT):
            affiliation = account.profile.affiliation_for(school_id)
            if affiliation and affiliation.graduation_year is not None:
                person = world.population.person(account.person_id)
                assert affiliation.graduation_year == person.cohort_year

    def test_some_students_list_school_some_dont(self, world):
        students = accounts_with_role(world, Role.STUDENT)
        listed = sum(1 for a in students if a.profile.high_schools)
        assert 0 < listed < len(students)

    def test_registered_minor_students_use_minor_defaults(self, world):
        now = world.network.clock.now_year
        minors = [
            a for a in accounts_with_role(world, Role.STUDENT)
            if a.is_registered_minor(now)
        ]
        assert minors
        for account in minors:
            assert not account.settings.public_search

    def test_adult_registered_students_often_public_lists(self, world):
        now = world.network.clock.now_year
        adults = [
            a for a in accounts_with_role(world, Role.STUDENT)
            if not a.is_registered_minor(now)
        ]
        public = sum(
            1
            for a in adults
            if a.settings.audience_for(ProfileField.FRIEND_LIST) is Audience.PUBLIC
        )
        assert public / len(adults) > 0.5


class TestAlumniAccounts:
    def test_alumni_registered_truthfully(self, world):
        liars = [a for a in accounts_with_role(world, Role.ALUMNUS) if a.lied_about_age()]
        assert len(liars) / max(len(accounts_with_role(world, Role.ALUMNUS)), 1) < 0.1

    def test_some_alumni_have_graduate_school(self, world):
        alumni = accounts_with_role(world, Role.ALUMNUS)
        with_gs = sum(1 for a in alumni if a.profile.graduate_school)
        assert 0 < with_gs < len(alumni)

    def test_some_alumni_moved_away(self, world):
        alumni = accounts_with_role(world, Role.ALUMNUS)
        city = world.school().city
        moved = sum(
            1
            for a in alumni
            if a.profile.current_city and a.profile.current_city != city
        )
        assert moved > 0


class TestFormerStudents:
    def test_former_students_can_claim_future_years(self, world):
        """A churned-out student listing their old cohort year looks like
        a current student - the paper's main false-positive source."""
        school_id = world.school().school_id
        current = world.network.clock.current_year
        claimers = [
            a
            for a in accounts_with_role(world, Role.FORMER_STUDENT)
            if (aff := a.profile.affiliation_for(school_id))
            and aff.graduation_year is not None
            and aff.graduation_year >= current
        ]
        assert claimers


class TestExternalAccounts:
    def test_external_composition(self, world):
        now = world.network.clock.now_year
        externals = accounts_with_role(world, Role.EXTERNAL)
        minors = sum(1 for a in externals if a.is_registered_minor(now))
        minimal = sum(
            1
            for a in externals
            if world.network.view_profile(None, a.user_id).is_minimal()
        )
        assert 0 < minors < len(externals)
        # minimal-profile externals include both minors and locked adults
        assert minimal > minors
