"""Tests for the alternative seed-collection surfaces (Graph Search)."""

import pytest

from repro.core.api import make_client, run_attack
from repro.core.profiler import ProfilerConfig


class TestGraphSearchSeeds:
    def test_no_registered_minors_in_graph_seeds(self, tiny_world):
        client = make_client(tiny_world, 1)
        current = tiny_world.network.clock.current_year
        seeds = client.collect_seeds_graph_search(
            tiny_world.school().school_id,
            years=list(range(current - 5, current + 4)),
        )
        net = tiny_world.network
        for uid in seeds:
            assert not net.is_registered_minor(uid)

    def test_year_refinements_add_coverage(self, tiny_world):
        client = make_client(tiny_world, 1)
        school_id = tiny_world.school().school_id
        current = tiny_world.network.clock.current_year
        broad = client.collect_seeds_graph_search(school_id)
        refined = client.collect_seeds_graph_search(
            school_id, years=list(range(current - 5, current + 4))
        )
        assert set(broad) <= set(refined)

    def test_profiler_accepts_each_source(self, tiny_world):
        for source in ("portal", "graph_search", "both"):
            result = run_attack(
                tiny_world,
                accounts=2,
                config=ProfilerConfig(threshold=100, seed_source=source),
            )
            assert result.seeds

    def test_both_is_superset_of_portal(self, tiny_world):
        from repro.crawler.accounts import AccountPool
        from repro.crawler.client import CrawlClient

        account_ids = tiny_world.create_attacker_accounts(2)
        portal = run_attack(
            tiny_world,
            config=ProfilerConfig(threshold=100, seed_source="portal"),
            client=CrawlClient(tiny_world.frontend, AccountPool.of(list(account_ids))),
        )
        both = run_attack(
            tiny_world,
            config=ProfilerConfig(threshold=100, seed_source="both"),
            client=CrawlClient(tiny_world.frontend, AccountPool.of(list(account_ids))),
        )
        assert set(portal.seeds) <= set(both.seeds)

    def test_unknown_source_rejected(self, tiny_world):
        with pytest.raises(ValueError):
            run_attack(
                tiny_world,
                accounts=1,
                config=ProfilerConfig(threshold=100, seed_source="carrier_pigeon"),
            )
