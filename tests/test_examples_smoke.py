"""Smoke tests: the shipped examples actually run.

Each example is executed as a subprocess (the way a user would run it)
and its narrative output spot-checked.  Only the faster examples run
here; the three-schools full sweep is exercised through its "fast"
mode.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Evaluation against confidential ground truth" in out
        assert "top t" in out

    def test_three_schools_fast(self):
        out = run_example("three_schools.py", "fast")
        assert "Table 2" in out and "Table 3" in out

    def test_data_broker(self, tmp_path):
        out = run_example("data_broker.py")
        assert "voter" in out.lower()
        assert "linked" in out

    def test_threat_report(self, tmp_path):
        report_path = tmp_path / "report.md"
        out = run_example("threat_report.py", str(report_path))
        assert report_path.exists()
        assert "Bottom line" in out

    def test_countermeasure_eval(self):
        out = run_example("countermeasure_eval.py")
        assert "Without reverse lookup" in out

    def test_coppa_comparison(self):
        out = run_example("coppa_comparison.py")
        assert "Without-COPPA" in out
        assert "counterfactual" in out

    def test_extended_dossiers(self):
        out = run_example("extended_dossiers.py")
        assert "Table 5" in out
        assert "reverse lookup" in out
