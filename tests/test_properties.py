"""System-wide privacy invariants, enforced property-style.

These are the guarantees the paper says Facebook provides (and which the
attack circumvents *without violating*): registered minors never leak
more than minimal information to strangers, never appear in school
search, and are never messageable by strangers — no matter how their
settings are configured.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osn.clock import SimClock
from repro.osn.network import SocialNetwork
from repro.osn.privacy import Audience, PrivacySettings, ProfileField
from repro.osn.profile import Birthday, ContactInfo, Name, Profile, SchoolAffiliation

audiences = st.sampled_from(list(Audience))
settings_strategy = st.builds(
    PrivacySettings,
    audiences=st.dictionaries(st.sampled_from(list(ProfileField)), audiences, max_size=10),
    default=audiences,
    public_search=st.booleans(),
    message_audience=audiences,
)


def build_net_with(settings_obj, registered_year):
    net = SocialNetwork(clock=SimClock(now_year=2012.25))
    school = net.register_school("Inv High", "Invtown")
    target = net.register_account(
        profile=Profile(
            name=Name("Target", "User"),
            high_schools=(SchoolAffiliation(school.school_id, school.name, 2014),),
            birthday=Birthday(registered_year),
            hometown="Invtown",
            current_city="Invtown",
            photo_count=9,
            contact_info=ContactInfo(email="t@example.com", phone="555"),
            relationship_status="Single",
            interested_in="Men",
        ),
        registered_birthday=Birthday(registered_year),
        settings=settings_obj,
        enforce_minimum_age=False,
    )
    stranger = net.register_account(
        profile=Profile(name=Name("Str", "Anger")),
        registered_birthday=Birthday(1980),
        settings=PrivacySettings.everything_private(),
    )
    return net, school, target, stranger


class TestMinorInvariants:
    @given(settings_strategy)
    @settings(max_examples=60)
    def test_stranger_view_of_minor_always_minimal(self, settings_obj):
        net, _, target, stranger = build_net_with(settings_obj, 1997)
        view = net.view_profile(stranger.user_id, target.user_id)
        assert view.is_minimal()

    @given(settings_strategy)
    @settings(max_examples=60)
    def test_minor_never_in_school_search(self, settings_obj):
        net, school, target, stranger = build_net_with(settings_obj, 1997)
        _, entries = net.school_search(stranger.user_id, school.school_id)
        assert target.user_id not in {e.user_id for e in entries}

    @given(settings_strategy)
    @settings(max_examples=60)
    def test_minor_friend_list_never_stranger_visible(self, settings_obj):
        from repro.osn.errors import ForbiddenError

        net, _, target, stranger = build_net_with(settings_obj, 1997)
        with pytest.raises(ForbiddenError):
            net.friend_page(stranger.user_id, target.user_id)

    @given(settings_strategy)
    @settings(max_examples=60)
    def test_adult_view_respects_settings_cap(self, settings_obj):
        """An adult's stranger view never shows a field whose effective
        audience excludes strangers."""
        net, _, target, stranger = build_net_with(settings_obj, 1985)
        view = net.view_profile(stranger.user_id, target.user_id)
        if not settings_obj.audience_for(ProfileField.CONTACT_INFO) == Audience.PUBLIC:
            assert view.contact_email is None
        if not settings_obj.audience_for(ProfileField.BIRTHDAY) == Audience.PUBLIC:
            assert view.birthday_year is None


class TestWorldInvariants:
    def test_no_stranger_leak_across_whole_world(self, tiny_world):
        """Sweep every account: registered minors are minimal to strangers."""
        net = tiny_world.network
        for uid, account in net.users.items():
            if net.is_registered_minor(uid):
                assert net.view_profile(None, uid).is_minimal()

    def test_search_returns_no_minors_any_school(self, tiny_world):
        net = tiny_world.network
        viewer = tiny_world.create_attacker_accounts(1)[0]
        for school_id in net.schools:
            offset = 0
            while True:
                total, entries = net.school_search(viewer, school_id, offset)
                for entry in entries:
                    assert not net.is_registered_minor(entry.user_id)
                offset += len(entries)
                if offset >= total or not entries:
                    break

    def test_attack_never_reads_ground_truth(self, tiny_attack, tiny_world):
        """Every uid the attack knows was reachable via public surface:
        seeds are searchable adults; candidates appear in some crawled
        public friend list."""
        net = tiny_world.network
        now = net.clock.now_year
        for uid in tiny_attack.seeds:
            assert not net.users[uid].is_registered_minor(now)
        listed = {
            friend
            for friends in tiny_attack.core.friend_lists.values()
            for friend in friends
        }
        assert tiny_attack.candidates <= listed


class TestSimClockDeterminism:
    def test_attack_is_deterministic(self):
        """Same seed, same world, same attack -> identical inference."""
        from repro.core.api import run_attack
        from repro.core.profiler import ProfilerConfig
        from repro.worldgen.presets import tiny
        from repro.worldgen.world import build_world

        results = []
        for _ in range(2):
            world = build_world(tiny(seed=31))
            result = run_attack(
                world, accounts=2, config=ProfilerConfig(threshold=100, enhanced=True)
            )
            results.append(result)
        assert results[0].ranking == results[1].ranking
        assert results[0].select(100) == results[1].select(100)
