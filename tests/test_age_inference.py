"""Tests for friend-based birth-year estimation (ref [16])."""

import pytest

from repro.core.age_inference import (
    AgeEstimate,
    estimate_birth_years,
    evaluate_age_inference,
)
from repro.core.api import make_client
from repro.core.extension import ExtendedProfile, build_extended_profiles


@pytest.fixture(scope="module")
def estimates(tiny_world, tiny_attack):
    client = make_client(tiny_world, 1)
    extended = build_extended_profiles(tiny_attack, client, t=100)
    return extended, estimate_birth_years(extended)


class TestEstimators:
    def test_every_dossier_estimated(self, estimates):
        extended, ests = estimates
        assert set(ests) == set(extended)

    def test_cohort_estimate_formula(self, estimates):
        extended, ests = estimates
        for uid, est in ests.items():
            year = extended[uid].inferred_year
            if year is not None:
                assert est.cohort_estimate == year - 18

    def test_friend_estimates_exist_for_connected_minors(self, estimates):
        extended, ests = estimates
        connected = [
            uid for uid, p in extended.items() if len(p.reverse_friends) >= 3
        ]
        with_friend_est = sum(
            1 for uid in connected if ests[uid].friend_estimate is not None
        )
        assert with_friend_est / max(len(connected), 1) > 0.8

    def test_best_prefers_cohort(self):
        est = AgeEstimate(1, cohort_estimate=1996, friend_estimate=1990, friend_evidence=5)
        assert est.best() == 1996

    def test_best_falls_back_to_friends(self):
        est = AgeEstimate(1, cohort_estimate=None, friend_estimate=1995, friend_evidence=3)
        assert est.best() == 1995


class TestEvaluation:
    def test_cohort_estimator_accurate(self, estimates, tiny_world):
        _, ests = estimates
        evaluation = evaluate_age_inference(ests, tiny_world)
        assert evaluation.evaluated > 20
        # Class year - 18 is a very good birth-year proxy.
        assert evaluation.cohort_mean_abs_error < 1.5
        assert evaluation.cohort_within_one_year > 0.7

    def test_friend_estimator_useful(self, estimates, tiny_world):
        """Friend-based estimates are noisier (registered birthdays lie!)
        but still land within a small error for most students."""
        _, ests = estimates
        evaluation = evaluate_age_inference(ests, tiny_world)
        assert evaluation.friend_mean_abs_error < 4.0

    def test_empty_estimates(self, tiny_world):
        evaluation = evaluate_age_inference({}, tiny_world)
        assert evaluation.evaluated == 0
