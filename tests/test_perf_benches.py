"""The bench runners: schema-valid, deterministic, CLI-drivable.

Runs on the ``tiny`` preset — the point here is record shape and seeded
reproducibility, not paper-tier numbers (benchmarks/test_perf_trajectory.py
covers those).
"""

from __future__ import annotations

from repro.cli import main
from repro.perf.benches import (
    bench_attack,
    bench_crawl,
    bench_linkage,
    bench_worldgen_record,
)
from repro.perf.record import load_record, validate_record


def exact_metrics(record):
    return {
        name: entry["value"]
        for name, entry in record["metrics"].items()
        if entry["direction"] == "exact"
    }


def test_bench_crawl_record_shape_and_determinism():
    record = bench_crawl("tiny", seed=7)
    assert validate_record(record) == []
    assert record["benchmark"] == "crawl"
    assert record["params"]["preset"] == "tiny"
    metrics = record["metrics"]
    assert metrics["pages_per_second"]["value"] > 0
    assert metrics["requests"]["value"] > 0
    assert metrics["sim_seconds"]["value"] > 0  # politeness on the SimClock
    assert {p["name"] for p in record["phases"]} == {
        "seeds", "profiles", "friend_lists",
    }
    rerun = bench_crawl("tiny", seed=7)
    assert exact_metrics(rerun) == exact_metrics(record)


def test_bench_attack_record_shape():
    record = bench_attack("tiny", seed=7, threshold=120)
    assert validate_record(record) == []
    metrics = record["metrics"]
    assert metrics["accounts_scored_per_second"]["value"] > 0
    assert metrics["candidates_scored"]["value"] > 0
    assert metrics["core_size"]["value"] > 0
    assert {"seeds", "core", "scoring", "threshold"} <= {
        p["name"] for p in record["phases"]
    }
    assert record["params"]["variant"] == "enhanced+filtering"


def test_bench_linkage_record_shape():
    record = bench_linkage("tiny", seed=7, threshold=120)
    assert validate_record(record) == []
    metrics = record["metrics"]
    assert metrics["students_linked"]["value"] > 0
    assert metrics["candidate_pairs"]["value"] >= metrics["students_linked"]["value"]
    assert metrics["registered_voters"]["value"] > 0
    assert {"attack", "extend", "registry", "link"} <= {
        p["name"] for p in record["phases"]
    }


def test_bench_attack_profile_opt_in():
    record = bench_attack("tiny", seed=7, threshold=120, profile_top=5)
    assert validate_record(record) == []
    assert 0 < len(record["profile"]) <= 5
    assert {"function", "cumtime_seconds"} <= set(record["profile"][0])
    # Unprofiled runs carry no profile section at all.
    assert "profile" not in bench_attack("tiny", seed=7, threshold=120)


def test_bench_worldgen_record_wraps_flat_tier():
    record = bench_worldgen_record("smoke", seed=11)
    assert validate_record(record) == []
    assert record["metrics"]["accounts_per_second"]["value"] > 0
    # The historical flat record rides along for older tooling.
    assert record["tier"]["accounts"] == record["metrics"]["accounts"]["value"]
    assert record["tier"]["backend"] in ("numpy", "stdlib-array")


def test_cli_bench_run_writes_valid_records(tmp_path, capsys):
    exit_code = main(
        [
            "bench", "run", "--bench", "crawl", "--preset", "tiny",
            "--seed", "7", "--out", str(tmp_path),
        ]
    )
    assert exit_code == 0
    record = load_record(tmp_path / "BENCH_crawl.json")
    assert validate_record(record) == []
    out = capsys.readouterr().out
    assert "pages_per_second" in out
    assert "BENCH_crawl.json" in out
