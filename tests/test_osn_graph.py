"""Unit and property tests for the friendship graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osn.graph import FriendGraph


@pytest.fixture()
def triangle():
    g = FriendGraph()
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    g.add_edge(1, 3)
    return g


class TestMutation:
    def test_add_edge_is_mutual(self, triangle):
        assert triangle.are_friends(1, 2)
        assert triangle.are_friends(2, 1)

    def test_add_duplicate_edge_returns_false(self, triangle):
        assert not triangle.add_edge(1, 2)

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            FriendGraph().add_edge(5, 5)

    def test_remove_edge(self, triangle):
        assert triangle.remove_edge(1, 2)
        assert not triangle.are_friends(1, 2)
        assert triangle.are_friends(1, 3)

    def test_remove_missing_edge_returns_false(self):
        assert not FriendGraph().remove_edge(1, 2)

    def test_remove_node_clears_incident_edges(self, triangle):
        triangle.remove_node(2)
        assert 2 not in triangle
        assert not triangle.are_friends(1, 2)
        assert triangle.are_friends(1, 3)

    def test_add_node_idempotent(self):
        g = FriendGraph()
        g.add_node(7)
        g.add_node(7)
        assert len(g) == 1
        assert g.degree(7) == 0

    def test_bulk_add_counts_new_only(self):
        g = FriendGraph()
        added = g.bulk_add_edges([(1, 2), (2, 3), (1, 2)])
        assert added == 2


class TestQueries:
    def test_degree(self, triangle):
        assert triangle.degree(1) == 2

    def test_degree_of_unknown_node_is_zero(self):
        assert FriendGraph().degree(42) == 0

    def test_mutual_friends(self, triangle):
        assert triangle.mutual_friends(1, 2) == {3}

    def test_mutual_friend_count_matches(self, triangle):
        assert triangle.mutual_friend_count(1, 2) == 1

    def test_has_mutual_friend(self, triangle):
        assert triangle.has_mutual_friend(1, 2)
        triangle.remove_node(3)
        assert not triangle.has_mutual_friend(1, 2)

    def test_edge_count(self, triangle):
        assert triangle.edge_count() == 3

    def test_edges_yielded_once(self, triangle):
        assert sorted(triangle.edges()) == [(1, 2), (1, 3), (2, 3)]

    def test_neighbors_list_sorted(self):
        g = FriendGraph()
        g.add_edge(1, 9)
        g.add_edge(1, 3)
        g.add_edge(1, 7)
        assert g.neighbors_list(1) == [3, 7, 9]

    def test_subgraph_degree(self, triangle):
        assert triangle.subgraph_degree(1, {2, 99}) == 1

    def test_degree_histogram(self, triangle):
        assert triangle.degree_histogram() == {2: 3}

    def test_mean_degree(self, triangle):
        assert triangle.mean_degree() == pytest.approx(2.0)

    def test_mean_degree_empty(self):
        assert FriendGraph().mean_degree() == 0.0


edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(lambda p: p[0] != p[1]),
    max_size=60,
)


class TestProperties:
    @given(edge_lists)
    @settings(max_examples=60)
    def test_symmetry(self, edges):
        g = FriendGraph()
        g.bulk_add_edges(edges)
        for a in g.nodes():
            for b in g.neighbors(a):
                assert g.are_friends(b, a)

    @given(edge_lists)
    @settings(max_examples=60)
    def test_handshake_lemma(self, edges):
        g = FriendGraph()
        g.bulk_add_edges(edges)
        assert sum(g.degree(n) for n in g.nodes()) == 2 * g.edge_count()

    @given(edge_lists)
    @settings(max_examples=60)
    def test_mutual_count_consistent_with_set(self, edges):
        g = FriendGraph()
        g.bulk_add_edges(edges)
        nodes = list(g.nodes())[:6]
        for a in nodes:
            for b in nodes:
                if a != b:
                    assert g.mutual_friend_count(a, b) == len(g.mutual_friends(a, b))
