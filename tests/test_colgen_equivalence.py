"""Lossless-encoding contract: columns decode back to the exact objects.

The ``paper`` tier runs the legacy object generator and encodes the
result into columns; the lazy views must then reproduce every legacy
object **exactly** — same ``Person`` dataclasses, same
``PrivacySettings`` (including which fields were explicitly set, not
just their effective audience), same birth instants, same friendship
sets.  This is what licenses the attack pipeline to run over columns
without a recalibration.

Everything here scans *every* person and account (no sampling): the
worlds are module-scoped so the O(n) sweeps run against one build.
"""

from __future__ import annotations

import pytest

from repro.colgen import PopulationView, encode_world, generate, person_view
from repro.worldgen.population import Role
from repro.worldgen.presets import hs1
from repro.worldgen.world import build_world

_SEED = 101


@pytest.fixture(scope="module")
def legacy_world():
    return build_world(hs1(_SEED))


@pytest.fixture(scope="module")
def columnar(legacy_world):
    return encode_world(legacy_world, tier="paper")


class TestPeopleEquivalence:
    def test_every_person_decodes_equal(self, legacy_world, columnar):
        for person in legacy_world.population.people:
            assert person_view(columnar, person.person_id) == person

    def test_role_indexes_match(self, legacy_world, columnar):
        view = PopulationView(columnar)
        for role in Role:
            assert view.ids_with_role(role) == legacy_world.population.by_role.get(
                role, []
            )

    def test_students_by_school_match(self, legacy_world, columnar):
        view = PopulationView(columnar)
        for school_index in range(len(legacy_world.schools)):
            assert view.students_by_school(
                school_index
            ) == legacy_world.population.students_by_school.get(school_index, {})

    def test_households_match(self, legacy_world, columnar):
        view = PopulationView(columnar)
        assert view.households() == legacy_world.population.households


class TestAccountEquivalence:
    def test_every_privacy_settings_decodes_equal(self, legacy_world, columnar):
        for uid, account in legacy_world.network.users.items():
            decoded = columnar.privacy_settings(uid)
            assert decoded == account.settings
            # the explicit-set mapping itself, not just effective lookups
            assert decoded.audiences == account.settings.audiences

    def test_every_birth_date_matches(self, legacy_world, columnar):
        for uid, account in legacy_world.network.users.items():
            assert (
                columnar.registered_birth_instant(uid)
                == account.registered_birthday.as_year_fraction
            )
            assert (
                columnar.real_birth_instant(uid)
                == account.real_birthday.as_year_fraction
            )

    def test_person_account_mapping_round_trips(self, legacy_world, columnar):
        index = legacy_world.account_index
        for pid, uid in index.person_to_user.items():
            assert columnar.user_for(pid) == uid
            assert columnar.person_for(uid) == pid


class TestFriendshipEquivalence:
    def test_every_friendship_set_matches(self, legacy_world, columnar):
        graph = legacy_world.network.graph
        for uid in legacy_world.network.users:
            assert columnar.friend_set(uid) == frozenset(graph.neighbors(uid))
            assert columnar.friends(uid) == graph.neighbors_list(uid)

    def test_edge_count_and_degrees_match(self, legacy_world, columnar):
        graph = legacy_world.network.graph
        total = 0
        for uid in legacy_world.network.users:
            n = len(graph.neighbors(uid))
            assert columnar.degree(uid) == n
            total += n
        assert columnar.n_edges == total // 2

    def test_are_friends_agrees_on_sampled_pairs(self, legacy_world, columnar):
        import random

        rng = random.Random(0)
        uids = sorted(legacy_world.network.users)
        graph = legacy_world.network.graph
        for _ in range(500):
            a, b = rng.choice(uids), rng.choice(uids)
            if a == b:
                continue
            assert columnar.are_friends(a, b) == (b in graph.neighbors(a))

    def test_csr_invariants_hold(self, columnar):
        columnar.csr.validate()


class TestGenerateDispatch:
    def test_paper_tier_generate_equals_direct_encode(self, columnar):
        via_tier = generate("paper", seed=_SEED, school="hs1")
        assert via_tier.n_accounts == columnar.n_accounts
        assert via_tier.n_edges == columnar.n_edges
        sample_uid = columnar.uid_base
        assert via_tier.friend_set(sample_uid) == columnar.friend_set(sample_uid)
        assert via_tier.privacy_settings(sample_uid) == columnar.privacy_settings(
            sample_uid
        )
