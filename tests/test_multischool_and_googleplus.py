"""Worlds beyond the single-Facebook-school setting.

The paper notes the methodology scales to "hundreds or even thousands
of high schools" and that "the attack applies to Google+ as well"
(Appendix A).  These tests exercise both: a two-school city profiled
school by school, and the same attack against a Google+-policy world.
"""

from dataclasses import replace

import pytest

from repro.core.api import run_attack
from repro.core.evaluation import evaluate_full
from repro.core.profiler import ProfilerConfig
from repro.worldgen.config import SchoolConfig
from repro.worldgen.presets import tiny
from repro.worldgen.world import build_world


@pytest.fixture(scope="module")
def city_world():
    base = tiny(seed=41)
    return build_world(
        replace(
            base,
            schools=(
                SchoolConfig(
                    name="Smallville North High",
                    city="Smallville",
                    enrollment=120,
                    alumni_cohorts=5,
                ),
                SchoolConfig(
                    name="Smallville South High",
                    city="Smallville",
                    enrollment=120,
                    alumni_cohorts=5,
                ),
            ),
        )
    )


class TestMultiSchoolCity:
    def test_two_ground_truths(self, city_world):
        assert len(city_world.ground_truths) == 2
        assert city_world.ground_truth(0).school.name != city_world.ground_truth(1).school.name

    def test_student_bodies_disjoint(self, city_world):
        a = city_world.ground_truth(0).all_student_uids
        b = city_world.ground_truth(1).all_student_uids
        assert not (a & b)

    def test_profiling_each_school_in_turn(self, city_world):
        """Profiling all schools in a city discovers most of its minors."""
        total_found = 0
        total_students = 0
        for school_index in (0, 1):
            result = run_attack(
                city_world,
                school_index=school_index,
                accounts=2,
                config=ProfilerConfig(threshold=120, enhanced=True),
            )
            truth = city_world.ground_truth(school_index)
            evaluation = evaluate_full(result, truth, 120)
            total_found += evaluation.found
            total_students += truth.on_osn_count
        assert total_found / total_students > 0.4

    def test_attack_targets_the_right_school(self, city_world):
        result = run_attack(
            city_world,
            school_index=0,
            accounts=2,
            config=ProfilerConfig(threshold=120, enhanced=True),
        )
        this = evaluate_full(result, city_world.ground_truth(0), 120)
        other = evaluate_full(result, city_world.ground_truth(1), 120)
        assert this.found > 3 * max(other.found, 1)


@pytest.fixture(scope="module")
def gplus_world():
    return build_world(replace(tiny(seed=43), site="googleplus"))


class TestGooglePlusWorld:
    def test_policy_applied(self, gplus_world):
        assert gplus_world.network.policy.name == "googleplus"

    def test_search_still_excludes_minors(self, gplus_world):
        net = gplus_world.network
        viewer = gplus_world.create_attacker_accounts(1)[0]
        total, entries = net.school_search(viewer, gplus_world.school().school_id)
        for entry in entries:
            assert not net.is_registered_minor(entry.user_id)

    def test_attack_applies_to_googleplus(self, gplus_world):
        """Appendix A's claim: the same methodology works on Google+."""
        result = run_attack(
            gplus_world, accounts=2, config=ProfilerConfig(threshold=120, enhanced=True)
        )
        truth = gplus_world.ground_truth()
        evaluation = evaluate_full(result, truth, 120)
        assert result.initial_core_size > 0
        assert evaluation.found_fraction > 0.4
