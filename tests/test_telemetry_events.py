"""Tests for the event bus and its sinks (memory, JSONL, Prometheus)."""

import pytest

from repro.osn.clock import SimClock
from repro.telemetry.events import (
    EventBus,
    JsonlSink,
    MemorySink,
    PrometheusSink,
    TelemetryEvent,
    read_jsonl,
)
from repro.telemetry.runtime import Telemetry


def _event(seq=0, kind="request", **fields):
    return TelemetryEvent(kind=kind, seq=seq, sim_ts=1.5, phase="seeds", fields=fields)


class TestEventBus:
    def test_fans_out_to_all_sinks(self):
        a, b = MemorySink(), MemorySink()
        bus = EventBus([a, b])
        bus.publish(_event())
        assert len(a.events) == 1
        assert len(b.events) == 1

    def test_add_sink_after_construction(self):
        bus = EventBus()
        late = MemorySink()
        bus.add_sink(late)
        bus.publish(_event())
        assert len(late.events) == 1


class TestJsonlSink:
    def test_round_trips_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        events = [
            _event(seq=0, account=7, category="seeds"),
            _event(seq=1, kind="throttle", account=7, retry_after=2.5, slept=5.0),
        ]
        for event in events:
            sink.handle(event)
        assert sink.event_count == 2
        sink.close()
        assert read_jsonl(str(path)) == events

    def test_nothing_written_before_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.handle(_event())
        assert not path.exists()
        sink.close()
        assert path.exists()

    def test_close_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.handle(_event())
        sink.close()
        sink.close()
        assert len(read_jsonl(str(path))) == 1

    def test_float_fields_round_trip_exactly(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        original = _event(slept=0.30000000000000004, retry_after=1 / 3)
        sink.handle(original)
        sink.close()
        (loaded,) = read_jsonl(str(path))
        assert loaded.fields["slept"] == original.fields["slept"]
        assert loaded.fields["retry_after"] == original.fields["retry_after"]


class TestPrometheusSink:
    def test_snapshots_registry_on_close(self, tmp_path):
        path = tmp_path / "metrics.prom"
        telemetry = Telemetry(SimClock())
        telemetry.bus.add_sink(PrometheusSink(str(path), telemetry.registry))
        telemetry.registry.counter("hits_total").labels().inc(2)
        telemetry.emit("request")  # events are ignored by this sink
        telemetry.close()
        text = path.read_text()
        assert "# TYPE hits_total counter" in text
        assert "hits_total 2" in text


class TestTelemetryHandle:
    def test_in_memory_constructor(self):
        telemetry = Telemetry.in_memory(SimClock())
        telemetry.emit("request", account=1)
        assert [e.kind for e in telemetry.events] == ["request"]

    def test_to_jsonl_constructor(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry = Telemetry.to_jsonl(SimClock(), str(path), keep_in_memory=True)
        telemetry.emit("request", account=1)
        telemetry.close()
        assert read_jsonl(str(path)) == telemetry.events

    def test_close_idempotent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        telemetry = Telemetry.to_jsonl(SimClock(), str(path))
        telemetry.emit("request")
        telemetry.close()
        telemetry.close()
        assert len(read_jsonl(str(path))) == 1

    def test_explicit_phase_overrides_stack(self):
        telemetry = Telemetry.in_memory(SimClock())
        with telemetry.span("seeds"):
            telemetry.emit("request", phase="custom")
        assert telemetry.events[0].phase == "custom"
