"""Tests for the markdown attack report."""

import pytest

from repro.analysis.report import attack_report_markdown
from repro.core.api import make_client
from repro.core.evaluation import sweep_full
from repro.core.extension import build_extended_profiles
from repro.core.outreach import assess_contactability


@pytest.fixture(scope="module")
def full_report(tiny_world, tiny_attack):
    client = make_client(tiny_world, 1)
    extended = build_extended_profiles(tiny_attack, client, t=100)
    return attack_report_markdown(
        tiny_attack,
        evaluations=sweep_full(tiny_attack, tiny_world.ground_truth(), [60, 120]),
        extended=extended,
        outreach=assess_contactability(extended),
    )


class TestReportContent:
    def test_title_names_school(self, full_report, tiny_world):
        assert tiny_world.school().name in full_report.splitlines()[0]

    def test_all_sections_present(self, full_report):
        for section in (
            "## Crawl summary",
            "## Inferred student body",
            "## Ground-truth evaluation",
            "## Profile extension",
            "## Contact surfaces",
            "## Method",
        ):
            assert section in full_report

    def test_crawl_numbers_present(self, full_report, tiny_attack):
        assert str(len(tiny_attack.seeds)) in full_report
        assert str(tiny_attack.effort.total) in full_report

    def test_class_years_tabulated(self, full_report, tiny_attack):
        for year in tiny_attack.core.years:
            if year in set(tiny_attack.select().values()):
                assert str(year) in full_report

    def test_markdown_tables_well_formed(self, full_report):
        for line in full_report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_minimal_report_without_optionals(self, tiny_attack):
        report = attack_report_markdown(tiny_attack)
        assert "## Crawl summary" in report
        assert "Ground-truth evaluation" not in report
        assert "Contact surfaces" not in report

    def test_sample_dossiers_capped(self, tiny_world, tiny_attack):
        client = make_client(tiny_world, 1)
        extended = build_extended_profiles(tiny_attack, client, t=100)
        report = attack_report_markdown(
            tiny_attack, extended=extended, max_sample_dossiers=2
        )
        if "Sample dossiers" in report:
            section = report.split("Sample dossiers (registered minors)")[1]
            data_rows = [
                l for l in section.splitlines()
                if l.startswith("|") and "---" not in l and "name" not in l
            ]
            assert len(data_rows) <= 2
