"""The whole-program phase: taint flows, dead code, cache, SARIF, CLI.

Fixture projects live under ``tmp_path/repro/...`` so
:func:`~repro.lint.module_name_for` derives real ``repro.*`` dotted
names and the flow rules scope themselves exactly as they do on the
shipped tree.
"""

from __future__ import annotations

import json
import os
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import (
    Baseline,
    LintCache,
    all_rules,
    lint_paths,
    render_sarif,
    rule_signature,
)
from repro.cli import main


def _rules(*ids):
    return [rule for rule in all_rules() if rule.rule_id in ids]


def _write(root, relative, content):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content, encoding="utf-8")
    return str(path)


def _project(tmp_path, files):
    for relative, content in files.items():
        _write(tmp_path, relative, content)
    return str(tmp_path / "repro")


# ----------------------------------------------------------------------
# FLOW001: ground truth must not reach attacker code
# ----------------------------------------------------------------------

#: A two-hop launder: the ground-truth read happens in a neutral helper
#: module, which the attacker then calls.  No single file violates the
#: per-file ORACLE rules.
LAUNDER = {
    "repro/__init__.py": "",
    "repro/pipeline.py": (
        "def harvest(world):\n"
        "    truth = world.population\n"
        "    return truth\n"
    ),
    "repro/core/__init__.py": "",
    "repro/core/attack.py": (
        "from repro.pipeline import harvest\n"
        "\n"
        "def attack(world):\n"
        "    data = harvest(world)\n"
        "    return data\n"
    ),
}

#: The same flow routed through the sanctioned oracle seam.
SEAMED = {
    "repro/__init__.py": "",
    "repro/core/__init__.py": "",
    "repro/core/oracle.py": (
        "def oracle_harvest(world):\n"
        "    return world.population\n"
    ),
    "repro/core/attack.py": (
        "from repro.core.oracle import oracle_harvest\n"
        "\n"
        "def attack(world):\n"
        "    data = oracle_harvest(world)\n"
        "    return data\n"
    ),
}


class TestFlow001:
    def test_two_hop_launder_is_caught(self, tmp_path):
        root = _project(tmp_path, LAUNDER)
        report = lint_paths([root], rules=_rules("FLOW001"))
        assert [f.rule for f in report.findings] == ["FLOW001"]
        finding = report.findings[0]
        assert finding.path.endswith("attack.py")
        assert "population" in finding.message
        assert "oracle" in finding.message

    def test_same_flow_through_the_oracle_seam_is_clean(self, tmp_path):
        root = _project(tmp_path, SEAMED)
        report = lint_paths([root], rules=_rules("FLOW001"))
        assert report.findings == []

    def test_direct_read_in_attacker_module_is_caught(self, tmp_path):
        root = _project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/core/__init__.py": "",
                "repro/core/attack.py": (
                    "def attack(world):\n"
                    "    return world.ground_truth\n"
                ),
            },
        )
        report = lint_paths([root], rules=_rules("FLOW001"))
        assert [f.rule for f in report.findings] == ["FLOW001"]

    def test_tainted_argument_into_attacker_function(self, tmp_path):
        root = _project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/runner.py": (
                    "from repro.core.attack import consume\n"
                    "\n"
                    "def run(world):\n"
                    "    secrets = world.population\n"
                    "    return consume(secrets)\n"
                ),
                "repro/core/__init__.py": "",
                "repro/core/attack.py": (
                    "def consume(data):\n"
                    "    return data\n"
                ),
            },
        )
        report = lint_paths([root], rules=_rules("FLOW001"))
        assert [f.rule for f in report.findings] == ["FLOW001"]
        assert report.findings[0].path.endswith("runner.py")


# ----------------------------------------------------------------------
# FLOW002: gated profile fields in crawler-visible returns
# ----------------------------------------------------------------------

class TestFlow002:
    def test_ungated_sensitive_return_is_caught(self, tmp_path):
        root = _project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/osn/__init__.py": "",
                "repro/osn/pages.py": (
                    "def render_profile(profile, viewer):\n"
                    "    return profile.birthday\n"
                ),
            },
        )
        report = lint_paths([root], rules=_rules("FLOW002"))
        assert [f.rule for f in report.findings] == ["FLOW002"]
        assert "birthday" in report.findings[0].message

    def test_policy_aware_function_is_exempt(self, tmp_path):
        root = _project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/osn/__init__.py": "",
                "repro/osn/pages.py": (
                    "def render_profile(profile, viewer, policy):\n"
                    "    if policy.sees(viewer, 'birthday'):\n"
                    "        return profile.birthday\n"
                    "    return None\n"
                ),
            },
        )
        report = lint_paths([root], rules=_rules("FLOW002"))
        assert report.findings == []


# ----------------------------------------------------------------------
# DEAD001: unreferenced module-level definitions
# ----------------------------------------------------------------------

class TestDead001:
    def test_orphan_is_flagged_and_used_names_are_not(self, tmp_path):
        root = _project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/util.py": (
                    "def helper():\n"
                    "    return 1\n"
                    "\n"
                    "def orphan():\n"
                    "    return 2\n"
                ),
                "repro/app.py": (
                    "from repro.util import helper\n"
                    "\n"
                    "def main():\n"
                    "    return helper()\n"
                ),
            },
        )
        report = lint_paths([root], rules=_rules("DEAD001"))
        assert ["orphan"] == [
            f.message.split("'")[1] for f in report.findings
        ]

    def test_dunder_all_export_counts_as_a_reference(self, tmp_path):
        root = _project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/util.py": (
                    "__all__ = ['exported']\n"
                    "\n"
                    "def exported():\n"
                    "    return 1\n"
                ),
            },
        )
        report = lint_paths([root], rules=_rules("DEAD001"))
        assert report.findings == []


# ----------------------------------------------------------------------
# Cache: warm runs re-parse nothing, results are identical
# ----------------------------------------------------------------------

class TestCache:
    def _cache(self, tmp_path, rules):
        signature = rule_signature([r.rule_id for r in rules])
        return LintCache(str(tmp_path / "cache.json"), signature)

    def test_warm_run_reparses_zero_files(self, tmp_path):
        root = _project(tmp_path, LAUNDER)
        rules = all_rules()
        cold = lint_paths([root], rules=rules, cache=self._cache(tmp_path, rules))
        assert cold.files_reparsed == cold.files_checked > 0
        assert cold.cache_hits == 0
        warm = lint_paths([root], rules=rules, cache=self._cache(tmp_path, rules))
        assert warm.files_reparsed == 0
        assert warm.cache_hits == warm.files_checked == cold.files_checked
        assert warm.findings == cold.findings

    def test_editing_one_file_reparses_only_it(self, tmp_path):
        root = _project(tmp_path, LAUNDER)
        rules = all_rules()
        lint_paths([root], rules=rules, cache=self._cache(tmp_path, rules))
        _write(
            tmp_path,
            "repro/pipeline.py",
            "def harvest(world):\n    return None\n",
        )
        warm = lint_paths([root], rules=rules, cache=self._cache(tmp_path, rules))
        assert warm.files_reparsed == 1
        assert warm.cache_hits == warm.files_checked - 1
        # the whole-program phase saw the edit: the launder is gone
        assert [f for f in warm.findings if f.rule == "FLOW001"] == []

    def test_rule_signature_change_invalidates_everything(self, tmp_path):
        root = _project(tmp_path, LAUNDER)
        rules = all_rules()
        lint_paths([root], rules=rules, cache=self._cache(tmp_path, rules))
        subset = _rules("FLOW001")
        fresh = lint_paths(
            [root], rules=subset, cache=self._cache(tmp_path, subset)
        )
        assert fresh.cache_hits == 0
        assert fresh.files_reparsed == fresh.files_checked


# ----------------------------------------------------------------------
# Parallel runs: byte-identical output for any --jobs value
# ----------------------------------------------------------------------

class TestJobs:
    def test_jobs_4_matches_jobs_1(self, tmp_path, capsys):
        root = _project(tmp_path, LAUNDER)
        assert main(["lint", "--no-cache", "--format", "json", root]) == 1
        serial = capsys.readouterr().out
        assert (
            main(["lint", "--no-cache", "--format", "json", "--jobs", "4", root])
            == 1
        )
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_bad_jobs_value_is_a_usage_error(self, tmp_path):
        root = _project(tmp_path, {"repro/__init__.py": ""})
        assert main(["lint", "--no-cache", "--jobs", "0", root]) == 2


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------

class TestSarif:
    def test_document_shape(self, tmp_path):
        root = _project(tmp_path, LAUNDER)
        rules = all_rules()
        report = lint_paths([root], rules=rules)
        document = json.loads(render_sarif(report, rules))
        assert document["version"] == "2.1.0"
        assert "sarif-2.1.0" in document["$schema"]
        run = document["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        ids = [rule["id"] for rule in driver["rules"]]
        assert "FLOW001" in ids and "LINT002" in ids
        assert report.findings  # the fixture has a FLOW001 finding
        for result in run["results"]:
            rule_entry = driver["rules"][result["ruleIndex"]]
            assert rule_entry["id"] == result["ruleId"]
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_cli_emits_parseable_sarif(self, tmp_path, capsys):
        root = _project(tmp_path, LAUNDER)
        assert main(["lint", "--no-cache", "--format", "sarif", root]) == 1
        document = json.loads(capsys.readouterr().out)
        results = document["runs"][0]["results"]
        assert results
        assert any(r["ruleId"] == "FLOW001" for r in results)


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------

class TestExitCodes:
    def test_clean_tree_exits_0(self, tmp_path):
        root = _project(tmp_path, {"repro/__init__.py": "x = 1\n"})
        assert main(["lint", "--no-cache", root]) == 0

    def test_policy_findings_exit_1(self, tmp_path):
        root = _project(tmp_path, LAUNDER)
        assert main(["lint", "--no-cache", root]) == 1

    def test_parse_error_exits_2(self, tmp_path):
        root = _project(tmp_path, {"repro/broken.py": "def f(:\n"})
        assert main(["lint", "--no-cache", root]) == 2

    def test_unreadable_baseline_exits_2(self, tmp_path):
        root = _project(tmp_path, {"repro/__init__.py": ""})
        bad = _write(tmp_path, "baseline.json", "{not json")
        assert main(["lint", "--no-cache", root, "--baseline", bad]) == 2

    def test_missing_baseline_exits_2(self, tmp_path):
        root = _project(tmp_path, {"repro/__init__.py": ""})
        missing = str(tmp_path / "nope.json")
        assert main(["lint", "--no-cache", root, "--baseline", missing]) == 2


# ----------------------------------------------------------------------
# Baseline properties
# ----------------------------------------------------------------------

#: Rule-id universe deliberately mixes synthetic ids with the scale
#: pass's real ones: scale findings embed call-chain witnesses in their
#: messages, so the partition property must hold for long, punctuated
#: message texts too.
_FINDING_ROWS = st.lists(
    st.tuples(
        st.sampled_from(["AAA001", "BBB002", "SCALE001", "SCALE002", "DET002"]),
        st.sampled_from(["a.py", "b.py", "src/repro/colgen/serve.py"]),
        st.integers(min_value=1, max_value=50),
        st.sampled_from(
            [
                "first message",
                "second message",
                "per-person decode 'person_view' on a city-tier path "
                "(reached via cmd_crawl -> CrawlScheduler.run -> "
                "PopulationView.person); stay columnar",
            ]
        ),
    ),
    max_size=12,
)


class TestBaselineProperties:
    @settings(max_examples=60, deadline=None)
    @given(rows=_FINDING_ROWS, data=st.data())
    def test_partition_is_order_independent(self, rows, data):
        from repro.lint import Finding

        findings = [
            Finding(path, line, 0, rule, message)
            for rule, path, line, message in rows
        ]
        grandfathered = (
            data.draw(st.lists(st.sampled_from(rows), max_size=6)) if rows else []
        )
        baseline = Baseline.from_findings(
            [
                Finding(path, line, 0, rule, message)
                for rule, path, line, message in grandfathered
            ]
        )
        shuffled = data.draw(st.permutations(findings))

        fresh_a, matched_a = baseline.partition(list(findings))
        fresh_b, matched_b = baseline.partition(list(shuffled))
        # Fingerprints ignore line numbers, so *which* duplicate survives
        # depends on order — but how many are baselined, and the multiset
        # of surviving fingerprints, must not.
        assert matched_a == matched_b
        assert Counter(f.fingerprint for f in fresh_a) == Counter(
            f.fingerprint for f in fresh_b
        )

    def test_write_baseline_round_trip_is_stable(self, tmp_path, capsys):
        root = _project(tmp_path, LAUNDER)
        baseline_path = str(tmp_path / "baseline.json")
        assert main([
            "lint", "--no-cache", root,
            "--baseline", baseline_path, "--write-baseline",
        ]) == 0
        first = open(baseline_path, encoding="utf-8").read()
        assert main([
            "lint", "--no-cache", root, "--baseline", baseline_path
        ]) == 0
        assert "baselined" in capsys.readouterr().out
        assert main([
            "lint", "--no-cache", root,
            "--baseline", baseline_path, "--write-baseline",
        ]) == 0
        assert open(baseline_path, encoding="utf-8").read() == first


def test_overlapping_path_arguments_lint_each_file_once(tmp_path):
    root = _project(tmp_path, LAUNDER)
    nested = os.path.join(root, "core")
    once = lint_paths([root], rules=_rules("FLOW001"))
    twice = lint_paths([root, nested], rules=_rules("FLOW001"))
    assert twice.files_checked == once.files_checked
    assert twice.findings == once.findings
