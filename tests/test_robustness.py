"""Tests for the multi-seed robustness harness."""

import pytest

from repro.analysis.robustness import RobustnessSummary, run_across_seeds
from repro.core.profiler import ProfilerConfig
from repro.worldgen.presets import tiny


@pytest.fixture(scope="module")
def summary():
    return run_across_seeds(
        tiny(),
        seeds=(1, 2, 3),
        attack_config=ProfilerConfig(threshold=120, enhanced=True, filtering=True),
        accounts=2,
        t=120,
    )


class TestRobustness:
    def test_one_run_per_seed(self, summary):
        assert len(summary.runs) == 3
        assert {r.seed for r in summary.runs} == {1, 2, 3}

    def test_statistics_consistent(self, summary):
        coverages = [r.evaluation.found_fraction for r in summary.runs]
        assert summary.coverage_min == min(coverages)
        assert summary.coverage_max == max(coverages)
        assert summary.coverage_min <= summary.coverage_mean <= summary.coverage_max

    def test_attack_robust_across_seeds(self, summary):
        """The headline is not seed luck: every seed clears 50%."""
        assert summary.coverage_min > 0.5
        assert summary.coverage_std < 0.25

    def test_describe_mentions_everything(self, summary):
        text = summary.describe()
        assert "coverage" in text
        assert "FP rate" in text
        assert "3 seeds" in text

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            run_across_seeds(tiny(), seeds=())

    def test_seeds_actually_vary_worlds(self, summary):
        cores = {r.core_size for r in summary.runs}
        candidates = {r.candidates for r in summary.runs}
        assert len(cores) > 1 or len(candidates) > 1
