"""Tests for sim-clock-aware spans and the tracer's phase stack."""

import pytest

from repro.osn.clock import SimClock
from repro.telemetry.events import MemorySink
from repro.telemetry.runtime import Telemetry
from repro.telemetry.tracing import Tracer


class TestSpans:
    def test_span_measures_simulated_time(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("seeds"):
            clock.sleep(120.0)
        record = tracer.finished[0]
        assert record.name == "seeds"
        assert record.sim_seconds == pytest.approx(120.0)
        assert record.wall_seconds < 1.0  # sim sleep costs no wall time

    def test_nested_spans_track_parent_and_current(self):
        clock = SimClock()
        tracer = Tracer(clock)
        assert tracer.current is None
        with tracer.span("core"):
            assert tracer.current == "core"
            with tracer.span("friend_lists"):
                assert tracer.current == "friend_lists"
            assert tracer.current == "core"
        assert tracer.current is None
        inner, outer = tracer.finished
        assert inner.parent == "core"
        assert outer.parent == "-"

    def test_span_closes_on_exception(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with pytest.raises(RuntimeError):
            with tracer.span("seeds"):
                raise RuntimeError("boom")
        assert tracer.current is None
        assert tracer.finished[0].name == "seeds"


class TestTelemetryIntegration:
    def test_span_close_emits_event_attributed_to_parent(self):
        clock = SimClock()
        telemetry = Telemetry(clock, sinks=[MemorySink()])
        with telemetry.span("core"):
            clock.sleep(10.0)
            with telemetry.span("friend_lists"):
                clock.sleep(5.0)
        events = telemetry.events
        assert [e.fields["name"] for e in events] == ["friend_lists", "core"]
        inner, outer = events
        assert inner.phase == "core"  # popped before emit -> parent phase
        assert inner.fields["sim_seconds"] == pytest.approx(5.0)
        assert outer.phase == "-"
        assert outer.fields["sim_seconds"] == pytest.approx(15.0)
        assert outer.fields["error"] is False

    def test_events_inside_span_carry_phase(self):
        clock = SimClock()
        telemetry = Telemetry(clock, sinks=[MemorySink()])
        telemetry.emit("request", account=1)
        with telemetry.span("seeds"):
            telemetry.emit("request", account=1)
        first, second, _span = telemetry.events
        assert first.phase == "-"
        assert second.phase == "seeds"

    def test_sequence_and_sim_timestamps_monotonic(self):
        clock = SimClock()
        telemetry = Telemetry(clock, sinks=[MemorySink()])
        telemetry.emit("a")
        clock.sleep(3.0)
        telemetry.emit("b")
        first, second = telemetry.events
        assert (first.seq, second.seq) == (0, 1)
        assert second.sim_ts - first.sim_ts == pytest.approx(3.0)
