"""Tests for the Section-2 contact-vector assessment and campaign."""

import pytest

from repro.core.api import make_client
from repro.core.extension import build_extended_profiles
from repro.core.outreach import (
    assess_contactability,
    compose_personalized_message,
    run_outreach_campaign,
)


@pytest.fixture(scope="module")
def extended(tiny_world, tiny_attack):
    client = make_client(tiny_world, 1)
    return build_extended_profiles(tiny_attack, client, t=100)


class TestComposeMessage:
    def test_includes_personalization_signals(self, extended):
        profile = next(iter(extended.values()))
        text = compose_personalized_message(profile, ["Amy Pond", "Rory W"])
        assert profile.school_name in text
        assert "Amy Pond" in text
        assert text.startswith("[simulated personalized message]")

    def test_handles_no_friends(self, extended):
        profile = next(iter(extended.values()))
        text = compose_personalized_message(profile, [])
        assert "your classmates" in text


class TestAssessment:
    def test_counts_add_up(self, extended):
        report = assess_contactability(extended)
        assert report.targets == len(extended)
        assert 0 <= report.directly_messageable <= report.targets

    def test_adult_registered_dominate_messageable(self, extended):
        """Only adult-registered views carry a Message button."""
        report = assess_contactability(extended)
        adult_buttons = sum(
            1
            for p in extended.values()
            if p.appears_registered_adult and p.view and p.view.message_button
        )
        assert report.directly_messageable == adult_buttons

    def test_per_year_partition(self, extended):
        report = assess_contactability(extended)
        assert sum(t for t, _ in report.per_year.values()) <= report.targets
        assert sum(m for _, m in report.per_year.values()) <= report.directly_messageable

    def test_messageable_fraction_substantial(self, extended):
        """The paper's point: a stranger can message a large share of
        high-school students despite the minor-protection policy."""
        report = assess_contactability(extended)
        assert report.messageable_fraction > 0.25


class TestCampaign:
    def test_campaign_delivers_to_messageable_only(self, tiny_world, extended):
        client = make_client(tiny_world, 1)
        report = run_outreach_campaign(extended, client, send_messages=True)
        assert report.messages_delivered == report.directly_messageable
        assert report.message_failures == 0

    def test_messages_land_in_inboxes(self, tiny_world, tiny_attack):
        client = make_client(tiny_world, 1)
        extended = build_extended_profiles(tiny_attack, client, t=100)
        before = tiny_world.network.contact.messages_delivered
        report = run_outreach_campaign(extended, client, send_messages=True)
        after = tiny_world.network.contact.messages_delivered
        assert after - before == report.messages_delivered
        # Spot-check one recipient's inbox content.
        recipient = next(
            (
                uid
                for uid, p in extended.items()
                if p.view is not None and p.view.message_button
            ),
            None,
        )
        if recipient is not None:
            inbox = tiny_world.network.contact.inbox(recipient)
            assert any("[simulated personalized message]" in m.text for m in inbox)

    def test_no_minor_ever_receives_a_stranger_message(self, tiny_world, extended):
        """Policy invariant across the campaign: registered minors'
        inboxes stay empty of stranger messages."""
        client = make_client(tiny_world, 1)
        run_outreach_campaign(extended, client, send_messages=True)
        net = tiny_world.network
        for uid in tiny_world.registered_minor_students():
            for message in net.contact.inbox(uid):
                sender = net.users[message.sender_id]
                assert not sender.is_fake

    def test_friend_requests_reach_everyone(self, tiny_world, extended):
        client = make_client(tiny_world, 1)
        report = run_outreach_campaign(
            extended, client, send_messages=False, send_friend_requests=True
        )
        assert report.friend_requests_sent == report.targets

    def test_duplicate_friend_requests_rejected(self, tiny_world, extended):
        client = make_client(tiny_world, 1)
        first = run_outreach_campaign(
            extended, client, send_messages=False, send_friend_requests=True
        )
        # Same client/account: every second request is a duplicate.
        second = run_outreach_campaign(
            extended, client, send_messages=False, send_friend_requests=True
        )
        assert second.friend_requests_sent == 0
        assert first.friend_requests_sent > 0
