"""Tests for the deterministic name sampler."""

import random

from repro.osn.profile import Gender
from repro.worldgen.names import FEMALE_FIRST, LAST_NAMES, MALE_FIRST, NameSampler


class TestSampling:
    def test_deterministic_for_seed(self):
        a = NameSampler(random.Random(1))
        b = NameSampler(random.Random(1))
        assert [a.sample()[0].full for _ in range(20)] == [
            b.sample()[0].full for _ in range(20)
        ]

    def test_gendered_first_names(self):
        sampler = NameSampler(random.Random(2))
        for _ in range(50):
            name, gender = sampler.sample()
            pool = FEMALE_FIRST if gender is Gender.FEMALE else MALE_FIRST
            assert name.first in pool
            assert name.last in LAST_NAMES

    def test_explicit_gender_respected(self):
        sampler = NameSampler(random.Random(3))
        for _ in range(20):
            name, gender = sampler.sample(Gender.MALE)
            assert gender is Gender.MALE
            assert name.first in MALE_FIRST

    def test_gender_roughly_balanced(self):
        sampler = NameSampler(random.Random(4))
        females = sum(1 for _ in range(1000) if sampler.gender() is Gender.FEMALE)
        assert 400 < females < 600

    def test_duplicates_possible(self):
        """Name collisions happen, as in the paper's ground-truth matching."""
        sampler = NameSampler(random.Random(5))
        names = [sampler.sample()[0].full for _ in range(2000)]
        assert len(set(names)) < len(names)

    def test_pools_are_disjoint_enough(self):
        # A sanity check that the gendered pools are actually different.
        assert len(set(FEMALE_FIRST) & set(MALE_FIRST)) <= 2

    def test_family_surname_comes_from_pool(self):
        sampler = NameSampler(random.Random(6))
        assert sampler.family_surname() in LAST_NAMES
