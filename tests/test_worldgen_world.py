"""Tests for world assembly, accounts, friendships and ground truth."""

import pytest

from repro.osn.privacy import ProfileField, Relationship
from repro.worldgen.population import Role
from repro.worldgen.presets import tiny
from repro.worldgen.world import build_world


class TestWorldAssembly:
    def test_school_registered(self, tiny_world):
        school = tiny_world.school()
        assert school.name == "Smallville High School"
        assert school.enrollment_hint == 120

    def test_most_students_have_accounts(self, tiny_world):
        truth = tiny_world.ground_truth()
        assert truth.on_osn_count >= 0.8 * truth.enrolled_count

    def test_graph_has_edges(self, tiny_world):
        assert tiny_world.network.graph.edge_count() > 1000

    def test_account_index_bidirectional(self, tiny_world):
        index = tiny_world.account_index
        for pid, uid in list(index.person_to_user.items())[:100]:
            assert index.person_for(uid) == pid

    def test_deterministic_given_seed(self):
        a = build_world(tiny(seed=3))
        b = build_world(tiny(seed=3))
        assert a.network.graph.edge_count() == b.network.graph.edge_count()
        assert a.ground_truth().on_osn_count == b.ground_truth().on_osn_count


class TestGroundTruth:
    def test_years_cover_current_generation(self, tiny_world):
        truth = tiny_world.ground_truth()
        assert sorted(truth.student_uids_by_year) == [2012, 2013, 2014, 2015]

    def test_year_of_uid(self, tiny_world):
        truth = tiny_world.ground_truth()
        for year, uids in truth.student_uids_by_year.items():
            for uid in uids[:5]:
                assert truth.year_of_uid(uid) == year

    def test_year_of_unknown_uid_is_none(self, tiny_world):
        assert tiny_world.ground_truth().year_of_uid(10**9) is None

    def test_student_classifications_partition(self, tiny_world):
        truth = tiny_world.ground_truth()
        minors = tiny_world.registered_minor_students()
        adults = tiny_world.adult_registered_students()
        assert minors | adults == truth.all_student_uids
        assert not (minors & adults)

    def test_minimal_profiles_include_all_registered_minors(self, tiny_world):
        """On Facebook, every registered minor presents a minimal profile."""
        minors = tiny_world.registered_minor_students()
        minimal = tiny_world.minimal_profile_students()
        assert minors <= minimal


class TestLyingOutcomes:
    def test_a_sizeable_fraction_of_students_registered_adult(self, tiny_world):
        truth = tiny_world.ground_truth()
        adults = tiny_world.adult_registered_students()
        fraction = len(adults) / truth.on_osn_count
        assert 0.25 < fraction < 0.75

    def test_without_coppa_world_has_no_liars(self):
        world = build_world(tiny(seed=21).without_coppa())
        liars = [a for a in world.network.users.values() if a.lied_about_age()]
        assert not liars

    def test_without_coppa_only_real_adults_registered_adult(self):
        world = build_world(tiny(seed=21).without_coppa())
        now = world.network.clock.now_year
        for account in world.network.users.values():
            if not account.is_registered_minor(now):
                assert account.real_age(now) >= 18.0


class TestAttackerAccounts:
    def test_created_accounts_are_fake_strangers(self, fresh_tiny_world):
        uids = fresh_tiny_world.create_attacker_accounts(3)
        assert len(uids) == 3
        net = fresh_tiny_world.network
        some_student = next(iter(fresh_tiny_world.ground_truth().all_student_uids))
        for uid in uids:
            assert net.users[uid].is_fake
            assert net.relationship(uid, some_student) is Relationship.STRANGER


class TestFriendshipStructure:
    def test_same_cohort_denser_than_cross(self, tiny_world):
        truth = tiny_world.ground_truth()
        graph = tiny_world.network.graph
        years = sorted(truth.student_uids_by_year)
        same = cross = 0
        same_pairs = cross_pairs = 0
        for i, ya in enumerate(years):
            a_uids = truth.student_uids_by_year[ya]
            same_pairs += len(a_uids) * (len(a_uids) - 1) // 2
            same += sum(
                1
                for k, u in enumerate(a_uids)
                for v in a_uids[k + 1 :]
                if graph.are_friends(u, v)
            )
            for yb in years[i + 1 :]:
                b_uids = truth.student_uids_by_year[yb]
                cross_pairs += len(a_uids) * len(b_uids)
                cross += sum(
                    1 for u in a_uids for v in b_uids if graph.are_friends(u, v)
                )
        assert same / same_pairs > 3 * (cross / cross_pairs)

    def test_students_have_external_friends(self, tiny_world):
        truth = tiny_world.ground_truth()
        graph = tiny_world.network.graph
        students = truth.all_student_uids
        degrees = [graph.degree(uid) for uid in students]
        external = [
            graph.degree(uid) - graph.subgraph_degree(uid, students) for uid in students
        ]
        assert sum(external) / len(external) > 10

    def test_some_parents_friend_their_children(self, tiny_world):
        population = tiny_world.population
        index = tiny_world.account_index
        graph = tiny_world.network.graph
        linked = 0
        for children, parents in population.households.values():
            child_uid = index.user_for(children[0])
            if child_uid is None:
                continue
            for parent_pid in parents:
                parent_uid = index.user_for(parent_pid)
                if parent_uid is not None and graph.are_friends(child_uid, parent_uid):
                    linked += 1
        assert linked > 0
