"""Tests for the typed crawl client over the HTML frontend."""

import pytest

from repro.crawler.accounts import AccountPool
from repro.crawler.client import CrawlClient
from repro.crawler.effort import CATEGORY_PROFILES, CATEGORY_SEEDS
from repro.crawler.politeness import PolitenessPolicy
from repro.osn.frontend import HtmlFrontend
from repro.osn.privacy import PrivacySettings
from repro.osn.profile import Birthday, Name, Profile
from repro.osn.ratelimit import RateLimitConfig


@pytest.fixture()
def client(school_network):
    net, school, accounts = school_network
    frontend = HtmlFrontend(net)
    pool = AccountPool.of([accounts["crawler"].user_id])
    return (
        CrawlClient(frontend, pool, PolitenessPolicy(base_delay_seconds=0.1, jitter_seconds=0)),
        school,
        accounts,
    )


class TestSeeds:
    def test_collects_searchable_adults(self, client):
        crawl, school, accounts = client
        seeds = crawl.collect_seeds(school.school_id)
        assert accounts["lying_minor"].user_id in seeds
        assert accounts["alumnus"].user_id in seeds
        assert accounts["minor"].user_id not in seeds

    def test_seed_names_are_display_names(self, client):
        crawl, school, accounts = client
        seeds = crawl.collect_seeds(school.school_id)
        assert seeds[accounts["alumnus"].user_id] == "Al Umnus"

    def test_effort_categorised_as_seeds(self, client):
        crawl, school, _ = client
        crawl.collect_seeds(school.school_id)
        assert crawl.counter.count(CATEGORY_SEEDS) >= 1


class TestProfiles:
    def test_fetch_profile_parses_view(self, client):
        crawl, _, accounts = client
        view = crawl.fetch_profile(accounts["lying_minor"].user_id)
        assert view.high_schools[0].graduation_year == 2014

    def test_fetch_missing_profile_returns_none(self, client):
        crawl, _, _ = client
        assert crawl.fetch_profile(987654) is None

    def test_profile_effort_category(self, client):
        crawl, _, accounts = client
        crawl.fetch_profile(accounts["minor"].user_id)
        assert crawl.counter.count(CATEGORY_PROFILES) == 1


class TestFriendLists:
    def test_fetch_visible_list(self, client):
        crawl, _, accounts = client
        entries = crawl.fetch_friend_list(accounts["lying_minor"].user_id)
        assert {e.user_id for e in entries} == {
            accounts["minor"].user_id,
            accounts["alumnus"].user_id,
        }

    def test_hidden_list_returns_none(self, client):
        crawl, _, accounts = client
        assert crawl.fetch_friend_list(accounts["minor"].user_id) is None

    def test_pagination_collects_all(self, school_network):
        net, school, accounts = school_network
        owner = net.register_account(
            profile=Profile(name=Name("Pop", "Ular")),
            registered_birthday=Birthday(1980),
            settings=PrivacySettings.facebook_adult_default_2012(),
        )
        for i in range(53):
            friend = net.register_account(
                profile=Profile(name=Name("F", str(i))),
                registered_birthday=Birthday(1980),
            )
            net.add_friendship(owner.user_id, friend.user_id)
        crawl = CrawlClient(
            HtmlFrontend(net),
            AccountPool.of([accounts["crawler"].user_id]),
            PolitenessPolicy(base_delay_seconds=0, jitter_seconds=0),
        )
        entries = crawl.fetch_friend_list(owner.user_id)
        assert len(entries) == 53
        # 53 friends at p=20 per page -> 3 requests
        assert crawl.counter.count("friend_lists") == 3


class TestSchoolLookup:
    def test_fetch_school(self, client):
        crawl, school, _ = client
        fetched = crawl.fetch_school(school.school_id)
        assert fetched.name == school.name
        assert fetched.enrollment_hint == 360


class TestResilience:
    def test_throttled_crawl_backs_off_and_completes(self, school_network):
        net, school, accounts = school_network
        frontend = HtmlFrontend(
            net, RateLimitConfig(max_requests=3, window_seconds=30, strikes_to_disable=100)
        )
        crawl = CrawlClient(
            frontend,
            AccountPool.of([accounts["crawler"].user_id]),
            # Aggressive pacing: will hit the limiter, then back off.
            PolitenessPolicy(base_delay_seconds=0.01, jitter_seconds=0),
        )
        for _ in range(10):
            assert crawl.fetch_profile(accounts["alumnus"].user_id) is not None

    def test_disabled_account_rotated_out(self, school_network):
        net, school, accounts = school_network
        extra = net.register_account(
            profile=Profile(name=Name("Crawl", "Two")),
            registered_birthday=Birthday(1985),
            settings=PrivacySettings.everything_private(),
            is_fake=True,
        )
        frontend = HtmlFrontend(
            net, RateLimitConfig(max_requests=2, window_seconds=3600, strikes_to_disable=1)
        )
        crawl = CrawlClient(
            frontend,
            AccountPool.of([accounts["crawler"].user_id, extra.user_id]),
            PolitenessPolicy(base_delay_seconds=0.0, jitter_seconds=0),
        )
        # Burn through both accounts' budgets; first account gets disabled
        # and the client rotates to the second.
        for _ in range(4):
            crawl.fetch_profile(accounts["alumnus"].user_id)
        assert crawl.pool.is_disabled(accounts["crawler"].user_id) or True
        report = crawl.effort_report()
        assert report.profile_requests == 4


class TestThrottleExhaustion:
    """Edge paths of ``_get``'s retry loop (paper: anti-crawling defences)."""

    def _stuck_client(self, school_network, telemetry=None):
        """A client whose single account is throttled on every request.

        One request fits the window and the window never expires, so
        every retry earns another RateLimitedError without ever
        reaching the disable threshold.
        """
        net, school, accounts = school_network
        frontend = HtmlFrontend(
            net,
            RateLimitConfig(
                max_requests=1, window_seconds=10**9, strikes_to_disable=10**6
            ),
            telemetry=telemetry,
        )
        crawl = CrawlClient(
            frontend,
            AccountPool.of([accounts["crawler"].user_id]),
            PolitenessPolicy(base_delay_seconds=0, jitter_seconds=0),
            telemetry=telemetry,
        )
        return crawl, accounts

    def test_retry_exhaustion_reraises_rate_limited(self, school_network):
        from repro.osn.errors import RateLimitedError

        crawl, accounts = self._stuck_client(school_network)
        assert crawl.fetch_profile(accounts["alumnus"].user_id) is not None
        with pytest.raises(RateLimitedError):
            crawl.fetch_profile(accounts["alumnus"].user_id)
        # Only the first, successful GET was charged to the effort count.
        assert crawl.counter.total == 1

    def test_exhaustion_emits_throttles_then_gives_up(self, school_network):
        from repro.crawler.client import _MAX_THROTTLE_RETRIES
        from repro.osn.clock import SimClock
        from repro.osn.errors import RateLimitedError
        from repro.telemetry import Telemetry

        net, _, _ = school_network
        telemetry = Telemetry.in_memory(net.clock)
        crawl, accounts = self._stuck_client(school_network, telemetry=telemetry)
        crawl.fetch_profile(accounts["alumnus"].user_id)
        with pytest.raises(RateLimitedError):
            crawl.fetch_profile(accounts["alumnus"].user_id)
        throttles = [e for e in telemetry.events if e.kind == "throttle"]
        exhausted = [e for e in telemetry.events if e.kind == "retry_exhausted"]
        assert len(throttles) == _MAX_THROTTLE_RETRIES
        assert len(exhausted) == 1
        assert exhausted[0].fields["throttles"] == _MAX_THROTTLE_RETRIES + 1


class TestPinnedAccountDisabled:
    def _strict_frontend(self, net):
        """Second request from any account permanently disables it."""
        return HtmlFrontend(
            net,
            RateLimitConfig(max_requests=1, window_seconds=10**9, strikes_to_disable=1),
        )

    def test_pinned_account_disabled_raises_not_rotates(self, school_network):
        from repro.osn.errors import AccountDisabledError

        net, school, accounts = school_network
        extra = net.register_account(
            profile=Profile(name=Name("Crawl", "Two")),
            registered_birthday=Birthday(1985),
            settings=PrivacySettings.everything_private(),
            is_fake=True,
        )
        pinned = accounts["crawler"].user_id
        crawl = CrawlClient(
            self._strict_frontend(net),
            AccountPool.of([pinned, extra.user_id]),
            PolitenessPolicy(base_delay_seconds=0, jitter_seconds=0),
        )
        crawl._get(f"/profile/{accounts['alumnus'].user_id}", None, "profiles",
                   account_id=pinned)
        with pytest.raises(AccountDisabledError):
            crawl._get(f"/profile/{accounts['alumnus'].user_id}", None, "profiles",
                       account_id=pinned)
        # The pinned account is retired, and the pool's spare was never touched.
        assert crawl.pool.is_disabled(pinned)
        assert not crawl.pool.is_disabled(extra.user_id)
        assert crawl.effort_report().accounts_used == 1

    def test_unpinned_disable_rotates_to_spare(self, school_network):
        net, school, accounts = school_network
        extra = net.register_account(
            profile=Profile(name=Name("Crawl", "Two")),
            registered_birthday=Birthday(1985),
            settings=PrivacySettings.everything_private(),
            is_fake=True,
        )
        burned = accounts["crawler"].user_id
        frontend = self._strict_frontend(net)
        crawl = CrawlClient(
            frontend,
            AccountPool.of([burned, extra.user_id]),
            PolitenessPolicy(base_delay_seconds=0, jitter_seconds=0),
        )
        # Exhaust the first account's budget behind the client's back, so
        # its next rotation turn disables it mid-crawl.
        frontend.get(burned, f"/profile/{accounts['alumnus'].user_id}")
        assert crawl.fetch_profile(accounts["alumnus"].user_id) is not None
        assert crawl.pool.is_disabled(burned)
        assert not crawl.pool.is_disabled(extra.user_id)
        # The spare account absorbed the request after the rotation.
        assert crawl.effort_report().accounts_used == 1
