"""Tests for Jaccard-based hidden-friendship inference (Section 6.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hidden_links import (
    InferredLink,
    evaluate_link_inference,
    infer_hidden_links,
    jaccard_index,
)


class TestJaccardIndex:
    def test_identical_sets(self):
        assert jaccard_index({1, 2, 3}, {1, 2, 3}) == pytest.approx(1.0)

    def test_disjoint_sets(self):
        assert jaccard_index({1, 2}, {3, 4}) == 0.0

    def test_partial_overlap(self):
        assert jaccard_index({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard_index(set(), set()) == 0.0

    def test_one_empty(self):
        assert jaccard_index({1}, set()) == 0.0

    @given(
        st.sets(st.integers(0, 30), max_size=15),
        st.sets(st.integers(0, 30), max_size=15),
    )
    @settings(max_examples=80)
    def test_bounded_and_symmetric(self, a, b):
        j = jaccard_index(a, b)
        assert 0.0 <= j <= 1.0
        assert j == pytest.approx(jaccard_index(b, a))


class TestInference:
    def test_high_overlap_pair_predicted(self):
        reverse = {
            1: {10, 11, 12, 13},
            2: {10, 11, 12, 14},
            3: {20, 21},
        }
        links = infer_hidden_links(reverse, threshold=0.3, min_common=2)
        assert [l.pair for l in links] == [(1, 2)]
        assert links[0].common_friends == 3

    def test_threshold_respected(self):
        reverse = {1: {10, 11, 12, 13, 14, 15}, 2: {10, 16, 17, 18, 19, 20}}
        assert not infer_hidden_links(reverse, threshold=0.5, min_common=1)

    def test_min_common_respected(self):
        reverse = {1: {10}, 2: {10}}
        assert not infer_hidden_links(reverse, threshold=0.0, min_common=2)
        assert infer_hidden_links(reverse, threshold=0.0, min_common=1)

    def test_results_sorted_by_jaccard(self):
        reverse = {
            1: {10, 11, 12},
            2: {10, 11, 12},
            3: {10, 11, 40, 41},
        }
        links = infer_hidden_links(reverse, threshold=0.1, min_common=2)
        jaccards = [l.jaccard for l in links]
        assert jaccards == sorted(jaccards, reverse=True)

    def test_empty_input(self):
        assert infer_hidden_links({}) == []

    @given(
        st.dictionaries(
            st.integers(0, 10),
            st.sets(st.integers(100, 130), max_size=10),
            max_size=8,
        ),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=50)
    def test_predicted_pairs_are_ordered_and_unique(self, reverse, threshold):
        links = infer_hidden_links(reverse, threshold=threshold, min_common=1)
        pairs = [l.pair for l in links]
        assert len(pairs) == len(set(pairs))
        for a, b in pairs:
            assert a < b
            assert threshold <= jaccard_index(reverse[a], reverse[b])


class TestEvaluation:
    def test_precision_recall(self):
        links = [
            InferredLink((1, 2), 0.8, 4),
            InferredLink((1, 3), 0.5, 2),
        ]
        truth = {(1, 2)}
        evaluation = evaluate_link_inference(
            links, lambda a, b: (a, b) in truth, hidden_pairs=[(1, 2), (4, 5)]
        )
        assert evaluation.precision == pytest.approx(0.5)
        assert evaluation.recall == pytest.approx(0.5)
        assert 0 < evaluation.f1 < 1

    def test_empty_predictions(self):
        evaluation = evaluate_link_inference([], lambda a, b: True, [(1, 2)])
        assert evaluation.precision == 0.0
        assert evaluation.recall == 0.0
        assert evaluation.f1 == 0.0


class TestEndToEnd:
    def test_recovers_hidden_minor_links_on_tiny_world(self, tiny_world, tiny_attack):
        """Inference on real reverse-lookup data finds true hidden edges
        with reasonable precision."""
        from repro.core.api import make_client
        from repro.core.extension import build_extended_profiles

        client = make_client(tiny_world, 1)
        extended = build_extended_profiles(tiny_attack, client, t=100)
        truth_students = tiny_world.ground_truth().all_student_uids
        minors = {
            uid: p.reverse_friends
            for uid, p in extended.items()
            if not p.appears_registered_adult and uid in truth_students
        }
        links = infer_hidden_links(minors, threshold=0.25, min_common=3)
        if not links:
            pytest.skip("no links inferred at this threshold on the tiny world")
        graph = tiny_world.network.graph
        correct = sum(1 for l in links if graph.are_friends(*l.pair))
        precision = correct / len(links)
        # Base rate: probability a random pair of these minors is friends.
        uids = sorted(minors)
        pairs = hits = 0
        for i, a in enumerate(uids):
            for b in uids[i + 1 :]:
                pairs += 1
                hits += graph.are_friends(a, b)
        base_rate = hits / pairs
        assert precision > 1.5 * base_rate  # real lift over chance
