"""Tests for the friendship builder's structural guarantees."""

import random

import pytest

from repro.worldgen import friendship as friendship_mod
from repro.worldgen.population import Role
from repro.worldgen.presets import tiny
from repro.worldgen.world import build_world


@pytest.fixture(scope="module")
def world():
    return build_world(tiny(seed=23))


class TestAttendanceWindows:
    def test_student_window_ends_now(self, world):
        now = world.config.observation_year
        for pid in world.population.students_by_school[0][2013][:10]:
            person = world.population.person(pid)
            start, end = friendship_mod._attendance_window(person, now)
            assert end == pytest.approx(now)
            assert start < end

    def test_former_student_window_in_past(self, world):
        now = world.config.observation_year
        for pid in world.population.former_by_school[0][:10]:
            person = world.population.person(pid)
            start, end = friendship_mod._attendance_window(person, now)
            assert end < now
            assert start < end

    def test_alumnus_window_ends_at_graduation(self, world):
        now = world.config.observation_year
        cohort = sorted(world.population.alumni_by_school[0])[0]
        for pid in world.population.alumni_by_school[0][cohort][:10]:
            person = world.population.person(pid)
            start, end = friendship_mod._attendance_window(person, now)
            assert end == pytest.approx(cohort + 0.45)
            assert end - start == pytest.approx(4.0)

    def test_external_has_no_window(self, world):
        pid = world.population.ids_with_role(Role.EXTERNAL)[0]
        with pytest.raises(ValueError):
            friendship_mod._attendance_window(world.population.person(pid), 2012.25)


class TestEdgeStructure:
    def test_no_self_edges(self, world):
        for a, b in list(world.network.graph.edges())[:5000]:
            assert a != b

    def test_graph_and_account_friend_sets_agree(self, world):
        graph = world.network.graph
        for uid, account in list(world.network.users.items())[:300]:
            assert account.friend_ids == set(graph.neighbors(uid))

    def test_recent_alumni_know_current_students(self, world):
        """The Section-7 'natural approach' depends on these edges."""
        truth = world.ground_truth()
        graph = world.network.graph
        current = world.network.clock.current_year
        recent = [
            uid
            for pid in world.population.alumni_by_school[0].get(current - 1, [])
            if (uid := world.account_index.user_for(pid)) is not None
        ]
        students = truth.all_student_uids
        with_student_friends = sum(
            1 for uid in recent if graph.neighbors(uid) & students
        )
        assert with_student_friends / max(len(recent), 1) > 0.3

    def test_distant_alumni_rarely_know_students(self, world):
        truth = world.ground_truth()
        graph = world.network.graph
        oldest = sorted(world.population.alumni_by_school[0])[0]
        old_uids = [
            uid
            for pid in world.population.alumni_by_school[0][oldest]
            if (uid := world.account_index.user_for(pid)) is not None
        ]
        students = truth.all_student_uids
        linked = sum(1 for uid in old_uids if graph.neighbors(uid) & students)
        assert linked / max(len(old_uids), 1) < 0.3

    def test_transfer_students_less_connected(self, world):
        """Window weighting: short-tenure students have fewer in-school
        friends than long-tenure classmates."""
        truth = world.ground_truth()
        graph = world.network.graph
        students = truth.all_student_uids
        short, long_ = [], []
        for members in world.population.students_by_school[0].values():
            for pid in members:
                uid = world.account_index.user_for(pid)
                if uid is None:
                    continue
                person = world.population.person(pid)
                in_school = graph.subgraph_degree(uid, students)
                if person.tenure_years < 1.0:
                    short.append(in_school)
                elif person.tenure_years > 2.0:
                    long_.append(in_school)
        if not short or not long_:
            pytest.skip("no tenure contrast in this seed")
        assert sum(short) / len(short) < sum(long_) / len(long_)

    def test_deterministic(self):
        a = build_world(tiny(seed=29)).network.graph
        b = build_world(tiny(seed=29)).network.graph
        assert sorted(a.edges()) == sorted(b.edges())
