"""CSR adjacency: construction paths, queries and invariants."""

from __future__ import annotations

import pytest

from repro.colgen import CSRGraph
from repro.colgen.backend import HAS_NUMPY

#: A small fixed graph: 0-1, 0-2, 1-2, 2-3, 4 isolated.
_EDGES = [(0, 1), (0, 2), (1, 2), (2, 3)]
_N = 5


@pytest.fixture
def graph():
    return CSRGraph.from_edges(_N, _EDGES)


class TestConstruction:
    def test_from_edges_round_trips(self, graph):
        assert sorted(graph.edges()) == sorted(_EDGES)

    def test_rows_are_sorted_and_symmetric(self, graph):
        graph.validate()
        assert graph.neighbors_list(0) == [1, 2]
        assert graph.neighbors_list(2) == [0, 1, 3]
        assert graph.neighbors_list(4) == []

    def test_duplicate_and_self_edges_are_dropped(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2)])
        g.validate()
        assert g.edge_count() == 1
        assert g.neighbors_list(2) == []

    def test_from_sorted_rows_matches_from_edges(self, graph):
        rebuilt = CSRGraph.from_sorted_rows(
            graph.neighbors_list(u) for u in range(_N)
        )
        assert rebuilt.neighbors_list(2) == graph.neighbors_list(2)
        assert rebuilt.edge_count() == graph.edge_count()

    @pytest.mark.skipif(not HAS_NUMPY, reason="native path needs numpy")
    def test_from_directed_arrays_dedups_and_sorts(self):
        import numpy as np

        # both orientations of 0-1 (twice), 1-2, 2-3, plus a self loop
        src = np.array([0, 1, 0, 1, 1, 2, 2, 3, 0], dtype=np.int64)
        dst = np.array([1, 0, 1, 0, 2, 1, 3, 2, 0], dtype=np.int64)
        g = CSRGraph.from_directed_arrays(4, src, dst)
        g.validate()
        assert sorted(g.edges()) == [(0, 1), (1, 2), (2, 3)]


class TestQueries:
    def test_degree(self, graph):
        assert [graph.degree(u) for u in range(_N)] == [2, 2, 3, 1, 0]

    def test_are_friends_is_symmetric(self, graph):
        for a, b in _EDGES:
            assert graph.are_friends(a, b) and graph.are_friends(b, a)
        assert not graph.are_friends(0, 3)
        assert not graph.are_friends(4, 0)

    def test_mutual_friends(self, graph):
        assert graph.mutual_friends(0, 1) == {2}
        assert graph.mutual_friend_count(0, 1) == 1
        assert graph.mutual_friends(0, 3) == {2}
        assert graph.mutual_friend_count(2, 4) == 0

    def test_mean_degree_and_edge_count(self, graph):
        assert graph.edge_count() == len(_EDGES)
        assert graph.mean_degree() == pytest.approx(2 * len(_EDGES) / _N)

    def test_nbytes_positive(self, graph):
        assert graph.nbytes > 0


class TestValidate:
    def test_rejects_unsorted_row(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2)])
        g.indices[0], g.indices[1] = g.indices[1], g.indices[0]
        with pytest.raises(ValueError):
            g.validate()

    def test_rejects_asymmetry(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        g.indices[0] = 2  # 0->2 without 2->0
        with pytest.raises(ValueError):
            g.validate()

    def test_rejects_self_loop(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        # make 1's row contain 1 itself while staying sorted
        row = g.neighbors_list(1)
        assert row == [0, 2]
        g.indices[g.indptr[1] + 1] = 1
        with pytest.raises(ValueError):
            g.validate()
