"""The regression gate: golden-record comparisons and CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf.compare import (
    RecordSetError,
    check_budgets,
    compare_sets,
    load_record_set,
    render_markdown,
    render_text,
)
from repro.perf.record import SCHEMA_VERSION, metric, new_record, write_record


def golden(benchmark="crawl", throughput=100.0, rss=1_000_000, requests=500):
    return new_record(
        benchmark,
        params={"preset": "tiny", "seed": 7},
        metrics={
            "throughput": metric(
                throughput, "pages/sec", "higher", tolerance_pct=10
            ),
            "peak_rss_bytes": metric(rss, "bytes", "lower", tolerance_pct=15),
            "requests": metric(requests, "count", "exact"),
            "wall_seconds": metric(1.0, "seconds", "info"),
        },
    )


def kinds(report):
    return {(item.benchmark, item.metric): item.kind for item in report.items}


# ----------------------------------------------------------------------
# compare_sets semantics
# ----------------------------------------------------------------------

def test_identical_sets_pass():
    old = {"crawl": golden()}
    report = compare_sets(old, {"crawl": golden()})
    assert report.ok
    assert kinds(report)[("crawl", "throughput")] == "ok"


def test_twenty_percent_throughput_drop_regresses():
    report = compare_sets({"crawl": golden()}, {"crawl": golden(throughput=80.0)})
    assert not report.ok
    assert kinds(report)[("crawl", "throughput")] == "regression"


def test_within_band_jitter_passes():
    report = compare_sets({"crawl": golden()}, {"crawl": golden(throughput=97.0)})
    assert report.ok


def test_throughput_gain_is_improvement():
    report = compare_sets({"crawl": golden()}, {"crawl": golden(throughput=130.0)})
    assert report.ok
    assert kinds(report)[("crawl", "throughput")] == "improvement"


def test_rss_growth_regresses():
    report = compare_sets({"crawl": golden()}, {"crawl": golden(rss=1_300_000)})
    assert not report.ok
    assert kinds(report)[("crawl", "peak_rss_bytes")] == "regression"


def test_exact_drift_warns_but_does_not_gate():
    report = compare_sets({"crawl": golden()}, {"crawl": golden(requests=501)})
    assert report.ok
    assert kinds(report)[("crawl", "requests")] == "changed"


def test_missing_metric_gates():
    new = golden()
    del new["metrics"]["throughput"]
    report = compare_sets({"crawl": golden()}, {"crawl": new})
    assert not report.ok
    assert kinds(report)[("crawl", "throughput")] == "missing-metric"


def test_missing_benchmark_gates():
    report = compare_sets(
        {"crawl": golden(), "attack": golden("attack")}, {"crawl": golden()}
    )
    assert not report.ok
    assert kinds(report)[("attack", "")] == "missing-benchmark"


def test_new_benchmark_and_metric_do_not_gate():
    new = golden()
    new["metrics"]["extra"] = metric(1.0, "count", "exact")
    report = compare_sets(
        {"crawl": golden()}, {"crawl": new, "linkage": golden("linkage")}
    )
    assert report.ok
    assert kinds(report)[("crawl", "extra")] == "new-metric"
    assert kinds(report)[("linkage", "")] == "new-benchmark"


def test_schema_version_mismatch_skips_pair():
    old = golden()
    old["schema_version"] = SCHEMA_VERSION + 1
    report = compare_sets({"crawl": old}, {"crawl": golden(throughput=10.0)})
    assert report.ok  # the huge drop is not gated: the pair was skipped
    assert kinds(report)[("crawl", "")] == "skipped-version"


def test_pre_schema_old_record_skips_pair_but_budget_still_applies():
    old = {"crawl": {"accounts": 7}}  # old flat format, schema-invalid
    new = golden()
    new["metrics"]["overhead_percent"] = metric(
        12.0, "percent", "info", max_value=10.0
    )
    report = compare_sets(old, {"crawl": new})
    assert kinds(report)[("crawl", "")] == "skipped-version"
    assert not report.ok
    assert kinds(report)[("crawl", "overhead_percent")] == "budget"


def test_invalid_new_record_is_infrastructure_error():
    bad = golden()
    del bad["metrics"]
    with pytest.raises(RecordSetError):
        compare_sets({"crawl": golden()}, {"crawl": bad})


def test_budget_gate_without_old_counterpart():
    record = golden()
    record["metrics"]["overhead_percent"] = metric(
        12.0, "percent", "info", max_value=10.0
    )
    [item] = check_budgets(record)
    assert item.kind == "budget"
    assert "exceeds budget" in item.note
    assert check_budgets(golden()) == []


def test_renderers_cover_the_findings():
    report = compare_sets({"crawl": golden()}, {"crawl": golden(throughput=80.0)})
    text = render_text(report)
    assert "REGRESSION" in text and "throughput" in text
    markdown = render_markdown(report)
    assert "| crawl | throughput (pages/sec) |" in markdown
    assert "1 gating failure" in markdown


# ----------------------------------------------------------------------
# record sets and the CLI gate
# ----------------------------------------------------------------------

def write_set(directory, records):
    directory.mkdir(parents=True, exist_ok=True)
    for name, record in records.items():
        write_record(record, directory / f"BENCH_{name}.json")


def test_load_record_set_globs_and_strips_prefix(tmp_path):
    write_set(tmp_path, {"crawl": golden(), "attack": golden("attack")})
    (tmp_path / "notes.txt").write_text("ignored")
    records = load_record_set(str(tmp_path))
    assert sorted(records) == ["attack", "crawl"]


def test_load_record_set_missing_path_raises():
    with pytest.raises(RecordSetError):
        load_record_set("/nonexistent/bench-dir")


def test_load_record_set_unreadable_json_raises(tmp_path):
    (tmp_path / "BENCH_crawl.json").write_text("{not json")
    with pytest.raises(RecordSetError):
        load_record_set(str(tmp_path))


def test_cli_compare_exit_codes(tmp_path, capsys):
    old_dir, new_dir = tmp_path / "old", tmp_path / "new"
    write_set(old_dir, {"crawl": golden()})
    write_set(new_dir, {"crawl": golden(throughput=80.0)})

    assert main(["bench", "compare", str(old_dir), str(old_dir)]) == 0
    assert main(["bench", "compare", str(old_dir), str(new_dir)]) == 1
    assert main(["bench", "compare", str(old_dir), str(new_dir), "--warn-only"]) == 0
    out = capsys.readouterr()
    assert "REGRESSION" in out.out
    assert "warn-only" in out.err


def test_cli_compare_infrastructure_failures(tmp_path, capsys):
    old_dir, new_dir = tmp_path / "old", tmp_path / "new"
    write_set(old_dir, {"crawl": golden()})
    new_dir.mkdir()
    (new_dir / "BENCH_crawl.json").write_text(json.dumps({"benchmark": "crawl"}))

    assert main(["bench", "compare", str(old_dir), str(new_dir)]) == 2
    assert main(["bench", "compare", str(old_dir), str(tmp_path / "empty")]) == 2
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["bench", "compare", str(old_dir), str(empty)]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_report_renders_markdown_and_never_gates(tmp_path, capsys):
    old_dir, new_dir = tmp_path / "old", tmp_path / "new"
    write_set(old_dir, {"crawl": golden()})
    write_set(new_dir, {"crawl": golden(throughput=50.0)})
    out_file = tmp_path / "trend.md"

    assert main(
        ["bench", "report", str(old_dir), str(new_dir), "--out", str(out_file)]
    ) == 0
    printed = capsys.readouterr().out
    assert "# Perf trajectory" in printed
    assert "REGRESSION" in out_file.read_text()
