"""Unit tests for the sliding-window rate limiter."""

import pytest

from repro.osn.clock import SimClock
from repro.osn.errors import AccountDisabledError, RateLimitedError
from repro.osn.ratelimit import RateLimitConfig, RateLimiter


@pytest.fixture()
def limiter():
    clock = SimClock()
    return clock, RateLimiter(
        clock, RateLimitConfig(max_requests=3, window_seconds=10, strikes_to_disable=3)
    )


class TestWindow:
    def test_under_limit_passes(self, limiter):
        _, rl = limiter
        for _ in range(3):
            rl.check(1)

    def test_over_limit_raises(self, limiter):
        _, rl = limiter
        for _ in range(3):
            rl.check(1)
        with pytest.raises(RateLimitedError):
            rl.check(1)

    def test_window_slides(self, limiter):
        clock, rl = limiter
        for _ in range(3):
            rl.check(1)
        clock.sleep(10.1)
        rl.check(1)  # old requests aged out

    def test_retry_after_positive(self, limiter):
        _, rl = limiter
        for _ in range(3):
            rl.check(1)
        with pytest.raises(RateLimitedError) as excinfo:
            rl.check(1)
        assert excinfo.value.retry_after > 0

    def test_accounts_isolated(self, limiter):
        _, rl = limiter
        for _ in range(3):
            rl.check(1)
        rl.check(2)  # other account unaffected

    def test_requests_in_window_counts(self, limiter):
        clock, rl = limiter
        rl.check(1)
        rl.check(1)
        assert rl.requests_in_window(1) == 2
        clock.sleep(11)
        assert rl.requests_in_window(1) == 0


class TestStrikes:
    def test_strikes_accumulate_then_disable(self, limiter):
        _, rl = limiter
        for _ in range(3):
            rl.check(1)
        for _ in range(2):
            with pytest.raises(RateLimitedError):
                rl.check(1)
        assert rl.strikes(1) == 2
        with pytest.raises(AccountDisabledError):
            rl.check(1)
        assert rl.is_disabled(1)

    def test_disabled_account_stays_disabled(self, limiter):
        clock, rl = limiter
        for _ in range(3):
            rl.check(1)
        for _ in range(3):
            with pytest.raises((RateLimitedError, AccountDisabledError)):
                rl.check(1)
        clock.sleep(1000)
        with pytest.raises(AccountDisabledError):
            rl.check(1)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_requests": 0},
            {"window_seconds": 0},
            {"strikes_to_disable": 0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RateLimitConfig(**kwargs).validate()
