"""Tests for the Section-2 data-broker linkage (voter registry -> address)."""

import pytest

from repro.core.api import make_client
from repro.core.extension import build_extended_profiles
from repro.core.linkage import (
    AddressCandidate,
    Confidence,
    evaluate_linkage,
    link_home_addresses,
)
from repro.worldgen.records import VoterRecord, VoterRegistry, build_voter_registry


@pytest.fixture(scope="module")
def registry(tiny_world):
    return build_voter_registry(
        tiny_world.population, tiny_world.config.observation_year, seed=5
    )


@pytest.fixture(scope="module")
def extended(tiny_world, tiny_attack):
    client = make_client(tiny_world, 1)
    return build_extended_profiles(tiny_attack, client, t=100)


class TestVoterRegistry:
    def test_contains_only_adults(self, registry, tiny_world):
        obs = tiny_world.config.observation_year
        for record in registry.records:
            assert obs - record.birth_year >= 17.0

    def test_no_minors_even_lying_ones(self, registry, tiny_world):
        """The registry keys off REAL age - lying on Facebook does not
        put a 15-year-old in the voter file."""
        minors = {
            tiny_world.population.person(pid).name.full
            for pid in range(len(tiny_world.population))
            if tiny_world.population.person(pid).real_age(
                tiny_world.config.observation_year
            )
            < 18.0
            and tiny_world.population.person(pid).street_address
        }
        registered = {f"{r.first_name} {r.last_name}" for r in registry.records}
        # Name collisions are possible, but most minors must be absent.
        assert len(minors & registered) < max(3, len(minors) // 4)

    def test_registration_rate_respected(self, tiny_world):
        full = build_voter_registry(
            tiny_world.population, tiny_world.config.observation_year,
            registration_rate=1.0,
        )
        partial = build_voter_registry(
            tiny_world.population, tiny_world.config.observation_year,
            registration_rate=0.5, seed=1,
        )
        assert 0.35 * len(full) < len(partial) < 0.65 * len(full)

    def test_lookup_by_surname_city(self, registry):
        record = registry.records[0]
        hits = registry.lookup(record.last_name, record.city)
        assert record in hits

    def test_lookup_case_insensitive(self, registry):
        record = registry.records[0]
        assert registry.lookup(record.last_name.upper(), record.city.upper())

    def test_lookup_person_exact(self, registry):
        record = registry.records[0]
        found = registry.lookup_person(record.first_name, record.last_name, record.city)
        assert found is not None
        assert found.street_address == record.street_address


class TestLinkageUnit:
    def test_parent_on_friend_list_high_confidence(self):
        registry = VoterRegistry(
            [VoterRecord("Pat", "Miller", "12 Oak St", "Smallville", 1970)]
        )
        from repro.core.extension import ExtendedProfile

        student = ExtendedProfile(
            user_id=1,
            name="Kim Miller",
            gender=None,
            school_name="HS",
            inferred_year=2014,
            inferred_city="Smallville",
            inferred_birth_year=1996,
            appears_registered_adult=False,
            view=None,
            reverse_friends={42},
        )
        linked = link_home_addresses(
            {1: student}, registry, friend_name_of={42: "Pat Miller"}.get
        )
        candidate = linked[1][0]
        assert candidate.confidence is Confidence.HIGH
        assert candidate.street_address == "12 Oak St"
        assert candidate.via_friend == "Pat Miller"

    def test_unique_household_medium_confidence(self):
        registry = VoterRegistry(
            [VoterRecord("Pat", "Miller", "12 Oak St", "Smallville", 1970)]
        )
        from repro.core.extension import ExtendedProfile

        student = ExtendedProfile(
            user_id=1, name="Kim Miller", gender=None, school_name="HS",
            inferred_year=2014, inferred_city="Smallville",
            inferred_birth_year=1996, appears_registered_adult=False, view=None,
        )
        linked = link_home_addresses({1: student}, registry)
        assert linked[1][0].confidence is Confidence.MEDIUM

    def test_ambiguous_surname_low_confidence(self):
        registry = VoterRegistry(
            [
                VoterRecord("Pat", "Miller", "12 Oak St", "Smallville", 1970),
                VoterRecord("Sam", "Miller", "900 Elm Ave", "Smallville", 1965),
            ]
        )
        from repro.core.extension import ExtendedProfile

        student = ExtendedProfile(
            user_id=1, name="Kim Miller", gender=None, school_name="HS",
            inferred_year=2014, inferred_city="Smallville",
            inferred_birth_year=1996, appears_registered_adult=False, view=None,
        )
        linked = link_home_addresses({1: student}, registry)
        assert all(c.confidence is Confidence.LOW for c in linked[1])
        assert len(linked[1]) == 2

    def test_no_match_yields_nothing(self):
        registry = VoterRegistry([])
        from repro.core.extension import ExtendedProfile

        student = ExtendedProfile(
            user_id=1, name="Kim Miller", gender=None, school_name="HS",
            inferred_year=2014, inferred_city="Smallville",
            inferred_birth_year=1996, appears_registered_adult=False, view=None,
        )
        assert link_home_addresses({1: student}, registry) == {}


class TestLinkageEndToEnd:
    def test_broker_pins_addresses(self, tiny_world, tiny_attack, extended, registry):
        names = {uid: p.name for uid, p in extended.items()}
        names.update(tiny_attack.seeds)

        def friend_name_of(uid):
            if uid in names:
                return names[uid]
            view = tiny_attack.profiles.get(uid)
            return view.name if view else None

        linked = link_home_addresses(extended, registry, friend_name_of)
        assert linked  # some students linked to candidate addresses
        evaluation = evaluate_linkage(linked, tiny_world)
        assert evaluation.linked > 0
        # High-confidence (parent-on-friend-list) links are very precise.
        if evaluation.high_confidence >= 5:
            assert evaluation.high_confidence_precision > 0.8
        # Best-candidate precision comfortably beats random streets.
        assert evaluation.precision_of_best > 0.1
