"""Regression: the attacker-layer import graph stays closed.

``repro.crawler`` and ``repro.core`` must never (transitively, at
runtime) reach ``repro.worldgen`` or non-public ``repro.osn`` modules,
except through the two sanctioned boundaries: the attacker-visible OSN
surface and the explicitly-marked evaluation seam.  This is the same
invariant ORACLE001 checks file-by-file, re-proved here over the whole
reachable graph so a leak smuggled through an intermediate module
(e.g. crawler -> telemetry -> worldgen) would also fail.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Dict, List

from repro.lint import Baseline, lint_paths, module_name_for, render_text
from repro.lint.engine import iter_python_files
from repro.lint.rules.base import FileContext
from repro.lint.rules.oracle import (
    ATTACKER_PACKAGES,
    ATTACKER_VISIBLE_OSN,
    EVALUATION_MODULES,
    forbidden_import,
    import_targets,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
PACKAGE_ROOT = os.path.join(REPO_ROOT, "src", "repro")


def _repo_modules() -> Dict[str, str]:
    return {
        module_name_for(path): path
        for path in iter_python_files([PACKAGE_ROOT])
    }


def _runtime_imports(path: str, module: str) -> List[str]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source)
    ctx = FileContext.build(
        path,
        module,
        source,
        tree,
        is_package=os.path.basename(path) == "__init__.py",
    )
    targets: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if node in ctx.typing_only:
                continue  # typing-only imports never execute
            targets.extend(import_targets(ctx, node))
    return [t for t in targets if t == "repro" or t.startswith("repro.")]


def test_attacker_reachable_imports_stay_inside_the_boundary():
    modules = _repo_modules()
    start = sorted(
        module
        for module in modules
        if any(
            module == package or module.startswith(package + ".")
            for package in ATTACKER_PACKAGES
        )
        and module not in EVALUATION_MODULES
    )
    assert start, "attacker packages disappeared; update the boundary test"

    seen = set(start)
    queue = list(start)
    while queue:
        module = queue.pop()
        if module in EVALUATION_MODULES or module in ATTACKER_VISIBLE_OSN:
            continue  # sanctioned boundary: do not traverse through it
        reason = forbidden_import(module)
        assert reason is None, f"attacker layers reach '{module}': {reason}"
        path = modules.get(module)
        if path is None:
            continue
        for target in _runtime_imports(path, module):
            resolved = target
            while resolved and resolved not in modules:
                resolved = resolved.rpartition(".")[0]
            if resolved and resolved not in seen:
                seen.add(resolved)
                queue.append(resolved)

    leaked = sorted(m for m in seen if m.startswith("repro.worldgen"))
    assert not leaked, f"worldgen became attacker-reachable: {leaked}"


def test_attacker_visible_surface_modules_exist():
    modules = _repo_modules()
    for module in sorted(ATTACKER_VISIBLE_OSN) + sorted(EVALUATION_MODULES):
        assert module in modules, f"allowlisted module '{module}' does not exist"


def test_repo_lints_clean_against_the_shipped_baseline(monkeypatch):
    """Every shipped baseline entry is justified debt, never serve-path.

    The serve/crawl path must lint clean with no grandfathering at all
    (a scale regression there defeats the columnar port); attack-pipeline
    debt may be baselined but each entry must say why and when it dies.
    """
    baseline_path = os.path.join(REPO_ROOT, "lint-baseline.json")
    with open(baseline_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    serve_path_prefixes = (
        os.path.join("src", "repro", "crawler") + os.sep,
        os.path.join("src", "repro", "colgen", "serve"),
    )
    for row in document["findings"]:
        why = row.get("why", "")
        assert len(why) >= 40, (
            f"baseline entry for {row['rule']} at {row['path']} needs a "
            "substantive 'why' justification"
        )
        normalized = os.path.normpath(row["path"])
        assert not normalized.startswith(serve_path_prefixes), (
            f"serve/crawl-path finding {row['rule']} at {row['path']} may "
            "not be baselined; fix it"
        )
    # Baseline fingerprints carry repo-relative paths (the way CI runs
    # the linter), so lint from the repo root with the relative target.
    monkeypatch.chdir(REPO_ROOT)
    baseline = Baseline.load(baseline_path)
    report = lint_paths([os.path.join("src", "repro")], baseline=baseline)
    assert report.ok, "\n" + render_text(report)
