"""Tests for the four Section-4.4 filter rules."""

import pytest

from repro.core.filtering import (
    ALL_RULES,
    RULE_CURRENT_CITY,
    RULE_DIFFERENT_HIGH_SCHOOL,
    RULE_GRADUATE_SCHOOL,
    RULE_GRADUATION_YEAR,
    FilterConfig,
    apply_filters,
    filter_reason,
)
from repro.osn.profile import SchoolAffiliation
from repro.osn.view import ProfileView

SCHOOL = 5
CITY = "Springfield"
YEAR = 2012


def view(**kwargs):
    base = dict(user_id=1, name="Candidate")
    base.update(kwargs)
    return ProfileView(**base)


class TestIndividualRules:
    def test_graduate_school_filtered(self):
        v = view(graduate_school="State University")
        assert filter_reason(v, SCHOOL, CITY, YEAR) == RULE_GRADUATE_SCHOOL

    def test_different_high_school_filtered(self):
        v = view(high_schools=(SchoolAffiliation(9, "Other High", 2014),))
        assert filter_reason(v, SCHOOL, CITY, YEAR) == RULE_DIFFERENT_HIGH_SCHOOL

    def test_target_school_listed_not_filtered_by_rule2(self):
        v = view(
            high_schools=(
                SchoolAffiliation(9, "Other High", 2010),
                SchoolAffiliation(SCHOOL, "Target High", 2014),
            )
        )
        assert filter_reason(v, SCHOOL, CITY, YEAR) is None

    def test_out_of_range_year_filtered(self):
        v = view(high_schools=(SchoolAffiliation(SCHOOL, "Target High", 2010),))
        assert filter_reason(v, SCHOOL, CITY, YEAR) == RULE_GRADUATION_YEAR

    def test_too_future_year_filtered(self):
        v = view(high_schools=(SchoolAffiliation(SCHOOL, "Target High", 2017),))
        assert filter_reason(v, SCHOOL, CITY, YEAR) == RULE_GRADUATION_YEAR

    def test_in_range_year_not_filtered(self):
        for year in (2012, 2013, 2014, 2015):
            v = view(high_schools=(SchoolAffiliation(SCHOOL, "Target High", year),))
            assert filter_reason(v, SCHOOL, CITY, YEAR) is None

    def test_different_city_filtered(self):
        v = view(current_city="Rivertown")
        assert filter_reason(v, SCHOOL, CITY, YEAR) == RULE_CURRENT_CITY

    def test_same_city_not_filtered(self):
        v = view(current_city=CITY)
        assert filter_reason(v, SCHOOL, CITY, YEAR) is None

    def test_minimal_profile_never_filtered(self):
        assert filter_reason(view(), SCHOOL, CITY, YEAR) is None

    def test_school_without_year_not_year_filtered(self):
        v = view(high_schools=(SchoolAffiliation(SCHOOL, "Target High", None),))
        assert filter_reason(v, SCHOOL, CITY, YEAR) is None


class TestConfigToggles:
    def test_none_disables_everything(self):
        v = view(
            graduate_school="State U",
            current_city="Rivertown",
            high_schools=(SchoolAffiliation(9, "Other", 2009),),
        )
        assert filter_reason(v, SCHOOL, CITY, YEAR, FilterConfig.none()) is None

    @pytest.mark.parametrize("rule", ALL_RULES)
    def test_only_one_rule_active(self, rule):
        config = FilterConfig.only(rule)
        assert config.enabled_rules() == (rule,)

    def test_only_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            FilterConfig.only("nonsense")

    def test_city_rule_disabled_passes_movers(self):
        config = FilterConfig(current_city=False)
        v = view(current_city="Rivertown")
        assert filter_reason(v, SCHOOL, CITY, YEAR, config) is None


class TestApplyFilters:
    def test_returns_reasons_for_eliminated_only(self):
        profiles = {
            1: view(graduate_school="State U"),
            2: view(current_city=CITY),
            3: view(current_city="Elsewhere"),
        }
        eliminated = apply_filters(profiles, SCHOOL, CITY, YEAR)
        assert eliminated == {1: RULE_GRADUATE_SCHOOL, 3: RULE_CURRENT_CITY}

    def test_rule_precedence_stable(self):
        v = view(
            graduate_school="State U",
            current_city="Elsewhere",
        )
        assert filter_reason(v, SCHOOL, CITY, YEAR) == RULE_GRADUATE_SCHOOL
