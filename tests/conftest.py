"""Shared fixtures.

Session-scoped worlds and attack results are expensive to build, so
read-only tests share them; anything that mutates a world builds its
own via the factory fixtures.
"""

from __future__ import annotations

import pytest

from repro.core.api import make_client, run_attack
from repro.core.profiler import ProfilerConfig
from repro.osn.clock import SimClock
from repro.osn.network import SocialNetwork
from repro.osn.privacy import PrivacySettings
from repro.osn.profile import Birthday, Name, Profile, SchoolAffiliation
from repro.worldgen.presets import hs1, tiny
from repro.worldgen.world import build_world


@pytest.fixture(scope="session")
def tiny_world():
    """A small, fully built world (read-only; ~0.2 s)."""
    return build_world(tiny())


@pytest.fixture(scope="session")
def tiny_attack(tiny_world):
    """An enhanced+filtered attack result on the tiny world."""
    return run_attack(
        tiny_world,
        accounts=2,
        config=ProfilerConfig(threshold=120, enhanced=True, filtering=True),
    )


@pytest.fixture(scope="session")
def hs1_world():
    """The calibrated HS1 world (read-only; ~1 s)."""
    return build_world(hs1())


@pytest.fixture(scope="session")
def hs1_attack(hs1_world):
    """An enhanced+filtered attack on HS1 at the paper's scale."""
    return run_attack(
        hs1_world,
        accounts=2,
        config=ProfilerConfig(threshold=500, enhanced=True, filtering=True),
    )


@pytest.fixture()
def fresh_tiny_world():
    """A private tiny world for tests that mutate network state."""
    return build_world(tiny(seed=99))


@pytest.fixture()
def empty_network():
    """A bare Facebook-policy network at March 2012."""
    return SocialNetwork(clock=SimClock(now_year=2012.25))


@pytest.fixture()
def school_network(empty_network):
    """A network with one school and a handful of hand-built accounts.

    Returns (network, school, accounts dict) where accounts include a
    lying minor ('lying_minor', registered adult), a truthful minor
    ('minor'), an adult alumnus ('alumnus'), and a fake crawl account
    ('crawler').
    """
    net = empty_network
    school = net.register_school("Central High", "Springfield", 360)

    lying_minor = net.register_account(
        profile=Profile(
            name=Name("Lia", "Young"),
            high_schools=(SchoolAffiliation(school.school_id, school.name, 2014),),
            current_city="Springfield",
        ),
        registered_birthday=Birthday(1990),
        real_birthday=Birthday(1996),
        settings=PrivacySettings.facebook_adult_default_2012(),
        created_at_year=2008.0,
    )
    minor = net.register_account(
        profile=Profile(
            name=Name("Tim", "Trusty"),
            high_schools=(SchoolAffiliation(school.school_id, school.name, 2015),),
        ),
        registered_birthday=Birthday(1997),
        real_birthday=Birthday(1997),
        created_at_year=2010.5,
    )
    alumnus = net.register_account(
        profile=Profile(
            name=Name("Al", "Umnus"),
            high_schools=(SchoolAffiliation(school.school_id, school.name, 2008),),
            current_city="College Park",
            graduate_school="State University",
        ),
        registered_birthday=Birthday(1990),
        settings=PrivacySettings.facebook_adult_default_2012(),
        created_at_year=2007.0,
    )
    crawler = net.register_account(
        profile=Profile(name=Name("Crawl", "Bot")),
        registered_birthday=Birthday(1985),
        settings=PrivacySettings.everything_private(),
        is_fake=True,
    )
    net.add_friendship(lying_minor.user_id, minor.user_id)
    net.add_friendship(lying_minor.user_id, alumnus.user_id)
    accounts = {
        "lying_minor": lying_minor,
        "minor": minor,
        "alumnus": alumnus,
        "crawler": crawler,
    }
    return net, school, accounts
