"""Engine plumbing: suppressions, baseline round-trip, reporters, CLI."""

from __future__ import annotations

import json
import textwrap

from repro.cli import main
from repro.lint import (
    Baseline,
    DIRECTIVE_RULE,
    PARSE_ERROR_RULE,
    lint_paths,
    lint_source,
    module_name_for,
    render_json,
    render_text,
)

VIOLATION = "from repro.worldgen.world import World\n"


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(path)


def _write_attacker(tmp_path, source):
    """A fixture file whose derived module is 'repro.core.fake_core'."""
    package = tmp_path / "repro" / "core"
    package.mkdir(parents=True, exist_ok=True)
    return _write(package, "fake_core.py", source)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

class TestSuppressions:
    def test_justified_suppression_silences_finding(self):
        findings = lint_source(
            "from repro.worldgen.world import World  "
            "# repro-lint: allow(ORACLE001) -- test fixture crossing on purpose\n",
            module="repro.core.fake",
        )
        assert findings == []

    def test_suppression_is_rule_specific(self):
        findings = lint_source(
            "from repro.worldgen.world import World  "
            "# repro-lint: allow(DET001) -- wrong rule id\n",
            module="repro.core.fake",
        )
        assert [f.rule for f in findings] == ["ORACLE001"]

    def test_empty_justification_is_a_finding_and_ignored(self):
        findings = lint_source(
            "from repro.worldgen.world import World  "
            "# repro-lint: allow(ORACLE001)\n",
            module="repro.core.fake",
        )
        rules = sorted(f.rule for f in findings)
        assert rules == [DIRECTIVE_RULE, "ORACLE001"]

    def test_whitespace_justification_is_rejected(self):
        findings = lint_source(
            "from repro.worldgen.world import World  "
            "# repro-lint: allow(ORACLE001) --   \n",
            module="repro.core.fake",
        )
        assert DIRECTIVE_RULE in [f.rule for f in findings]

    def test_malformed_directive_is_a_finding(self):
        findings = lint_source(
            "x = 1  # repro-lint: allowing(ORACLE001) -- typo\n",
            module="repro.core.fake",
        )
        assert [f.rule for f in findings] == [DIRECTIVE_RULE]

    def test_multiple_rules_in_one_directive(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import time
                from repro.worldgen.world import World  # repro-lint: allow(ORACLE001, CLOCK001) -- fixture

                def now():
                    return time.time()
                """
            ),
            module="repro.core.fake",
        )
        assert [f.rule for f in findings] == ["CLOCK001"]

    def test_directive_inside_string_is_not_a_directive(self):
        findings = lint_source(
            's = "# repro-lint: allow(ORACLE001)"\n',
            module="repro.core.fake",
        )
        assert findings == []

    def test_directive_on_last_line_of_multiline_statement(self):
        findings = lint_source(
            "from repro.worldgen.world import (\n"
            "    World,\n"
            ")  # repro-lint: allow(ORACLE001) -- reflowed import, directive stays attached\n",
            module="repro.core.fake",
        )
        assert findings == []

    def test_directive_on_decorated_def_header(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import functools

                @functools.lru_cache(maxsize=None)
                def f(
                    xs=[],
                ):  # repro-lint: allow(MUT001) -- fixture: never mutated after construction
                    return xs
                """
            ),
            module="repro.osn.fake",
        )
        assert findings == []

    def test_directive_on_decorator_line_covers_the_signature(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import functools

                @functools.lru_cache(maxsize=None)  # repro-lint: allow(MUT001) -- fixture
                def f(xs=[]):
                    return xs
                """
            ),
            module="repro.osn.fake",
        )
        assert findings == []

    def test_compound_header_directive_does_not_blanket_the_suite(self):
        findings = lint_source(
            textwrap.dedent(
                """
                def g(flag):  # repro-lint: allow(MUT001) -- header only
                    def inner(xs=[]):
                        return xs
                    return inner
                """
            ),
            module="repro.osn.fake",
        )
        assert [f.rule for f in findings] == ["MUT001"]


class TestSharedDirective:
    def test_shared_without_why_is_flagged(self):
        findings = lint_source(
            "x = 1  # repro-lint: shared(Registry)\n",
            module="repro.osn.fake",
        )
        assert [f.rule for f in findings] == [DIRECTIVE_RULE]

    def test_shared_without_owner_is_malformed(self):
        findings = lint_source(
            "x = 1  # repro-lint: shared() -- nobody owns this\n",
            module="repro.osn.fake",
        )
        assert [f.rule for f in findings] == [DIRECTIVE_RULE]

    def test_shared_does_not_suppress_other_rules(self):
        findings = lint_source(
            "from repro.worldgen.world import World  "
            "# repro-lint: shared(World) -- sharing is not allowing\n",
            module="repro.core.fake",
        )
        assert [f.rule for f in findings] == ["ORACLE001"]

    def test_valid_shared_directive_is_not_a_finding(self):
        findings = lint_source(
            "x = 1  # repro-lint: shared(Registry) -- single-writer registry\n",
            module="repro.osn.fake",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

class TestBaseline:
    def test_round_trip_filters_grandfathered_findings(self, tmp_path):
        source_path = _write_attacker(tmp_path, VIOLATION)
        report = lint_paths([source_path])
        assert not report.ok

        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(report.findings).save(str(baseline_path))
        reloaded = Baseline.load(str(baseline_path))

        filtered = lint_paths([source_path], baseline=reloaded)
        assert filtered.ok
        assert filtered.baselined == len(report.findings)

    def test_new_instances_of_baselined_finding_still_fail(self, tmp_path):
        source_path = _write_attacker(tmp_path, VIOLATION)
        baseline = Baseline.from_findings(lint_paths([source_path]).findings)
        # The same import appears twice now: one slot is grandfathered,
        # the duplicate must surface as new.
        _write_attacker(tmp_path, VIOLATION + VIOLATION)
        report = lint_paths([source_path], baseline=baseline)
        assert len(report.findings) == 1
        assert report.baselined == 1

    def test_baseline_rejects_foreign_documents(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"version": 99, "findings": []}))
        try:
            Baseline.load(str(bogus))
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError for unknown version")


# ----------------------------------------------------------------------
# Engine details
# ----------------------------------------------------------------------

class TestEngine:
    def test_module_name_derivation(self):
        assert module_name_for("src/repro/core/api.py") == "repro.core.api"
        assert module_name_for("src/repro/osn/__init__.py") == "repro.osn"
        assert module_name_for("elsewhere/script.py") == "script"

    def test_unparsable_file_reports_instead_of_crashing(self, tmp_path):
        source_path = _write(tmp_path, "broken.py", "def f(:\n")
        report = lint_paths([source_path])
        assert [f.rule for f in report.findings] == [PARSE_ERROR_RULE]

    def test_reporters_render_summary(self, tmp_path):
        source_path = _write_attacker(tmp_path, VIOLATION)
        report = lint_paths([source_path])
        text = render_text(report)
        assert "ORACLE001" in text and "1 finding" in text
        document = json.loads(render_json(report))
        assert document["summary"]["ok"] is False
        assert document["findings"][0]["rule"] == "ORACLE001"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:
    def test_lint_subcommand_clean_exit(self, tmp_path, capsys):
        source_path = _write(tmp_path, "clean.py", "x = 1\n")
        assert main(["lint", "--no-cache", source_path]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_lint_subcommand_failure_exit(self, tmp_path, capsys):
        source_path = _write(tmp_path, "whatever.py", "def f(xs=[]):\n    return xs\n")
        assert main(["lint", "--no-cache", source_path]) == 1
        assert "MUT001" in capsys.readouterr().out

    def test_write_and_use_baseline(self, tmp_path, capsys):
        source_path = _write(
            tmp_path, "fake.py", "def f(xs=[]):\n    return xs\n\n\ng = f\n"
        )
        baseline_path = str(tmp_path / "baseline.json")
        assert main([
            "lint", "--no-cache", source_path,
            "--baseline", baseline_path, "--write-baseline",
        ]) == 0
        assert main([
            "lint", "--no-cache", source_path, "--baseline", baseline_path
        ]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_select_unknown_rule_is_usage_error(self, tmp_path):
        source_path = _write(tmp_path, "clean.py", "x = 1\n")
        assert main(["lint", "--no-cache", source_path, "--select", "NOPE999"]) == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("ORACLE001", "ORACLE002", "DET001", "CLOCK001", "MUT001"):
            assert rule_id in out


# ----------------------------------------------------------------------
# Worker crashes: contained as LINT002, identical across --jobs values
# ----------------------------------------------------------------------

class TestWorkerCrash:
    def _with_boom_rule(self):
        from repro.lint import all_rules
        from repro.lint.rules.base import Rule, register

        @register
        class _BoomRule(Rule):
            rule_id = "TST900"
            summary = "synthetic crash fixture"

            def check(self, ctx):
                if "BOOM_MARKER" in ctx.source:
                    raise RuntimeError("synthetic rule crash")
                return iter(())

        return all_rules()

    def _pop_boom_rule(self):
        from repro.lint.rules.base import _REGISTRY

        _REGISTRY.pop("TST900", None)

    def test_crash_becomes_lint002_with_the_child_traceback(self, tmp_path):
        rules = self._with_boom_rule()
        try:
            healthy = _write(tmp_path, "a.py", "x = 1\n")
            doomed = _write(tmp_path, "b.py", "BOOM_MARKER = 1\n")
            report = lint_paths([healthy, doomed], rules=rules)
            assert [f.rule for f in report.findings] == [PARSE_ERROR_RULE]
            crash = report.findings[0]
            assert crash.path == doomed
            assert "RuntimeError('synthetic rule crash')" in crash.message
            assert "Traceback" in crash.message
            assert report.infrastructure_errors == 1
        finally:
            self._pop_boom_rule()

    def test_pool_output_matches_serial_and_siblings_survive(self, tmp_path):
        rules = self._with_boom_rule()
        try:
            paths = [
                _write(tmp_path, "a.py", "def f(xs=[]):\n    return xs\n"),
                _write(tmp_path, "b.py", "BOOM_MARKER = 1\n"),
                _write(tmp_path, "c.py", "x = 1\n"),
            ]
            serial = lint_paths(paths, rules=rules, jobs=1)
            pooled = lint_paths(paths, rules=rules, jobs=2)
            assert pooled.findings == serial.findings
            rules_seen = {f.rule for f in serial.findings}
            # the sibling file's MUT001 finding survived the crash
            assert {"MUT001", PARSE_ERROR_RULE} <= rules_seen
        finally:
            self._pop_boom_rule()

    def test_crash_is_an_infrastructure_exit(self, tmp_path):
        self._with_boom_rule()
        try:
            doomed = _write(tmp_path, "b.py", "BOOM_MARKER = 1\n")
            assert main(["lint", "--no-cache", doomed]) == 2
        finally:
            self._pop_boom_rule()


# ----------------------------------------------------------------------
# Cache invalidation: adding a rule *module* must cold the cache
# ----------------------------------------------------------------------

class TestRuleSourceCacheInvalidation:
    def _register_fixture_rule(self):
        from repro.lint.rules.base import Rule, register

        @register
        class _FreshRule(Rule):
            rule_id = "TST901"
            summary = "cache invalidation fixture"

            def check(self, ctx):
                return iter(())

    def _pop_fixture_rule(self):
        from repro.lint.rules.base import _REGISTRY

        _REGISTRY.pop("TST901", None)

    def test_signature_changes_when_a_rule_module_joins(self):
        from repro.lint import rule_signature

        selected = ["MUT001", "DET001"]
        before = rule_signature(selected)
        self._register_fixture_rule()
        try:
            # Same engine version, same summary version, same *selected*
            # ids — only the registry grew.  The source digest must move.
            after = rule_signature(selected)
        finally:
            self._pop_fixture_rule()
        assert after != before
        assert rule_signature(selected) == before

    def test_new_rule_module_colds_a_warm_cache(self, tmp_path):
        from repro.lint import LintCache, all_rules, rule_signature

        source_path = _write(tmp_path, "m.py", "x = 1\n")
        cache_path = str(tmp_path / "cache.json")
        selected = [rule.rule_id for rule in all_rules()]

        cold = lint_paths(
            [source_path], cache=LintCache(cache_path, rule_signature(selected))
        )
        assert cold.files_reparsed == 1
        warm = lint_paths(
            [source_path], cache=LintCache(cache_path, rule_signature(selected))
        )
        assert warm.cache_hits == 1 and warm.files_reparsed == 0

        self._register_fixture_rule()
        try:
            stale = lint_paths(
                [source_path],
                cache=LintCache(cache_path, rule_signature(selected)),
            )
            # the selected id set did not change, but a registered rule
            # module did: every entry must be treated as stale
            assert stale.cache_hits == 0 and stale.files_reparsed == 1
        finally:
            self._pop_fixture_rule()
