"""End-to-end integration: the paper's headline results at HS1 scale.

These tests assert the *shape* of the paper's findings (Section 5.6):
most of the student body recovered at t near the school size, with a
false-positive rate in the tens of percent; enhanced beats basic at
small thresholds; filtering helps at small t and stops helping at large
t; year classification is accurate; effort is a small multiple of the
school size.
"""

import pytest

from repro.core.api import make_client, run_attack
from repro.core.evaluation import evaluate_full, sweep_full
from repro.core.profiler import ProfilerConfig

THRESHOLDS = (200, 300, 400, 500)


@pytest.fixture(scope="module")
def hs1_results(hs1_world):
    """All four methodology variants on one HS1 world."""
    configs = {
        "basic": ProfilerConfig(threshold=500),
        "basic_filtered": ProfilerConfig(threshold=500, filtering=True),
        "enhanced": ProfilerConfig(threshold=500, enhanced=True),
        "enhanced_filtered": ProfilerConfig(threshold=500, enhanced=True, filtering=True),
    }
    return {
        name: run_attack(hs1_world, accounts=2, config=config)
        for name, config in configs.items()
    }


class TestDatasetShape:
    """Table-2 magnitudes."""

    def test_seed_count_near_school_size(self, hs1_results):
        seeds = len(hs1_results["basic"].seeds)
        assert 150 <= seeds <= 700  # paper: 352

    def test_core_about_five_percent(self, hs1_results, hs1_world):
        truth = hs1_world.ground_truth()
        core = hs1_results["basic"].initial_core_size
        assert 0.02 <= core / truth.on_osn_count <= 0.15  # paper: 18/325

    def test_candidates_order_of_magnitude_above_school(self, hs1_results, hs1_world):
        truth = hs1_world.ground_truth()
        candidates = len(hs1_results["basic"].candidates)
        assert candidates > 8 * truth.on_osn_count  # paper: 6282 vs 325

    def test_extended_core_larger(self, hs1_results):
        assert (
            hs1_results["enhanced"].extended_core_size
            > hs1_results["enhanced"].initial_core_size
        )

    def test_core_spread_across_years(self, hs1_results):
        sizes = hs1_results["enhanced"].core.year_sizes()
        populated = sum(1 for v in sizes.values() if v > 0)
        assert populated >= 3


class TestHeadlineCoverage:
    """Section 5.6: 83% of students with ~32% false positives."""

    def test_enhanced_filtered_coverage_at_400(self, hs1_results, hs1_world):
        truth = hs1_world.ground_truth()
        e = evaluate_full(hs1_results["enhanced_filtered"], truth, 400)
        assert e.found_fraction > 0.70
        assert e.false_positive_rate < 0.55

    def test_small_threshold_high_precision(self, hs1_results, hs1_world):
        truth = hs1_world.ground_truth()
        e = evaluate_full(hs1_results["enhanced_filtered"], truth, 200)
        assert e.false_positive_rate < 0.35
        assert e.found_fraction > 0.45

    def test_year_classification_accuracy(self, hs1_results, hs1_world):
        """Paper: 92% of found students in the correct class year."""
        truth = hs1_world.ground_truth()
        e = evaluate_full(hs1_results["enhanced_filtered"], truth, 400)
        assert e.year_accuracy > 0.85

    def test_coverage_monotone_in_threshold(self, hs1_results, hs1_world):
        truth = hs1_world.ground_truth()
        evals = sweep_full(hs1_results["enhanced_filtered"], truth, THRESHOLDS)
        fractions = [e.found_fraction for e in evals]
        assert fractions == sorted(fractions)


class TestVariantOrdering:
    """Table 4's comparative structure."""

    def test_enhanced_beats_basic_at_small_t(self, hs1_results, hs1_world):
        truth = hs1_world.ground_truth()
        basic = evaluate_full(hs1_results["basic"], truth, 200)
        enhanced = evaluate_full(hs1_results["enhanced"], truth, 200)
        assert enhanced.found >= basic.found

    def test_filtering_reduces_fps_at_small_t(self, hs1_results, hs1_world):
        truth = hs1_world.ground_truth()
        plain = evaluate_full(hs1_results["enhanced"], truth, 200)
        filtered = evaluate_full(hs1_results["enhanced_filtered"], truth, 200)
        assert filtered.false_positives <= plain.false_positives

    def test_filtering_never_collapses_coverage(self, hs1_results, hs1_world):
        """The paper's caveat: filtering can accidentally remove true
        positives at large t.  It must stay a trade-off, not a cliff:
        coverage with filtering stays within 10% of unfiltered."""
        truth = hs1_world.ground_truth()
        for t in (200, 500):
            plain = evaluate_full(hs1_results["enhanced"], truth, t)
            filtered = evaluate_full(hs1_results["enhanced_filtered"], truth, t)
            assert filtered.found >= 0.9 * plain.found


class TestFalsePositiveComposition:
    def test_many_fps_are_former_students(self, hs1_results, hs1_world):
        """Paper (5.4): about half the top-400 false positives were
        former students of HS1."""
        truth = hs1_world.ground_truth()
        selection = set(hs1_results["enhanced_filtered"].select(400))
        fps = selection - truth.all_student_uids
        former = fps & truth.former_student_uids
        school_adjacent = former | (fps & truth.alumni_uids)
        assert len(school_adjacent) / max(len(fps), 1) > 0.15


class TestEffort:
    """Table 3: requests are a small multiple of the school size."""

    def test_basic_effort_small(self, hs1_results, hs1_world):
        truth = hs1_world.ground_truth()
        total = hs1_results["basic"].effort.total
        assert total < 8 * truth.on_osn_count  # paper: 746 vs 325

    def test_enhanced_effort_larger_but_bounded(self, hs1_results, hs1_world):
        truth = hs1_world.ground_truth()
        total = hs1_results["enhanced_filtered"].effort.total
        assert (
            hs1_results["basic"].effort.total < total < 15 * truth.on_osn_count
        )

    def test_analytic_formula_tracks_measured(self, hs1_results):
        from repro.crawler.effort import predicted_requests

        result = hs1_results["basic"]
        mean_friends = sum(
            len(f) for f in result.core.friend_lists.values()
        ) / max(result.initial_core_size, 1)
        seed_pages = result.effort.seed_requests
        predicted = predicted_requests(
            accounts=2,
            requests_per_account_for_seeds=seed_pages / 2,
            seed_count=len(result.seeds),
            core_size=result.initial_core_size,
            mean_friends=mean_friends,
            page_size=20,
        )
        assert predicted == pytest.approx(result.effort.total, rel=0.35)
