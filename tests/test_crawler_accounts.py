"""Tests for the fake-account pool."""

import pytest

from repro.crawler.accounts import AccountPool, NoUsableAccountsError


class TestRotation:
    def test_round_robin(self):
        pool = AccountPool.of([1, 2, 3])
        assert [pool.next() for _ in range(6)] == [1, 2, 3, 1, 2, 3]

    def test_disabled_accounts_skipped(self):
        pool = AccountPool.of([1, 2, 3])
        pool.mark_disabled(2)
        drawn = {pool.next() for _ in range(10)}
        assert drawn == {1, 3}

    def test_all_disabled_raises(self):
        pool = AccountPool.of([1])
        pool.mark_disabled(1)
        with pytest.raises(NoUsableAccountsError):
            pool.next()

    def test_usable_reflects_state(self):
        pool = AccountPool.of([1, 2])
        assert pool.usable == [1, 2]
        pool.mark_disabled(1)
        assert pool.usable == [2]
        assert pool.is_disabled(1)
        assert not pool.is_disabled(2)

    def test_each_usable_iterates_once(self):
        pool = AccountPool.of([4, 5, 6])
        pool.mark_disabled(5)
        assert list(pool.each_usable()) == [4, 6]


class TestConstruction:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            AccountPool.of([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            AccountPool.of([1, 1])

    def test_size(self):
        assert AccountPool.of([1, 2, 3]).size == 3
