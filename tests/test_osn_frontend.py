"""Tests for the HTML frontend: routing, auth, rate limiting."""

import pytest

from repro.osn.errors import (
    AccountDisabledError,
    AuthenticationError,
    BadRequestError,
    NotFoundError,
    RateLimitedError,
)
from repro.osn.frontend import HtmlFrontend
from repro.osn.pages import parse_profile_page, parse_school_page, parse_search_page
from repro.osn.ratelimit import RateLimitConfig


@pytest.fixture()
def frontend(school_network):
    net, school, accounts = school_network
    return HtmlFrontend(net), school, accounts


class TestRouting:
    def test_profile_route(self, frontend):
        fe, school, accounts = frontend
        page = fe.get(accounts["crawler"].user_id, f"/profile/{accounts['alumnus'].user_id}")
        view = parse_profile_page(page)
        assert view.user_id == accounts["alumnus"].user_id

    def test_find_friends_route(self, frontend):
        fe, school, accounts = frontend
        page = fe.get(
            accounts["crawler"].user_id,
            "/find-friends/browser",
            {"school": str(school.school_id)},
        )
        listing = parse_search_page(page)
        assert listing.total >= 1

    def test_friends_route(self, frontend):
        fe, school, accounts = frontend
        page = fe.get(
            accounts["crawler"].user_id,
            f"/profile/{accounts['lying_minor'].user_id}/friends",
        )
        assert 'class="friend-list"' in page

    def test_school_route(self, frontend):
        fe, school, accounts = frontend
        page = fe.get(accounts["crawler"].user_id, f"/school/{school.school_id}")
        assert parse_school_page(page).name == school.name

    def test_graphsearch_route(self, frontend):
        fe, school, accounts = frontend
        page = fe.get(
            accounts["crawler"].user_id,
            "/graphsearch",
            {"school": str(school.school_id), "current": "1"},
        )
        listing = parse_search_page(page)
        assert accounts["lying_minor"].user_id in {e.user_id for e in listing.entries}

    def test_unknown_route_404(self, frontend):
        fe, _, accounts = frontend
        with pytest.raises(NotFoundError):
            fe.get(accounts["crawler"].user_id, "/does/not/exist")

    def test_missing_parameter_400(self, frontend):
        fe, _, accounts = frontend
        with pytest.raises(BadRequestError):
            fe.get(accounts["crawler"].user_id, "/find-friends/browser")

    def test_non_integer_parameter_400(self, frontend):
        fe, _, accounts = frontend
        with pytest.raises(BadRequestError):
            fe.get(
                accounts["crawler"].user_id,
                "/find-friends/browser",
                {"school": "abc"},
            )

    def test_request_count_increments(self, frontend):
        fe, school, accounts = frontend
        before = fe.request_count
        fe.get(accounts["crawler"].user_id, f"/school/{school.school_id}")
        assert fe.request_count == before + 1


class TestAuthentication:
    def test_unknown_account_rejected(self, frontend):
        fe, school, _ = frontend
        with pytest.raises(AuthenticationError):
            fe.get(9999, f"/school/{school.school_id}")

    def test_disabled_account_rejected(self, frontend):
        fe, school, accounts = frontend
        accounts["crawler"].disabled = True
        try:
            with pytest.raises(AuthenticationError):
                fe.get(accounts["crawler"].user_id, f"/school/{school.school_id}")
        finally:
            accounts["crawler"].disabled = False


class TestRateLimiting:
    def test_burst_gets_throttled(self, school_network):
        net, school, accounts = school_network
        fe = HtmlFrontend(net, RateLimitConfig(max_requests=5, window_seconds=60))
        uid = accounts["crawler"].user_id
        for _ in range(5):
            fe.get(uid, f"/school/{school.school_id}")
        with pytest.raises(RateLimitedError):
            fe.get(uid, f"/school/{school.school_id}")

    def test_sleeping_avoids_throttle(self, school_network):
        net, school, accounts = school_network
        fe = HtmlFrontend(net, RateLimitConfig(max_requests=5, window_seconds=60))
        uid = accounts["crawler"].user_id
        for _ in range(20):
            net.clock.sleep(15.0)
            fe.get(uid, f"/school/{school.school_id}")  # never raises

    def test_repeat_offender_disabled(self, school_network):
        net, school, accounts = school_network
        fe = HtmlFrontend(
            net,
            RateLimitConfig(max_requests=2, window_seconds=60, strikes_to_disable=2),
        )
        uid = accounts["crawler"].user_id
        fe.get(uid, f"/school/{school.school_id}")
        fe.get(uid, f"/school/{school.school_id}")
        with pytest.raises(RateLimitedError):
            fe.get(uid, f"/school/{school.school_id}")
        with pytest.raises(AccountDisabledError):
            fe.get(uid, f"/school/{school.school_id}")
        assert fe.limiter.is_disabled(uid)
