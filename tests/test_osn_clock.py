"""Unit tests for the simulated clock."""

import pytest

from repro.osn.clock import SECONDS_PER_YEAR, SimClock


class TestSleep:
    def test_sleep_advances_elapsed_seconds(self):
        clock = SimClock(now_year=2012.0)
        clock.sleep(120.0)
        assert clock.elapsed_seconds == pytest.approx(120.0)

    def test_sleep_advances_calendar(self):
        clock = SimClock(now_year=2012.0)
        clock.sleep(SECONDS_PER_YEAR / 2)
        assert clock.now_year == pytest.approx(2012.5)

    def test_sleep_zero_is_noop(self):
        clock = SimClock(now_year=2012.0)
        clock.sleep(0.0)
        assert clock.elapsed_seconds == 0.0

    def test_negative_sleep_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.sleep(-1.0)

    def test_sleeps_accumulate(self):
        clock = SimClock()
        for _ in range(10):
            clock.sleep(3.5)
        assert clock.elapsed_seconds == pytest.approx(35.0)


class TestCalendar:
    def test_current_year_truncates(self):
        assert SimClock(now_year=2012.99).current_year == 2012

    def test_advance_years(self):
        clock = SimClock(now_year=2010.0)
        clock.advance_years(2.25)
        assert clock.now_year == pytest.approx(2012.25)
        assert clock.elapsed_seconds == pytest.approx(2.25 * SECONDS_PER_YEAR)

    def test_advance_years_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance_years(-0.1)

    def test_age_of(self):
        clock = SimClock(now_year=2012.25)
        assert clock.age_of(1996.25) == pytest.approx(16.0)

    def test_copy_is_independent(self):
        clock = SimClock(now_year=2012.0)
        twin = clock.copy()
        clock.sleep(100.0)
        assert twin.elapsed_seconds == 0.0
        assert twin.now_year == pytest.approx(2012.0)

    def test_seconds_matches_elapsed(self):
        clock = SimClock()
        clock.sleep(42.0)
        assert clock.seconds() == clock.elapsed_seconds
