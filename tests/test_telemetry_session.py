"""Tests for crawl-session reports and JSONL trace replay."""

import pytest

from repro.osn.clock import SimClock
from repro.telemetry.events import JsonlSink, MemorySink
from repro.telemetry.replay import load_trace, replay_report
from repro.telemetry.runtime import Telemetry
from repro.telemetry.session import CrawlSessionReport


def _scripted_session(telemetry):
    """Emit a tiny but representative crawl session."""
    clock = telemetry.clock
    with telemetry.span("seeds"):
        telemetry.emit("http", account=1, path="/find-friends/browser", outcome="ok")
        telemetry.emit("request", account=1, category="seeds", path="/find-friends/browser")
        clock.sleep(2.0)
        telemetry.emit("http", account=1, path="/find-friends/browser", outcome="rate_limited")
        telemetry.emit("throttle", account=1, category="seeds", retry_after=3.0, slept=6.0)
        clock.sleep(6.0)
        telemetry.emit("strike", account=1, strikes=1, retry_after=3.0)
    with telemetry.span("core"):
        telemetry.emit("http", account=2, path="/profile/9", outcome="ok")
        telemetry.emit("request", account=2, category="profiles", path="/profile/9")
        telemetry.emit("account_disabled", account=1, strikes=3)
        telemetry.emit("account_lost", account=1, pinned=False, rotated=True)


class TestReportFromEvents:
    @pytest.fixture()
    def report(self):
        telemetry = Telemetry.in_memory(SimClock())
        _scripted_session(telemetry)
        return CrawlSessionReport.from_events(telemetry.events)

    def test_per_phase_breakdown(self, report):
        seeds = report.phases["seeds"]
        assert seeds.pages == 1
        assert seeds.attempts == 2
        assert seeds.throttles == 1
        assert seeds.backoff_seconds == pytest.approx(6.0)
        assert seeds.sim_seconds == pytest.approx(8.0)
        core = report.phases["core"]
        assert core.pages == 1
        assert core.throttles == 0

    def test_per_account_breakdown(self, report):
        one = report.accounts["1"]
        assert one.requests == 1
        assert one.throttles == 1
        assert one.strikes == 1
        assert one.disabled
        two = report.accounts["2"]
        assert two.requests == 1
        assert not two.disabled

    def test_per_category_breakdown(self, report):
        assert report.categories == {"seeds": 1, "profiles": 1}

    def test_totals(self, report):
        assert report.total_requests == 2
        assert report.total_attempts == 3
        assert report.total_throttles == 1
        assert report.total_backoff_seconds == pytest.approx(6.0)
        assert report.accounts_used == 2
        assert report.accounts_lost == 1

    def test_render_contains_all_sections(self, report):
        text = report.render()
        assert "phase" in text and "seeds" in text and "core" in text
        assert "account" in text and "lost" in text
        assert "category" in text and "profiles" in text
        assert "total requests (effort): 2" in text


class TestJsonlRoundTrip:
    def test_replayed_report_identical_to_live(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        memory = MemorySink()
        telemetry = Telemetry(SimClock(), sinks=[memory, JsonlSink(str(path))])
        _scripted_session(telemetry)
        telemetry.close()

        live = CrawlSessionReport.from_events(memory.events)
        assert load_trace(str(path)) == memory.events
        replayed = replay_report(str(path))
        assert replayed == live
        assert replayed.render() == live.render()

    def test_empty_trace_replays_to_empty_report(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        report = replay_report(str(path))
        assert report.total_requests == 0
        assert report.event_count == 0
        assert "total requests (effort): 0" in report.render()
