"""Tests for figure series builders and rendering."""

import pytest

from repro.analysis.figures import (
    Figure,
    Series,
    figure1,
    figure2,
    figure3,
    figure4,
    log10_gap_at_matched_coverage,
    render_figure,
)
from repro.core.coppaless import CoveragePoint
from repro.core.countermeasures import CountermeasurePoint, CountermeasureReport
from repro.core.evaluation import FullEvaluation, PartialEvaluation


def full_eval(t, found, fp, m=100):
    return FullEvaluation(
        threshold=t,
        selected=found + fp,
        found=found,
        correct_year=found,
        false_positives=fp,
        students_on_osn=m,
    )


def partial_eval(t, pct_found, pct_fp):
    return PartialEvaluation(
        threshold=t,
        test_users=40,
        test_found=20,
        estimated_students_found=pct_found,
        estimated_found_fraction=pct_found / 100.0,
        estimated_false_positives=10,
        estimated_false_positive_rate=pct_fp / 100.0,
        test_year_accuracy=0.9,
    )


class TestSeries:
    def test_of_and_accessors(self):
        s = Series.of("a", [(1, 2), (3, 4)])
        assert s.xs() == [1, 3]
        assert s.ys() == [2, 4]

    def test_series_by_name(self):
        fig = Figure("t", "x", "y", [Series.of("a", [(1, 1)])])
        assert fig.series_by_name("a").name == "a"
        with pytest.raises(KeyError):
            fig.series_by_name("missing")


class TestRender:
    def test_columns_aligned_and_values_present(self):
        fig = Figure(
            "Demo", "t", "pct",
            [Series.of("found", [(100, 50.0), (200, 75.5)])],
        )
        out = render_figure(fig)
        assert "Demo" in out
        assert "75.5" in out
        assert "found" in out

    def test_missing_points_dashed(self):
        fig = Figure(
            "Demo", "t", "pct",
            [Series.of("a", [(1, 1.0)]), Series.of("b", [(2, 2.0)])],
        )
        out = render_figure(fig)
        assert "-" in out


class TestFigureBuilders:
    def test_figure1(self):
        fig = figure1([full_eval(200, 54, 25), full_eval(400, 84, 128)])
        found = fig.series_by_name("% of students found for HS1")
        assert found.points[0] == (200, pytest.approx(54.0))
        assert len(fig.series) == 2

    def test_figure2(self):
        fig = figure2({"HS2": [partial_eval(1000, 70, 15)]})
        assert len(fig.series) == 2
        assert fig.series[0].points[0][1] == pytest.approx(70.0)

    def test_figure3_log_scale_and_floor(self):
        with_pts = [CoveragePoint("t=300", 95, 64.0, 0)]
        without_pts = [CoveragePoint("n=1", 92, 62.0, 4480)]
        fig = figure3(with_pts, without_pts)
        assert fig.log_y
        # zero FPs floored to 1 so the log axis is well-defined
        assert fig.series_by_name("With-COPPA").points[0][1] == 1.0

    def test_figure3_gap(self):
        with_pts = [CoveragePoint("t=300", 95, 64.0, 70)]
        without_pts = [CoveragePoint("n=1", 92, 62.0, 4480)]
        gap = log10_gap_at_matched_coverage(figure3(with_pts, without_pts))
        assert gap == pytest.approx(1.806, abs=0.01)

    def test_figure3_gap_none_for_missing_series(self):
        fig = Figure("t", "x", "y", [Series.of("only", [(1, 1)])])
        assert log10_gap_at_matched_coverage(fig) is None

    def test_figure4(self, tiny_attack):
        report = CountermeasureReport(
            with_lookup=tiny_attack,
            without_lookup=tiny_attack,
            points=[CountermeasurePoint(200, 92.0, 33.0)],
        )
        fig = figure4(report)
        assert fig.series_by_name("With reverse lookup").points == ((200, 92.0),)
        assert fig.series_by_name("Without reverse lookup").points == ((200, 33.0),)
