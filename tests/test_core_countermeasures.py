"""Tests for the Section-8 reverse-lookup countermeasure."""

import pytest

from repro.core.countermeasures import run_countermeasure_comparison
from repro.core.profiler import ProfilerConfig
from repro.worldgen.presets import tiny
from repro.worldgen.world import build_world


@pytest.fixture(scope="module")
def report():
    world = build_world(tiny(seed=13))
    return run_countermeasure_comparison(
        world,
        accounts=2,
        config=ProfilerConfig(enhanced=True, filtering=True),
        thresholds=(40, 80, 120),
    ), world


class TestComparison:
    def test_coverage_collapses(self, report):
        rep, _ = report
        final = rep.points[-1]
        assert final.found_percent_without < final.found_percent_with
        assert rep.max_reduction() > 15.0

    def test_flag_restored_after_run(self, report):
        _, world = report
        assert world.network.reverse_lookup_enabled

    def test_points_cover_thresholds(self, report):
        rep, _ = report
        assert [p.threshold for p in rep.points] == [40, 80, 120]

    def test_with_lookup_coverage_grows_with_t(self, report):
        rep, _ = report
        found = [p.found_percent_with for p in rep.points]
        assert found == sorted(found)

    def test_without_lookup_candidates_shrink(self, report):
        rep, _ = report
        assert len(rep.without_lookup.candidates) < len(rep.with_lookup.candidates)

    def test_registered_minors_invisible_without_lookup(self, report):
        """With the defence on, no registered minor appears in any
        crawled friend list (the defining property of the countermeasure)."""
        rep, world = report
        net = world.network
        for candidate in rep.without_lookup.candidates:
            if candidate in net.users:
                assert not net.is_registered_minor(candidate)
