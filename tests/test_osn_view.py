"""Unit tests for ProfileView semantics (minimality, claims)."""

from repro.osn.profile import Gender, SchoolAffiliation
from repro.osn.view import ProfileView


def minimal_view(**overrides):
    base = dict(
        user_id=1,
        name="Min Imal",
        gender=Gender.FEMALE,
        networks=("Some Net",),
        has_profile_photo=True,
    )
    base.update(overrides)
    return ProfileView(**base)


class TestIsMinimal:
    def test_name_photo_gender_networks_is_minimal(self):
        assert minimal_view().is_minimal()

    def test_high_school_breaks_minimality(self):
        view = minimal_view(high_schools=(SchoolAffiliation(1, "HS", 2014),))
        assert not view.is_minimal()

    def test_message_button_breaks_minimality(self):
        assert not minimal_view(message_button=True).is_minimal()

    def test_friend_list_breaks_minimality(self):
        assert not minimal_view(friend_list_visible=True).is_minimal()

    def test_photo_count_breaks_minimality(self):
        assert not minimal_view(photo_count=0).is_minimal()

    def test_birthday_breaks_minimality(self):
        assert not minimal_view(birthday_year=1996).is_minimal()

    def test_contact_breaks_minimality(self):
        assert not minimal_view(contact_phone="555").is_minimal()


class TestVisibleFieldNames:
    def test_empty_for_minimal(self):
        assert minimal_view().visible_field_names() == ()

    def test_reports_extended_fields(self):
        view = minimal_view(
            hometown="Springfield",
            current_city="Eastport",
            friend_list_visible=True,
        )
        names = view.visible_field_names()
        assert "hometown" in names
        assert "current_city" in names
        assert "friend_list" in names


class TestClaims:
    def test_claims_current_student(self):
        view = minimal_view(high_schools=(SchoolAffiliation(5, "HS", 2013),))
        assert view.claims_current_student(5, 2012)

    def test_alumnus_claim_rejected(self):
        view = minimal_view(high_schools=(SchoolAffiliation(5, "HS", 2010),))
        assert not view.claims_current_student(5, 2012)

    def test_other_school_claim_rejected(self):
        view = minimal_view(high_schools=(SchoolAffiliation(6, "Other", 2013),))
        assert not view.claims_current_student(5, 2012)

    def test_no_year_claim_rejected(self):
        view = minimal_view(high_schools=(SchoolAffiliation(5, "HS", None),))
        assert not view.claims_current_student(5, 2012)
