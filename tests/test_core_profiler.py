"""Tests for the end-to-end profiler on the tiny world."""

import pytest

from repro.core.api import make_client, run_attack
from repro.core.profiler import ProfilerConfig
from repro.crawler.storage import CrawlStore


class TestAttackResultStructure:
    def test_core_is_subset_of_claims_and_seeds_flow(self, tiny_attack):
        result = tiny_attack
        assert set(result.core.core) <= set(result.core.claimed)
        assert result.initial_core_size <= result.extended_core_size

    def test_candidates_exclude_core(self, tiny_attack):
        assert not (tiny_attack.candidates & set(tiny_attack.core.core))

    def test_ranking_excludes_claimed_and_filtered(self, tiny_attack):
        ranked = set(tiny_attack.ranking)
        assert not (ranked & set(tiny_attack.core.claimed))
        assert not (ranked & set(tiny_attack.filtered_out))

    def test_ranking_sorted_by_score(self, tiny_attack):
        scores = [tiny_attack.scores.scores[uid].score for uid in tiny_attack.ranking]
        assert scores == sorted(scores, reverse=True)

    def test_select_size(self, tiny_attack):
        t = 50
        selection = tiny_attack.select(t)
        expected = min(t, len(tiny_attack.ranking)) + len(
            [u for u in tiny_attack.core.claimed if u not in tiny_attack.ranking[:t]]
        )
        assert len(selection) == expected

    def test_select_monotone_in_t(self, tiny_attack):
        small = set(tiny_attack.select(30))
        large = set(tiny_attack.select(90))
        assert small <= large

    def test_claimed_years_kept_in_selection(self, tiny_attack):
        selection = tiny_attack.select(50)
        for uid, year in tiny_attack.core.claimed.items():
            assert selection[uid] == year

    def test_top_candidates_length(self, tiny_attack):
        assert len(tiny_attack.top_candidates(10)) == 10

    def test_effort_nonzero(self, tiny_attack):
        effort = tiny_attack.effort
        assert effort.seed_requests > 0
        assert effort.profile_requests > 0
        assert effort.friend_list_requests > 0
        assert effort.accounts_used == 2


class TestVariants:
    def test_enhanced_extends_core(self, tiny_world):
        basic = run_attack(tiny_world, accounts=2, config=ProfilerConfig(threshold=120))
        enhanced = run_attack(
            tiny_world, accounts=2, config=ProfilerConfig(threshold=120, enhanced=True)
        )
        assert enhanced.extended_core_size >= basic.extended_core_size
        assert enhanced.extended_core_size >= enhanced.initial_core_size

    def test_basic_does_not_extend(self, tiny_world):
        basic = run_attack(tiny_world, accounts=2, config=ProfilerConfig(threshold=120))
        assert basic.extended_core_size == basic.initial_core_size

    def test_filtering_populates_filtered_out(self, tiny_world):
        filtered = run_attack(
            tiny_world, accounts=2, config=ProfilerConfig(threshold=120, filtering=True)
        )
        assert filtered.filtered_out  # churned/moved candidates exist

    def test_enhanced_costs_more_requests(self, tiny_world):
        basic = run_attack(tiny_world, accounts=2, config=ProfilerConfig(threshold=120))
        enhanced = run_attack(
            tiny_world, accounts=2, config=ProfilerConfig(threshold=120, enhanced=True)
        )
        assert enhanced.effort.total > basic.effort.total

    def test_threshold_defaults_to_enrollment_hint(self, tiny_world):
        result = run_attack(tiny_world, accounts=1, config=ProfilerConfig())
        assert result.threshold == tiny_world.school().enrollment_hint

    def test_epsilon_zero_fetches_fewer_profiles(self, tiny_world):
        eps0 = run_attack(
            tiny_world,
            accounts=2,
            config=ProfilerConfig(threshold=120, enhanced=True, epsilon=0.0),
        )
        eps1 = run_attack(
            tiny_world,
            accounts=2,
            config=ProfilerConfig(threshold=120, enhanced=True, epsilon=1.0),
        )
        assert eps0.effort.profile_requests < eps1.effort.profile_requests


class TestStoreIntegration:
    def test_crawl_recorded_in_store(self, tiny_world):
        store = CrawlStore(":memory:")
        result = run_attack(
            tiny_world,
            accounts=2,
            config=ProfilerConfig(threshold=120, enhanced=True),
            store=store,
        )
        assert store.load_seeds(tiny_world.school().school_id) == result.seeds
        assert store.profile_count() == len(result.profiles)
        assert store.owners_with_friend_lists() == set(result.core.friend_lists)


class TestConfigPresets:
    def test_named_constructors(self):
        assert not ProfilerConfig.basic().enhanced
        assert ProfilerConfig.basic_filtered().filtering
        assert ProfilerConfig.enhanced_only(300).enhanced
        combo = ProfilerConfig.enhanced_filtered(300)
        assert combo.enhanced and combo.filtering and combo.threshold == 300


class TestEnhancementOptions:
    def test_extra_rounds_never_lose_core(self, tiny_world):
        one = run_attack(
            tiny_world,
            accounts=2,
            config=ProfilerConfig(threshold=120, enhanced=True, enhancement_rounds=1),
        )
        three = run_attack(
            tiny_world,
            accounts=2,
            config=ProfilerConfig(threshold=120, enhanced=True, enhancement_rounds=3),
        )
        assert three.extended_core_size >= one.extended_core_size

    def test_rounds_stop_when_nothing_promotes(self, tiny_world):
        """A huge round count must not explode the request bill: rounds
        stop as soon as a pass promotes nobody."""
        few = run_attack(
            tiny_world,
            accounts=2,
            config=ProfilerConfig(threshold=120, enhanced=True, enhancement_rounds=3),
        )
        many = run_attack(
            tiny_world,
            accounts=2,
            config=ProfilerConfig(threshold=120, enhanced=True, enhancement_rounds=50),
        )
        assert many.effort.total <= few.effort.total * 3

    def test_per_year_fetch_runs_and_selects(self, tiny_world):
        result = run_attack(
            tiny_world,
            accounts=2,
            config=ProfilerConfig(
                threshold=120, enhanced=True, per_year_fetch=True
            ),
        )
        assert result.extended_core_size >= result.initial_core_size
        assert len(result.select(120)) > 0

    def test_per_year_fetch_covers_each_assigned_year(self, tiny_world):
        result = run_attack(
            tiny_world,
            accounts=2,
            config=ProfilerConfig(
                threshold=40, enhanced=True, per_year_fetch=True
            ),
        )
        fetched_years = {
            result.scores.year_of(uid)
            for uid in result.profiles
            if uid in result.scores
        }
        # every populated class year got at least one profile fetch
        populated = {
            year for year, size in result.core.year_sizes().items() if size > 0
        }
        assert populated <= fetched_years | {None} | populated
