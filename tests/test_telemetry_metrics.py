"""Tests for the metrics model: families, labels, histograms, exposition."""

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)


class TestLabelSemantics:
    def test_same_labels_same_series(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", labelnames=("category",))
        family.labels(category="seeds").inc()
        family.labels(category="seeds").inc(2)
        assert family.labels(category="seeds").value == 3

    def test_distinct_labels_distinct_series(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", labelnames=("category",))
        family.labels(category="seeds").inc()
        family.labels(category="profiles").inc(5)
        assert family.labels(category="seeds").value == 1
        assert family.labels(category="profiles").value == 5
        assert family.total() == 6
        assert family.series_count() == 2

    def test_label_values_coerced_to_str(self):
        registry = MetricsRegistry()
        family = registry.counter("by_account", labelnames=("account",))
        family.labels(account=17).inc()
        assert family.labels(account="17").value == 1

    def test_missing_label_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", labelnames=("category", "phase"))
        with pytest.raises(ValueError):
            family.labels(category="seeds")

    def test_extra_label_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", labelnames=("category",))
        with pytest.raises(ValueError):
            family.labels(category="seeds", phase="core")

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", labelnames=("a", "b"))
        family.labels(a="1", b="2").inc()
        assert family.labels(b="2", a="1").value == 1

    def test_no_label_family_uses_empty_labels(self):
        registry = MetricsRegistry()
        family = registry.counter("total")
        family.labels().inc(4)
        assert family.labels().value == 4

    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", labelnames=("category",))
        second = registry.counter("requests_total", labelnames=("category",))
        assert first is second

    def test_conflicting_reregistration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", labelnames=("category",))
        with pytest.raises(ValueError):
            registry.gauge("requests_total", labelnames=("category",))
        with pytest.raises(ValueError):
            registry.counter("requests_total", labelnames=("other",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_name", labelnames=("bad-label",))


class TestCounterAndGauge:
    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        series = registry.counter("ups").labels()
        with pytest.raises(ValueError):
            series.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("usable_accounts").labels()
        gauge.set(4)
        gauge.dec()
        gauge.inc(2)
        assert gauge.value == 5


class TestHistogramBucketing:
    def test_observations_land_in_correct_buckets(self):
        hist = Histogram(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 7.0, 100.0):
            hist.observe(value)
        # raw (non-cumulative) counts: <=1, (1,5], (5,10], >10
        assert hist.bucket_counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(111.5)
        assert hist.min == 0.5
        assert hist.max == 100.0

    def test_cumulative_ends_with_inf_and_total(self):
        hist = Histogram(buckets=(1.0, 5.0))
        for value in (0.1, 2.0, 50.0):
            hist.observe(value)
        cumulative = hist.cumulative()
        assert cumulative == [(1.0, 1), (5.0, 2), (float("inf"), 3)]

    def test_boundary_value_counts_in_lower_bucket(self):
        hist = Histogram(buckets=(1.0, 5.0))
        hist.observe(1.0)
        assert hist.bucket_counts[0] == 1

    def test_default_buckets_cover_sleep_scales(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sleep_seconds").labels()
        assert hist.buckets == DEFAULT_BUCKETS
        hist.observe(2.5)
        assert hist.count == 1


class TestPrometheusExposition:
    def test_counter_rendering(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "requests_total", "Requests by category", labelnames=("category",)
        )
        family.labels(category="seeds").inc(3)
        text = render_prometheus(registry)
        assert "# HELP requests_total Requests by category" in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{category="seeds"} 3' in text

    def test_histogram_rendering(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat", buckets=(1.0, 5.0))
        family.labels().observe(0.5)
        family.labels().observe(3.0)
        text = render_prometheus(registry)
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="5"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 3.5" in text
        assert "lat_count 2" in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        family = registry.counter("odd", labelnames=("path",))
        family.labels(path='a"b\\c\nd').inc()
        text = render_prometheus(registry)
        assert 'odd{path="a\\"b\\\\c\\nd"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
