"""Tests for the calibration-validation loop."""

import pytest

from repro.worldgen.calibration import CalibrationRow, calibrate
from repro.worldgen.presets import hs1
from repro.worldgen.world import build_world


class TestCalibrationRow:
    def test_deviation(self):
        row = CalibrationRow("m", target=0.5, measured=0.6)
        assert row.deviation == pytest.approx(0.1)

    def test_within_small_absolute_tolerance(self):
        assert CalibrationRow("m", 0.05, 0.10).within
        assert not CalibrationRow("m", 0.05, 0.30).within

    def test_within_relative_tolerance_for_large_targets(self):
        assert CalibrationRow("photos", 50.0, 60.0).within
        assert not CalibrationRow("photos", 50.0, 80.0).within


class TestWorldCalibration:
    @pytest.fixture(scope="class")
    def report(self):
        return calibrate(build_world(hs1()))

    def test_all_declared_metrics_measured(self, report):
        metrics = {row.metric for row in report.rows}
        assert "adult students: public friend list" in metrics
        assert "adult students: mean photos" in metrics
        assert "students: OSN adoption" in metrics

    def test_hs1_world_is_calibrated(self, report):
        """The shipped preset matches its own declared targets."""
        assert report.ok, report.describe()

    def test_describe_lists_each_metric(self, report):
        text = report.describe()
        for row in report.rows:
            assert row.metric in text

    def test_tiny_world_calibrated_too(self, tiny_world):
        report = calibrate(tiny_world)
        assert report.ok, report.describe()
