"""Unit tests for profile data structures and accounts."""

import pytest

from repro.osn.profile import (
    Birthday,
    ContactInfo,
    Gender,
    Name,
    Profile,
    SchoolAffiliation,
)
from repro.osn.privacy import PrivacySettings
from repro.osn.user import Account


class TestName:
    def test_full_name(self):
        assert Name("Ada", "Lovelace").full == "Ada Lovelace"


class TestSchoolAffiliation:
    def test_current_student_same_year(self):
        assert SchoolAffiliation(1, "HS", 2012).is_current_student(2012)

    def test_current_student_future_year(self):
        assert SchoolAffiliation(1, "HS", 2015).is_current_student(2012)

    def test_alumnus_not_current(self):
        assert not SchoolAffiliation(1, "HS", 2011).is_current_student(2012)

    def test_no_year_not_current(self):
        assert not SchoolAffiliation(1, "HS", None).is_current_student(2012)


class TestBirthday:
    def test_age_at(self):
        assert Birthday(1996, 0.25).age_at(2012.25) == pytest.approx(16.0)

    def test_as_year_fraction(self):
        assert Birthday(1990, 0.5).as_year_fraction == pytest.approx(1990.5)


class TestContactInfo:
    def test_empty(self):
        assert ContactInfo().is_empty()

    def test_non_empty(self):
        assert not ContactInfo(email="a@b.c").is_empty()


class TestProfile:
    def test_primary_high_school_is_last_listed(self):
        profile = Profile(
            name=Name("A", "B"),
            high_schools=(
                SchoolAffiliation(1, "Old High", 2010),
                SchoolAffiliation(2, "New High", 2014),
            ),
        )
        assert profile.primary_high_school().school_id == 2

    def test_primary_high_school_none_when_unlisted(self):
        assert Profile(name=Name("A", "B")).primary_high_school() is None

    def test_lists_school(self):
        profile = Profile(
            name=Name("A", "B"),
            high_schools=(SchoolAffiliation(3, "HS", None),),
        )
        assert profile.lists_school(3)
        assert not profile.lists_school(4)

    def test_affiliation_for(self):
        aff = SchoolAffiliation(3, "HS", 2013)
        profile = Profile(name=Name("A", "B"), high_schools=(aff,))
        assert profile.affiliation_for(3) == aff
        assert profile.affiliation_for(9) is None


class TestAccount:
    def make(self, registered=1990, real=1996):
        return Account(
            user_id=1,
            profile=Profile(name=Name("A", "B")),
            registered_birthday=Birthday(registered),
            real_birthday=Birthday(real),
            settings=PrivacySettings(),
        )

    def test_registered_vs_real_age(self):
        account = self.make()
        assert account.registered_age(2012.5) == pytest.approx(22.0)
        assert account.real_age(2012.5) == pytest.approx(16.0)

    def test_is_registered_minor_uses_registered(self):
        account = self.make()
        assert not account.is_registered_minor(2012.5)
        assert account.is_actual_minor(2012.5)

    def test_lied_about_age(self):
        assert self.make().lied_about_age()
        assert not self.make(registered=1996, real=1996).lied_about_age()

    def test_friend_count_tracks_set(self):
        account = self.make()
        account.friend_ids.update({2, 3})
        assert account.friend_count == 2
