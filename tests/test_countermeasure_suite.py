"""Tests for the extended defence portfolio (Section 8, broadened)."""

import pytest

from repro.core.countermeasures import DefenceOutcome, run_countermeasure_suite
from repro.core.profiler import ProfilerConfig
from repro.worldgen.presets import tiny


@pytest.fixture(scope="module")
def outcomes():
    results = run_countermeasure_suite(
        tiny(seed=3),
        accounts=2,
        config=ProfilerConfig(threshold=120, enhanced=True, filtering=True),
        t=120,
    )
    return {o.name: o for o in results}


class TestSuite:
    def test_all_defences_evaluated(self, outcomes):
        assert set(outcomes) == {
            "baseline",
            "no_reverse_lookup",
            "age_verification",
            "tiny_search_cap",
            "no_school_search",
        }

    def test_baseline_attack_succeeds(self, outcomes):
        assert outcomes["baseline"].found_percent > 60

    def test_reverse_lookup_defence_degrades(self, outcomes):
        assert (
            outcomes["no_reverse_lookup"].found_percent
            < outcomes["baseline"].found_percent - 15
        )

    def test_age_verification_collapses_core(self, outcomes):
        """With verified ages the core shrinks to genuine adults and
        coverage collapses — the law-side fix beats the site-side one."""
        assert outcomes["age_verification"].core_size < outcomes["baseline"].core_size
        assert (
            outcomes["age_verification"].found_percent
            < outcomes["no_reverse_lookup"].found_percent + 10
        )

    def test_search_throttling_barely_helps(self, outcomes):
        """A tiny search cap shrinks seeds but the attack still works:
        a handful of core users is enough (the paper's core was ~5%)."""
        assert outcomes["tiny_search_cap"].seeds < outcomes["baseline"].seeds
        assert outcomes["tiny_search_cap"].found_percent > 50

    def test_removing_school_search_kills_the_attack(self, outcomes):
        assert outcomes["no_school_search"].found_percent == 0.0
        assert outcomes["no_school_search"].core_size == 0


class TestSearchCapZero:
    def test_portal_returns_nothing(self, fresh_tiny_world):
        net = fresh_tiny_world.network
        net.search_result_cap = 0
        viewer = fresh_tiny_world.create_attacker_accounts(1)[0]
        total, entries = net.school_search(
            viewer, fresh_tiny_world.school().school_id
        )
        assert total == 0 and not entries

    def test_graph_search_returns_nothing(self, fresh_tiny_world):
        from repro.osn.network import GraphSearchQuery

        net = fresh_tiny_world.network
        net.search_result_cap = 0
        viewer = fresh_tiny_world.create_attacker_accounts(1)[0]
        results = net.graph_search(
            viewer, GraphSearchQuery(school_id=fresh_tiny_world.school().school_id)
        )
        assert results == []
