"""Tests for table rendering and the policy-probe matrices."""

import pytest

from repro.analysis.tables import (
    ascii_table,
    check,
    dataset_row,
    effort_row,
    policy_visibility_matrix,
    render_policy_table,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)
from repro.core.evaluation import FullEvaluation
from repro.core.extension import AdultRegisteredStats
from repro.osn.policy import facebook_policy, googleplus_policy


class TestAsciiTable:
    def test_alignment(self):
        out = ascii_table(["a", "long header"], [["x", 1], ["yyyy", 22]])
        lines = out.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title_included(self):
        assert ascii_table(["h"], [["v"]], title="My Table").startswith("My Table")

    def test_check(self):
        assert check(True) == "x"
        assert check(False) == ""


class TestTable1Facebook:
    @pytest.fixture(scope="class")
    def matrix(self):
        return {row[0]: row[1:] for row in policy_visibility_matrix(facebook_policy())}

    def test_minimal_row_checked_everywhere(self, matrix):
        assert matrix["Name, Gender, Networks, Profile Photo"] == (True, True, True, True)

    def test_minors_never_expose_extended_rows(self, matrix):
        for label, (dm, da, wm, wa) in matrix.items():
            if label == "Name, Gender, Networks, Profile Photo":
                continue
            assert not dm, label
            assert not wm, label

    def test_worst_case_adult_exposes_everything(self, matrix):
        for label, (_, _, _, wa) in matrix.items():
            assert wa, label

    def test_default_adult_exposes_hs_but_not_contact(self, matrix):
        assert matrix["HS, Relationship, Interested In"][1]
        assert not matrix["Contact Information"][1]
        assert not matrix["Birthday"][1]

    def test_render_has_all_rows(self):
        out = render_policy_table(facebook_policy(), "Table 1")
        assert "Public Search" in out
        assert "Contact Information" in out


class TestTable6GooglePlus:
    @pytest.fixture(scope="class")
    def matrix(self):
        return {row[0]: row[1:] for row in policy_visibility_matrix(googleplus_policy())}

    def test_minor_worst_case_can_expose_school_and_phone(self, matrix):
        assert matrix["Gender, Employment, HS, Hometown, Current City"][2]
        assert matrix["Home and Work Phone"][2]

    def test_minor_defaults_protective(self, matrix):
        for label, (dm, _, _, _) in matrix.items():
            if label == "Name, Profile Picture":
                continue
            assert not dm, label

    def test_distinct_from_facebook(self):
        fb = policy_visibility_matrix(facebook_policy())
        gp = policy_visibility_matrix(googleplus_policy())
        # Google+ lets worst-case minors expose more than Facebook does.
        fb_worst_minor = sum(1 for row in fb if row[3])
        gp_worst_minor = sum(1 for row in gp if row[3])
        assert gp_worst_minor > fb_worst_minor


class TestAggregateTables:
    def test_table2_renders(self, tiny_attack):
        row = dataset_row("TINY", tiny_attack, enrolled=120, on_osn=110)
        out = render_table2([row])
        assert "TINY" in out and str(len(tiny_attack.seeds)) in out

    def test_table3_renders(self, tiny_attack):
        row = effort_row("TINY", tiny_attack, tiny_attack)
        out = render_table3([row])
        assert "TINY" in out

    def test_table4_renders(self):
        evals = [
            FullEvaluation(threshold=t, selected=t, found=t // 2,
                           correct_year=t // 3, false_positives=t - t // 2,
                           students_on_osn=100)
            for t in (50, 100)
        ]
        out = render_table4({"Basic methodology": evals}, [50, 100])
        assert "25/16" in out
        assert "Top 50" in out

    def test_table4_missing_threshold_dash(self):
        evals = [
            FullEvaluation(threshold=50, selected=50, found=10, correct_year=9,
                           false_positives=40, students_on_osn=100)
        ]
        out = render_table4({"Basic": evals}, [50, 100])
        assert "-" in out

    def test_table5_renders(self):
        stats = AdultRegisteredStats(
            count=112,
            pct_friend_list_public=73.0,
            avg_friends_when_public=405.0,
            pct_public_search=71.0,
            pct_message_link=89.0,
            pct_relationship=15.0,
            pct_interested_in=13.0,
            pct_birthday=9.0,
            avg_photos=19.0,
        )
        out = render_table5({"HS1": stats})
        assert "112" in out
        assert "73%" in out
        assert "405" in out
