"""Tests for trade-off curves and their scalar reductions."""

import pytest

from repro.analysis.metrics import TradeoffCurve, tradeoff_curve


class TestTradeoffCurve:
    def test_coverage_at_fp_budget(self):
        curve = TradeoffCurve(points=((10, 50), (50, 80), (200, 95)), students_on_osn=100)
        assert curve.coverage_at_fp_budget(50) == pytest.approx(0.80)
        assert curve.coverage_at_fp_budget(5) == 0.0
        assert curve.coverage_at_fp_budget(10_000) == pytest.approx(0.95)

    def test_auc_bounds(self):
        curve = TradeoffCurve(points=((10, 50), (50, 80), (200, 95)), students_on_osn=100)
        assert 0.0 < curve.normalized_auc() <= 1.0

    def test_perfect_curve_auc_near_one(self):
        curve = TradeoffCurve(points=((0, 100), (1, 100)), students_on_osn=100)
        assert curve.normalized_auc() == pytest.approx(1.0)

    def test_degenerate_curves(self):
        assert TradeoffCurve(points=(), students_on_osn=100).normalized_auc() == 0.0
        single = TradeoffCurve(points=((5, 50),), students_on_osn=100)
        assert single.normalized_auc() == 0.0

    def test_zero_fp_sweep(self):
        curve = TradeoffCurve(points=((0, 40), (0, 60)), students_on_osn=100)
        assert curve.normalized_auc() == pytest.approx(0.6)

    def test_dominance(self):
        better = TradeoffCurve(points=((5, 60), (20, 90)), students_on_osn=100)
        worse = TradeoffCurve(points=((10, 50), (40, 80)), students_on_osn=100)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_dominance_requires_same_sweep(self):
        a = TradeoffCurve(points=((5, 60),), students_on_osn=100)
        b = TradeoffCurve(points=((5, 60), (6, 61)), students_on_osn=100)
        with pytest.raises(ValueError):
            a.dominates(b)


class TestFromAttackResult:
    def test_curve_monotone(self, tiny_attack, tiny_world):
        curve = tradeoff_curve(
            tiny_attack, tiny_world.ground_truth(), thresholds=[30, 60, 90, 120]
        )
        fps = [p[0] for p in curve.points]
        founds = [p[1] for p in curve.points]
        assert fps == sorted(fps)
        assert founds == sorted(founds)

    def test_default_threshold_grid(self, tiny_attack, tiny_world):
        curve = tradeoff_curve(tiny_attack, tiny_world.ground_truth())
        assert len(curve.points) >= 10

    def test_enhanced_beats_random_auc(self, tiny_attack, tiny_world):
        """The ranking is much better than random: AUC well above the
        candidate base rate."""
        truth = tiny_world.ground_truth()
        curve = tradeoff_curve(tiny_attack, truth, thresholds=[40, 80, 120, 200, 400])
        base_rate = truth.on_osn_count / max(len(tiny_attack.candidates), 1)
        assert curve.normalized_auc() > 3 * base_rate
