"""Round-trip tests for HTML render/parse pairs, including hypothesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osn.errors import ParseError
from repro.osn.network import DirectoryEntry, School
from repro.osn.pages import (
    ListingPage,
    parse_friends_page,
    parse_profile_page,
    parse_school_page,
    parse_search_page,
    render_friends_page,
    render_profile_page,
    render_school_page,
    render_search_page,
)
from repro.osn.profile import Gender, SchoolAffiliation
from repro.osn.view import ProfileView

# Text that stresses HTML escaping but stays printable.
tricky_text = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N", "P", "S", "Zs"),
        blacklist_characters="\r\n",
    ),
    min_size=1,
    max_size=30,
)


def make_view(**overrides) -> ProfileView:
    base = dict(
        user_id=42,
        name="Jane O'Neil <3 & co",
        gender=Gender.FEMALE,
        networks=("Net & One",),
        has_profile_photo=True,
        high_schools=(SchoolAffiliation(7, 'St. "Mary" & Sons', 2014),),
        relationship_status="Single",
        interested_in="Men",
        birthday_year=1994,
        hometown="Spring<field>",
        current_city="East & West",
        employer="Acme & Co",
        graduate_school="State U",
        photo_count=12,
        wall_post_count=3,
        contact_email="a&b@example.com",
        contact_phone="555-0100",
        friend_list_visible=True,
        message_button=True,
        public_search_listed=True,
    )
    base.update(overrides)
    return ProfileView(**base)


class TestProfileRoundTrip:
    def test_full_profile_round_trips(self):
        view = make_view()
        assert parse_profile_page(render_profile_page(view)) == view

    def test_minimal_profile_round_trips(self):
        view = ProfileView(user_id=9, name="Min Imal")
        parsed = parse_profile_page(render_profile_page(view))
        assert parsed == view
        assert parsed.is_minimal()

    def test_school_without_year_round_trips(self):
        view = make_view(
            high_schools=(SchoolAffiliation(3, "No Year High", None),)
        )
        parsed = parse_profile_page(render_profile_page(view))
        assert parsed.high_schools[0].graduation_year is None

    def test_multiple_schools_preserved_in_order(self):
        view = make_view(
            high_schools=(
                SchoolAffiliation(1, "First High", 2010),
                SchoolAffiliation(2, "Second High", 2014),
            )
        )
        parsed = parse_profile_page(render_profile_page(view))
        assert [a.school_id for a in parsed.high_schools] == [1, 2]

    def test_garbage_page_raises_parse_error(self):
        with pytest.raises(ParseError):
            parse_profile_page("<html><body>nothing here</body></html>")

    @given(name=tricky_text, hometown=tricky_text, school=tricky_text)
    @settings(max_examples=80)
    def test_escaping_fuzz(self, name, hometown, school):
        view = make_view(
            name=name,
            hometown=hometown,
            high_schools=(SchoolAffiliation(5, school, 2013),),
        )
        parsed = parse_profile_page(render_profile_page(view))
        assert parsed.name == name
        assert parsed.hometown == hometown
        assert parsed.high_schools[0].school_name == school

    @given(
        photo=st.booleans(),
        friends=st.booleans(),
        message=st.booleans(),
        search=st.booleans(),
    )
    @settings(max_examples=32)
    def test_flag_combinations(self, photo, friends, message, search):
        view = make_view(
            has_profile_photo=photo,
            friend_list_visible=friends,
            message_button=message,
            public_search_listed=search,
        )
        parsed = parse_profile_page(render_profile_page(view))
        assert parsed.has_profile_photo == photo
        assert parsed.friend_list_visible == friends
        assert parsed.message_button == message
        assert parsed.public_search_listed == search


entries_strategy = st.lists(
    st.tuples(st.integers(1, 10_000), tricky_text), max_size=20, unique_by=lambda t: t[0]
).map(lambda pairs: [DirectoryEntry(uid, name) for uid, name in pairs])


class TestListingRoundTrips:
    def test_friends_page_round_trips(self):
        entries = [DirectoryEntry(1, "A & B"), DirectoryEntry(2, "C <D>")]
        page = render_friends_page(99, 42, 20, entries)
        parsed = parse_friends_page(page)
        assert parsed == ListingPage(total=42, offset=20, entries=tuple(entries))

    def test_next_offset_advances(self):
        entries = [DirectoryEntry(i, f"U{i}") for i in range(20)]
        parsed = parse_friends_page(render_friends_page(1, 50, 0, entries))
        assert parsed.next_offset == 20

    def test_next_offset_none_at_end(self):
        entries = [DirectoryEntry(i, f"U{i}") for i in range(10)]
        parsed = parse_friends_page(render_friends_page(1, 10, 0, entries))
        assert parsed.next_offset is None

    def test_search_page_round_trips(self):
        entries = [DirectoryEntry(5, "Emma")]
        parsed = parse_search_page(render_search_page(1, 0, entries))
        assert parsed.entries == tuple(entries)

    def test_friend_parser_rejects_search_page(self):
        page = render_search_page(1, 0, [DirectoryEntry(5, "Emma")])
        with pytest.raises(ParseError):
            parse_friends_page(page)

    @given(entries=entries_strategy, total_extra=st.integers(0, 100))
    @settings(max_examples=60)
    def test_listing_fuzz(self, entries, total_extra):
        total = len(entries) + total_extra
        parsed = parse_search_page(render_search_page(total, 0, entries))
        assert list(parsed.entries) == entries
        assert parsed.total == total


class TestSchoolPage:
    def test_round_trips(self):
        school = School(3, 'Jo & "Flo" High', "East <Side>", 1500)
        assert parse_school_page(render_school_page(school)) == school

    def test_missing_enrollment_hint(self):
        school = School(3, "Hintless High", "Nowhere", None)
        parsed = parse_school_page(render_school_page(school))
        assert parsed.enrollment_hint is None
