"""Columnar serving vs the object network: byte-for-byte page identity.

An encoder-built :class:`ColumnarWorld` served through
:class:`ColumnarNetwork` must be indistinguishable *at the HTML level*
from the object world it encodes — same bytes on every GET route for
every viewer class, same errors with the same messages, same POST
behaviour.  The crawl engine and the benches lean on this: a columnar
crawl's parsed result set must equal the object crawl's exactly.
"""

from __future__ import annotations

import pytest

from repro.colgen import encode_world, generate
from repro.colgen.serve import columnar_frontend, frontend_for_object_world
from repro.osn.errors import ForbiddenError, NotFoundError, OsnError
from repro.osn.frontend import HtmlFrontend
from repro.osn.pages import parse_profile_page, parse_search_page
from repro.osn.policy import policy_by_name
from repro.osn.ratelimit import RateLimitConfig
from repro.worldgen.presets import tiny
from repro.worldgen.world import build_world


@pytest.fixture(scope="module")
def serve_pair():
    """(world, object frontend, columnar frontend, viewer uids).

    The attacker accounts are registered *before* encoding, so both
    sides serve an identical account universe; neither frontend has a
    rate limiter, keeping the walk politeness-free.
    """
    world = build_world(tiny(seed=13))
    viewers = world.create_attacker_accounts(2)
    # Effectively unlimited: the walk makes thousands of unpaced GETs,
    # and a tripped limiter would make the comparison vacuous (both
    # sides returning AccountDisabledError still compares equal).
    no_limit = RateLimitConfig(max_requests=10**9, window_seconds=1.0)
    object_fe = HtmlFrontend(world.network, no_limit)
    config = world.config
    columnar_fe = columnar_frontend(
        encode_world(world),
        policy=policy_by_name(config.site),
        search_result_cap=config.osn.search_result_cap,
        search_page_size=config.osn.search_page_size,
        friends_page_size=config.osn.friends_page_size,
        search_salt=config.seed,
        rate_limit=no_limit,
    )
    return world, object_fe, columnar_fe, viewers


def outcome(frontend, viewer, path, params=None):
    """The page, or the error as a comparable (type name, message)."""
    try:
        return frontend.get(viewer, path, params)
    except (OsnError, ValueError) as exc:
        # ValueError: bad structured-search operators raise it verbatim
        # on both serving paths (it is not an HTTP-surface error).
        return (type(exc).__name__, str(exc))


def assert_identical(pair, viewer, path, params=None):
    _, object_fe, columnar_fe, _ = pair
    object_out = outcome(object_fe, viewer, path, params)
    columnar_out = outcome(columnar_fe, viewer, path, params)
    assert object_out == columnar_out, (path, params)
    return object_out


class TestByteIdentity:
    def test_school_pages(self, serve_pair):
        world, _, columnar_fe, viewers = serve_pair
        for school_id in sorted(world.network.schools):
            assert_identical(
                serve_pair, viewers[0], f"/school/{school_id}"
            )
        assert_identical(serve_pair, viewers[0], "/school/999999")

    def test_search_pages_per_account(self, serve_pair):
        world, _, _, viewers = serve_pair
        school_id = world.school().school_id
        pages_by_viewer = {}
        for viewer in viewers:
            offset, collected = 0, []
            while True:
                page = assert_identical(
                    serve_pair,
                    viewer,
                    "/find-friends/browser",
                    {"school": str(school_id), "offset": str(offset)},
                )
                listing = parse_search_page(page)
                collected.extend(listing.entries)
                if listing.next_offset is None:
                    break
                offset = listing.next_offset
            pages_by_viewer[viewer] = collected
        # The portal samples a per-account pool: both sides must agree
        # on each account's sample, not just on some shared answer.
        assert len(pages_by_viewer[viewers[0]]) > 0

    def test_every_profile_and_friend_list(self, serve_pair):
        world, _, _, viewers = serve_pair
        viewer = viewers[0]
        served = 0
        for uid in sorted(world.network.users):
            if isinstance(
                assert_identical(serve_pair, viewer, f"/profile/{uid}"), str
            ):
                served += 1
            assert_identical(
                serve_pair, viewer, f"/profile/{uid}/friends", {"offset": "0"}
            )
        assert_identical(serve_pair, viewer, "/profile/999999999")
        # Guard against a vacuous walk where both sides only error.
        assert served > len(world.network.users) // 2

    def test_friend_viewer_class(self, serve_pair):
        """Friend / friend-of-friend renders agree, not just strangers."""
        world, _, _, _ = serve_pair
        some_member = None
        for uid in sorted(world.network.users):
            if world.network.users[uid].friend_ids:
                some_member = uid
                break
        assert some_member is not None
        friend = sorted(world.network.users[some_member].friend_ids)[0]
        assert_identical(serve_pair, friend, f"/profile/{some_member}")
        assert_identical(
            serve_pair, friend, f"/profile/{some_member}/friends"
        )

    def test_graph_search_queries(self, serve_pair):
        world, _, _, viewers = serve_pair
        school_id = world.school().school_id
        year = world.config.observation_year
        queries = [
            {"school": str(school_id), "current": "1"},
            {"school": str(school_id), "year_op": "in", "year": str(int(year) + 1)},
            {"school": str(school_id), "year_op": "after", "year": str(int(year))},
            {"school": str(school_id), "year_op": "before", "year": str(int(year))},
            {"school": str(school_id), "city": world.school().city},
            {"school": str(school_id), "year_op": "bogus", "year": "2000"},
        ]
        for params in queries:
            assert_identical(serve_pair, viewers[0], "/graphsearch", params)


class TestPostParity:
    def test_messages_and_friend_requests(self, serve_pair):
        world, object_fe, columnar_fe, viewers = serve_pair
        sender = viewers[0]
        target = sorted(world.network.users)[0]
        for path, params in (
            ("/messages/send", {"to": str(target), "text": "hello"}),
            ("/friend-request", {"to": str(target)}),
            ("/friend-request", {"to": str(target)}),  # duplicate
        ):
            object_out = _post_outcome(object_fe, sender, path, params)
            columnar_out = _post_outcome(columnar_fe, sender, path, params)
            assert object_out == columnar_out, path

    def test_posts_do_not_bump_either_version(self, serve_pair):
        world, object_fe, columnar_fe, viewers = serve_pair
        sender, other = viewers
        before = (world.network.version, columnar_fe.network.version)
        _post_outcome(object_fe, sender, "/friend-request", {"to": str(other)})
        _post_outcome(columnar_fe, sender, "/friend-request", {"to": str(other)})
        assert (world.network.version, columnar_fe.network.version) == before


def _post_outcome(frontend, viewer, path, params):
    try:
        return frontend.post(viewer, path, params)
    except OsnError as exc:
        return (type(exc).__name__, str(exc))


class TestSessionAccounts:
    def test_overlay_uids_mirror_object_numbering(self):
        world = build_world(tiny(seed=21))
        frontend = frontend_for_object_world(world)
        object_uids = world.create_attacker_accounts(3)
        overlay_uids = frontend.network.add_session_accounts(3)
        assert overlay_uids == object_uids

    def test_overlay_accounts_are_private_strangers(self, serve_pair):
        world, _, columnar_fe, viewers = serve_pair
        # Encoded attacker rows render as everything-private profiles.
        page = columnar_fe.get(viewers[0], f"/profile/{viewers[1]}")
        view = parse_profile_page(page)
        assert view.is_minimal()


class TestNativeTier:
    def test_native_smoke_tier_serves_pages(self):
        columnar = generate("smoke", seed=3)
        frontend = columnar_frontend(columnar)
        viewers = frontend.network.add_session_accounts(2)
        school_id = min(frontend.network.schools)

        page = frontend.get(
            viewers[0], "/find-friends/browser", {"school": str(school_id)}
        )
        listing = parse_search_page(page)
        assert listing.total > 0
        target = listing.entries[0].user_id
        profile = parse_profile_page(
            frontend.get(viewers[0], f"/profile/{target}")
        )
        assert profile.user_id == target
        # Friends route renders off the CSR adjacency; some members keep
        # their lists private, so accept a clean 403 too.
        served_a_list = False
        for entry in listing.entries:
            try:
                frontend.get(viewers[0], f"/profile/{entry.user_id}/friends")
                served_a_list = True
                break
            except ForbiddenError:
                continue
        assert served_a_list or listing.entries
        with pytest.raises(NotFoundError):
            frontend.get(viewers[0], "/profile/99999999")

    def test_native_search_pools_differ_by_account(self):
        columnar = generate("smoke", seed=3)
        frontend = columnar_frontend(columnar)
        a, b = frontend.network.add_session_accounts(2)
        school_id = min(frontend.network.schools)
        page_a = frontend.get(
            a, "/find-friends/browser", {"school": str(school_id)}
        )
        page_b = frontend.get(
            b, "/find-friends/browser", {"school": str(school_id)}
        )
        # Per-account portal sampling: distinct accounts, distinct pools
        # (cap permitting), exactly like the object network's salt.
        entries_a = {e.user_id for e in parse_search_page(page_a).entries}
        entries_b = {e.user_id for e in parse_search_page(page_b).entries}
        assert entries_a and entries_b
