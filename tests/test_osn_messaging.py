"""Unit tests for the contact service (messages, friend requests)."""

import pytest

from repro.osn.errors import ForbiddenError
from repro.osn.messaging import ContactService, FriendRequest, Message


@pytest.fixture()
def service():
    return ContactService()


class TestMessages:
    def test_delivery_lands_in_inbox(self, service):
        service.deliver_message(Message(1, 2, "hi", 2012.25))
        assert service.inbox_size(2) == 1
        assert service.inbox(2)[0].text == "hi"

    def test_self_message_rejected(self, service):
        with pytest.raises(ForbiddenError):
            service.deliver_message(Message(1, 1, "me", 2012.25))

    def test_inbox_is_a_copy(self, service):
        service.deliver_message(Message(1, 2, "hi", 2012.25))
        service.inbox(2).clear()
        assert service.inbox_size(2) == 1

    def test_counter(self, service):
        for i in range(3):
            service.deliver_message(Message(1, 2 + i, "x", 2012.25))
        assert service.messages_delivered == 3

    def test_empty_inbox(self, service):
        assert service.inbox(99) == []
        assert service.inbox_size(99) == 0


class TestFriendRequests:
    def test_request_queued(self, service):
        assert service.add_request(FriendRequest(1, 2, 2012.25))
        assert service.has_pending(2, 1)
        assert len(service.pending_requests(2)) == 1

    def test_duplicate_rejected(self, service):
        service.add_request(FriendRequest(1, 2, 2012.25))
        assert not service.add_request(FriendRequest(1, 2, 2012.30))
        assert service.requests_sent == 1

    def test_self_request_rejected(self, service):
        with pytest.raises(ForbiddenError):
            service.add_request(FriendRequest(1, 1, 2012.25))

    def test_pop_answers_request(self, service):
        service.add_request(FriendRequest(1, 2, 2012.25))
        popped = service.pop_request(2, 1)
        assert popped is not None and popped.sender_id == 1
        assert not service.has_pending(2, 1)

    def test_pop_missing_returns_none(self, service):
        assert service.pop_request(2, 1) is None

    def test_directional(self, service):
        service.add_request(FriendRequest(1, 2, 2012.25))
        assert not service.has_pending(1, 2)  # other direction unaffected
        assert service.add_request(FriendRequest(2, 1, 2012.25))
