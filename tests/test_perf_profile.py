"""Phase aggregation over telemetry spans and the cProfile breakdown."""

from __future__ import annotations

from repro.osn.clock import SimClock
from repro.perf.profile import (
    aggregate_phases,
    phases_json,
    profile_call,
    render_phase_table,
)
from repro.telemetry.runtime import Telemetry
from repro.telemetry.tracing import SpanRecord


def span(name, wall, sim_start=0.0, sim_end=0.0, parent="-"):
    return SpanRecord(
        name=name, parent=parent, sim_start=sim_start, sim_end=sim_end,
        wall_seconds=wall,
    )


def test_aggregate_sums_and_sorts_by_wall():
    spans = [
        span("seeds", wall=0.2, sim_start=0.0, sim_end=10.0),
        span("core", wall=0.5, sim_start=10.0, sim_end=40.0),
        span("seeds", wall=0.3, sim_start=40.0, sim_end=45.0),
    ]
    stats = aggregate_phases(spans)
    assert [s.name for s in stats] == ["core", "seeds"]
    seeds = stats[1]
    assert seeds.calls == 2
    assert seeds.wall_seconds == 0.5
    assert seeds.sim_seconds == 15.0


def test_aggregate_ties_break_on_name():
    stats = aggregate_phases([span("b", wall=0.1), span("a", wall=0.1)])
    assert [s.name for s in stats] == ["a", "b"]


def test_phases_json_shape():
    [entry] = phases_json(aggregate_phases([span("link", wall=0.25)]))
    assert entry == {
        "name": "link", "calls": 1, "wall_seconds": 0.25, "sim_seconds": 0.0,
    }


def test_phases_from_real_tracer_spans():
    telemetry = Telemetry(SimClock(2012.25))
    with telemetry.span("outer"):
        with telemetry.span("inner"):
            telemetry.clock.sleep(30.0)
    stats = aggregate_phases(telemetry.tracer.finished)
    by_name = {s.name: s for s in stats}
    assert by_name["inner"].sim_seconds == 30.0
    assert by_name["outer"].sim_seconds == 30.0


def test_render_phase_table_mentions_phases():
    table = render_phase_table(aggregate_phases([span("seeds", wall=0.001)]))
    assert "seeds" in table
    assert "wall ms" in table


def test_profile_call_returns_result_and_entries():
    def work():
        return sum(sorted(range(5000), reverse=True))

    result, entries = profile_call(work, top_n=5)
    assert result == sum(range(5000))
    assert 0 < len(entries) <= 5
    for entry in entries:
        assert set(entry) == {
            "function", "file", "line", "calls",
            "tottime_seconds", "cumtime_seconds",
        }
    # Sorted by cumulative time, hottest first.
    cumtimes = [entry["cumtime_seconds"] for entry in entries]
    assert cumtimes == sorted(cumtimes, reverse=True)
