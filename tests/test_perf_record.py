"""The bench-record schema: validation, fingerprint, atomic writes."""

from __future__ import annotations

import json

import pytest

import repro.colgen as colgen
from repro.perf.record import (
    BenchRecordError,
    ENVIRONMENT_KEYS,
    SCHEMA_VERSION,
    environment_fingerprint,
    load_record,
    metric,
    new_record,
    peak_rss_bytes,
    validate_record,
    write_record,
)


def make_record(**overrides):
    record = new_record(
        "crawl",
        params={"preset": "tiny", "seed": 7},
        metrics={
            "pages_per_second": metric(120.5, "pages/sec", "higher", tolerance_pct=15),
            "requests": metric(325, "count", "exact"),
            "peak_rss_bytes": metric(1 << 26, "bytes", "lower", tolerance_pct=20),
        },
        phases=[{"name": "seeds", "calls": 1, "wall_seconds": 0.1, "sim_seconds": 12.0}],
    )
    record.update(overrides)
    return record


def test_valid_record_passes():
    assert validate_record(make_record()) == []


def test_non_object_rejected():
    assert validate_record([1, 2]) == ["record is not a JSON object"]


@pytest.mark.parametrize("key", ["benchmark", "metrics", "environment"])
def test_missing_sections_flagged(key):
    record = make_record()
    del record[key]
    problems = validate_record(record)
    assert any(key in problem for problem in problems)


def test_schema_version_mismatch_flagged():
    problems = validate_record(make_record(schema_version=SCHEMA_VERSION + 1))
    assert any("schema_version" in p for p in problems)


def test_bad_metric_entries_flagged():
    record = make_record()
    record["metrics"]["bad_unit"] = metric(1.0, "furlongs", "higher")
    record["metrics"]["bad_direction"] = metric(1.0, "count", "sideways")
    record["metrics"]["bad_value"] = {"value": float("nan"), "unit": "count", "direction": "info"}
    record["metrics"]["bad_tolerance"] = metric(1.0, "count", "higher", tolerance_pct=-5)
    problems = "\n".join(validate_record(record))
    assert "furlongs" in problems
    assert "sideways" in problems
    assert "bad_value" in problems
    assert "tolerance_pct" in problems


def test_metrics_must_be_non_empty():
    problems = validate_record(make_record(metrics={}))
    assert any("non-empty" in p for p in problems)


def test_bad_phase_flagged():
    record = make_record(phases=[{"name": "", "calls": 1}])
    problems = "\n".join(validate_record(record))
    assert "phases[0]" in problems


def test_timestamp_keys_rejected():
    record = make_record(crawl_timestamp=123.0)
    record["metrics"]["start_epoch"] = metric(1.0, "seconds", "info")
    problems = "\n".join(validate_record(record))
    assert "crawl_timestamp" in problems
    assert "start_epoch" in problems


def test_environment_missing_keys_flagged():
    record = make_record(environment={"python": "3.12"})
    problems = "\n".join(validate_record(record))
    assert "cpu_count" in problems


def test_extra_top_level_sections_allowed():
    assert validate_record(make_record(tier={"accounts": 7})) == []


def test_environment_fingerprint_shape():
    env = environment_fingerprint()
    assert set(ENVIRONMENT_KEYS) <= set(env)
    assert env["cpu_count"] >= 1
    assert isinstance(env["numpy"], bool)


def test_peak_rss_positive_and_shared_with_colgen():
    assert peak_rss_bytes() > 0
    # Satellite: colgen re-exports the perf implementation, not a copy.
    assert colgen.peak_rss_bytes is peak_rss_bytes


def test_write_record_round_trips(tmp_path):
    path = tmp_path / "BENCH_crawl.json"
    write_record(make_record(), path)
    loaded = load_record(path)
    assert loaded["benchmark"] == "crawl"
    assert validate_record(loaded) == []
    assert not list(tmp_path.glob("*.tmp"))


def test_write_record_rejects_invalid_and_preserves_existing(tmp_path):
    path = tmp_path / "BENCH_crawl.json"
    write_record(make_record(), path)
    before = path.read_text()
    bad = make_record()
    del bad["metrics"]
    with pytest.raises(BenchRecordError) as excinfo:
        write_record(bad, path)
    assert excinfo.value.problems
    assert path.read_text() == before
    assert not list(tmp_path.glob("*.tmp"))


def test_load_record_rejects_non_objects(tmp_path):
    path = tmp_path / "BENCH_list.json"
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(BenchRecordError):
        load_record(path)
