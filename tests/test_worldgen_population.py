"""Tests for ground-truth population generation."""

import random

import pytest

from repro.worldgen.config import SchoolConfig, WorldConfig
from repro.worldgen.population import (
    GRADUATION_AGE,
    Population,
    PopulationBuilder,
    Role,
    build_population,
)
from repro.worldgen.presets import tiny


@pytest.fixture(scope="module")
def population():
    return build_population(tiny(seed=11))


class TestStudents:
    def test_four_cohorts(self, population):
        cohorts = population.students_by_school[0]
        assert sorted(cohorts) == [2012, 2013, 2014, 2015]

    def test_cohort_sizes_match_config(self, population):
        config = tiny(seed=11)
        expected = config.schools[0].cohort_size
        for members in population.students_by_school[0].values():
            assert len(members) == expected

    def test_student_ages_fit_cohorts(self, population):
        obs = tiny(seed=11).observation_year
        for cohort, members in population.students_by_school[0].items():
            for pid in members:
                person = population.person(pid)
                age = person.real_age(obs)
                expected = obs - (cohort - GRADUATION_AGE)
                assert abs(age - (expected - 0.5)) <= 0.51

    def test_most_students_are_minors(self, population):
        obs = tiny(seed=11).observation_year
        students = [
            population.person(pid)
            for members in population.students_by_school[0].values()
            for pid in members
        ]
        minors = sum(1 for s in students if s.real_age(obs) < 18.0)
        assert minors / len(students) > 0.8

    def test_some_seniors_are_real_adults(self, population):
        obs = tiny(seed=11).observation_year
        seniors = [
            population.person(pid)
            for pid in population.students_by_school[0][2012]
        ]
        adults = sum(1 for s in seniors if s.real_age(obs) >= 18.0)
        assert 0 < adults < len(seniors)

    def test_tenure_positive(self, population):
        for members in population.students_by_school[0].values():
            for pid in members:
                assert population.person(pid).tenure_years > 0


class TestChurn:
    def test_former_students_generated(self, population):
        config = tiny(seed=11).schools[0]
        former = population.former_by_school[0]
        assert len(former) == int(config.enrollment * config.churn_out_rate)

    def test_former_students_left_in_the_past(self, population):
        for pid in population.former_by_school[0]:
            person = population.person(pid)
            assert person.role is Role.FORMER_STUDENT
            assert person.left_years_ago > 0

    def test_former_students_live_elsewhere(self, population):
        config = tiny(seed=11)
        cities = {
            population.person(pid).city for pid in population.former_by_school[0]
        }
        assert config.schools[0].city not in cities


class TestAlumni:
    def test_alumni_cohort_years(self, population):
        config = tiny(seed=11).schools[0]
        years = sorted(population.alumni_by_school[0])
        assert years == list(range(2012 - config.alumni_cohorts, 2012))

    def test_alumni_are_adults_now(self, population):
        obs = tiny(seed=11).observation_year
        for members in population.alumni_by_school[0].values():
            for pid in members:
                assert population.person(pid).real_age(obs) >= 17.5


class TestFamilies:
    def test_households_link_students_and_parents(self, population):
        assert population.households
        for children, parents in population.households.values():
            assert children and parents
            child = population.person(children[0])
            parent = population.person(parents[0])
            assert parent.role is Role.PARENT
            assert parent.name.last == child.name.last
            assert parent.birth_year_fraction < child.birth_year_fraction - 18


class TestExternals:
    def test_external_pool_size(self, population):
        assert len(population.ids_with_role(Role.EXTERNAL)) == tiny(seed=11).externals.size

    def test_some_externals_are_minors(self, population):
        obs = tiny(seed=11).observation_year
        externals = [
            population.person(pid) for pid in population.ids_with_role(Role.EXTERNAL)
        ]
        minors = sum(1 for p in externals if p.real_age(obs) < 18.0)
        assert 0 < minors < len(externals)


class TestDeterminism:
    def test_same_seed_same_population(self):
        a = build_population(tiny(seed=5))
        b = build_population(tiny(seed=5))
        assert len(a) == len(b)
        assert [p.name.full for p in a.people[:50]] == [
            p.name.full for p in b.people[:50]
        ]

    def test_different_seed_differs(self):
        a = build_population(tiny(seed=5))
        b = build_population(tiny(seed=6))
        assert [p.name.full for p in a.people[:50]] != [
            p.name.full for p in b.people[:50]
        ]


class TestValidation:
    def test_empty_school_rejected(self):
        config = WorldConfig(schools=(SchoolConfig("X", "Y", enrollment=0),))
        with pytest.raises(ValueError):
            build_population(config)

    def test_non_four_year_school_rejected(self):
        config = WorldConfig(schools=(SchoolConfig("X", "Y", cohorts=3),))
        with pytest.raises(ValueError):
            build_population(config)

    def test_no_schools_rejected(self):
        with pytest.raises(ValueError):
            build_population(WorldConfig(schools=()))
