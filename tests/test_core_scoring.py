"""Tests for reverse lookup and the x(u) scoring rule (Eqs. 1-2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coreset import CoreSet
from repro.core.scoring import (
    ScoringRule,
    reverse_lookup_index,
    score_candidates,
)


def make_core():
    """Core with |C_2012|=2, |C_2013|=1."""
    core = CoreSet(school_id=1, current_year=2012)
    core.add_core(10, 2012, [100, 101, 102])
    core.add_core(11, 2012, [100, 103])
    core.add_core(12, 2013, [100, 104])
    return core


class TestReverseLookupIndex:
    def test_maps_candidates_to_owners(self):
        index = reverse_lookup_index({1: [7, 8], 2: [8]})
        assert index == {7: {1}, 8: {1, 2}}

    def test_empty(self):
        assert reverse_lookup_index({}) == {}


class TestMaxFractionScoring:
    def test_equation_two(self):
        table = score_candidates(make_core(), denominator_floor=1)
        # candidate 100: 2/2 in 2012, 1/1 in 2013 -> max = 1.0
        assert table.scores[100].score == pytest.approx(1.0)
        # candidate 101: 1/2 in 2012 -> 0.5
        assert table.scores[101].score == pytest.approx(0.5)
        # candidate 104: 1/1 in 2013 -> 1.0
        assert table.scores[104].score == pytest.approx(1.0)

    def test_counts_recorded_per_year(self):
        table = score_candidates(make_core(), denominator_floor=1)
        assert table.scores[100].counts == {2012: 2, 2013: 1, 2014: 0, 2015: 0}

    def test_year_assignment_argmax(self):
        table = score_candidates(make_core())
        assert table.scores[101].year == 2012
        assert table.scores[104].year == 2013

    def test_year_tie_breaks_on_raw_count(self):
        # candidate 100 ties at 1.0 for 2012 (2/2) and 2013 (1/1);
        # 2012 has more raw core friends, so it wins.
        table = score_candidates(make_core())
        assert table.scores[100].year == 2012

    def test_core_members_not_scored(self):
        core = make_core()
        core.add_core(13, 2013, [10])  # core user 10 appears in a list
        table = score_candidates(core)
        assert 10 not in table

    def test_scores_bounded(self):
        table = score_candidates(make_core())
        for entry in table.scores.values():
            assert 0.0 <= entry.score <= 1.0


class TestAlternateRules:
    def test_sum_fraction(self):
        table = score_candidates(
            make_core(), ScoringRule.SUM_FRACTION, denominator_floor=1
        )
        assert table.scores[100].score == pytest.approx(2.0)  # 1.0 + 1.0

    def test_raw_count(self):
        table = score_candidates(make_core(), ScoringRule.RAW_COUNT)
        assert table.scores[100].score == pytest.approx(3.0)


class TestRanking:
    def test_descending_by_score(self):
        table = score_candidates(make_core())
        ranked = table.ranked()
        scores = [table.scores[uid].score for uid in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_exclusion(self):
        table = score_candidates(make_core())
        ranked = table.ranked(exclude={100, 104})
        assert 100 not in ranked and 104 not in ranked

    def test_tie_break_deterministic(self):
        table = score_candidates(make_core())
        assert table.ranked() == table.ranked()

    def test_equal_score_prefers_more_core_friends(self):
        # 100 (3 core friends) and 104 (1 core friend) both score 1.0.
        table = score_candidates(make_core())
        ranked = table.ranked()
        assert ranked.index(100) < ranked.index(104)


class TestDenominatorFloor:
    def test_floor_caps_thin_year_scores(self):
        # |C_2013| = 1: with the default floor of 3, one hit scores 1/3.
        table = score_candidates(make_core())
        assert table.scores[104].score == pytest.approx(1.0 / 3.0)

    def test_floor_irrelevant_for_healthy_cores(self):
        core = CoreSet(school_id=1, current_year=2012)
        for i in range(5):
            core.add_core(10 + i, 2012, [100, 101 + i])
        literal = score_candidates(core, denominator_floor=1)
        floored = score_candidates(core, denominator_floor=3)
        for uid in literal.scores:
            assert literal.scores[uid].score == pytest.approx(
                floored.scores[uid].score
            )

    def test_bad_floor_rejected(self):
        with pytest.raises(ValueError):
            score_candidates(make_core(), denominator_floor=0)

    def test_empty_year_still_scores_zero(self):
        table = score_candidates(make_core())
        assert all(
            entry.fractions[2014] == 0.0 and entry.fractions[2015] == 0.0
            for entry in table.scores.values()
        )


friend_lists_strategy = st.dictionaries(
    keys=st.integers(0, 9),
    values=st.lists(st.integers(100, 160), max_size=15),
    max_size=8,
)


class TestScoringProperties:
    @given(friend_lists_strategy, st.sampled_from(list(ScoringRule)))
    @settings(max_examples=60)
    def test_scores_non_negative_and_bounded(self, friend_lists, rule):
        core = CoreSet(school_id=1, current_year=2012)
        for i, (uid, friends) in enumerate(friend_lists.items()):
            core.add_core(uid, 2012 + (i % 4), friends)
        table = score_candidates(core, rule)
        for entry in table.scores.values():
            assert entry.score >= 0.0
            if rule is ScoringRule.MAX_FRACTION:
                assert entry.score <= 1.0
            total = sum(entry.counts.values())
            assert total >= 1
            if entry.year is not None:
                assert entry.year in core.years

    @given(friend_lists_strategy)
    @settings(max_examples=60)
    def test_every_candidate_scored(self, friend_lists):
        core = CoreSet(school_id=1, current_year=2012)
        for i, (uid, friends) in enumerate(friend_lists.items()):
            core.add_core(uid, 2012 + (i % 4), friends)
        table = score_candidates(core)
        assert set(table.scores) == core.candidate_set()
