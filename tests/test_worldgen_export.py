"""Tests for world snapshot export/import."""

import json

import pytest

from repro.worldgen.export import export_world_json, load_world_export, world_summary


class TestSummary:
    def test_aggregates_present(self, tiny_world):
        summary = world_summary(tiny_world)
        for key in (
            "population_by_role",
            "accounts",
            "age_liar_fraction",
            "registered_minors",
            "edges",
            "mean_degree",
            "schools",
        ):
            assert key in summary

    def test_counts_consistent_with_world(self, tiny_world):
        summary = world_summary(tiny_world)
        truth = tiny_world.ground_truth()
        school = summary["schools"][0]
        assert school["on_osn"] == truth.on_osn_count
        assert school["enrolled"] == truth.enrolled_count
        assert summary["edges"] == tiny_world.network.graph.edge_count()

    def test_no_individual_data_in_summary(self, tiny_world):
        """The aggregate view must not contain any person's name."""
        summary = json.dumps(world_summary(tiny_world))
        some_person = tiny_world.population.people[0]
        assert some_person.name.full not in summary

    def test_liar_fraction_in_unit_interval(self, tiny_world):
        summary = world_summary(tiny_world)
        assert 0.0 < summary["age_liar_fraction"] < 1.0


class TestExportRoundTrip:
    def test_aggregate_only_by_default(self, tiny_world, tmp_path):
        path = str(tmp_path / "world.json")
        export_world_json(tiny_world, path)
        loaded = load_world_export(path)
        assert "summary" in loaded
        assert "users" not in loaded

    def test_full_dump_round_trips(self, tiny_world, tmp_path):
        path = str(tmp_path / "world_full.json")
        written = export_world_json(tiny_world, path, include_individuals=True)
        loaded = load_world_export(path)
        assert loaded["summary"]["seed"] == tiny_world.config.seed
        assert len(loaded["users"]) == len(written["users"])
        assert len(loaded["edges"]) == tiny_world.network.graph.edge_count()

    def test_full_dump_excludes_fake_accounts(self, fresh_tiny_world, tmp_path):
        fresh_tiny_world.create_attacker_accounts(3)
        path = str(tmp_path / "world.json")
        written = export_world_json(fresh_tiny_world, path, include_individuals=True)
        names = {u["name"] for u in written["users"]}
        assert not any(name.startswith("Crawl ") for name in names)

    def test_dump_records_lying(self, tiny_world, tmp_path):
        path = str(tmp_path / "world.json")
        written = export_world_json(tiny_world, path, include_individuals=True)
        liars = [u for u in written["users"] if u["lied"]]
        assert liars
        for user in liars[:20]:
            assert user["registered_birth_year"] != user["real_birth_year"]
