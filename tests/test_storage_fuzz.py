"""Hypothesis fuzz: arbitrary profile views survive the SQLite store."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawler.storage import CrawlStore
from repro.osn.profile import Gender, SchoolAffiliation
from repro.osn.view import ProfileView, WallPostView

text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    max_size=24,
)
opt_text = st.none() | text
opt_int = st.none() | st.integers(0, 5000)

schools = st.lists(
    st.builds(
        SchoolAffiliation,
        school_id=st.integers(1, 50),
        school_name=text,
        graduation_year=st.none() | st.integers(1990, 2020),
    ),
    max_size=3,
).map(tuple)

walls = st.lists(
    st.builds(WallPostView, author_id=st.integers(1, 9999), text=text),
    max_size=4,
).map(tuple)

views = st.builds(
    ProfileView,
    user_id=st.integers(1, 10_000_000),
    name=text,
    gender=st.none() | st.sampled_from(list(Gender)),
    networks=st.lists(text, max_size=3).map(tuple),
    has_profile_photo=st.booleans(),
    high_schools=schools,
    relationship_status=opt_text,
    interested_in=opt_text,
    birthday_year=st.none() | st.integers(1940, 2010),
    hometown=opt_text,
    current_city=opt_text,
    employer=opt_text,
    graduate_school=opt_text,
    photo_count=opt_int,
    wall_post_count=opt_int,
    wall_posts=walls,
    contact_email=opt_text,
    contact_phone=opt_text,
    friend_list_visible=st.booleans(),
    message_button=st.booleans(),
    public_search_listed=st.booleans(),
)


class TestStorageFuzz:
    @given(view=views)
    @settings(max_examples=80, deadline=None)
    def test_round_trip_identity(self, view):
        with CrawlStore(":memory:") as store:
            store.save_profile(view)
            assert store.load_profile(view.user_id) == view

    @given(view=views)
    @settings(max_examples=40, deadline=None)
    def test_minimality_column_consistent(self, view):
        with CrawlStore(":memory:") as store:
            store.save_profile(view)
            loaded = store.load_profile(view.user_id)
            assert loaded.is_minimal() == view.is_minimal()


class TestPagesFuzz:
    @given(view=views)
    @settings(max_examples=80, deadline=None)
    def test_html_round_trip_identity(self, view):
        """The full render->parse cycle preserves arbitrary views."""
        from repro.osn.pages import parse_profile_page, render_profile_page

        parsed = parse_profile_page(render_profile_page(view))
        # Rendering collapses two representational corner cases that
        # carry no information a stranger could distinguish:
        # has_profile_photo and visible counts survive exactly.
        assert parsed.user_id == view.user_id
        assert parsed.name == view.name
        assert parsed.high_schools == view.high_schools
        assert parsed.photo_count == view.photo_count
        assert parsed.wall_posts == view.wall_posts
        assert parsed.friend_list_visible == view.friend_list_visible
        assert parsed.message_button == view.message_button
