"""The scale-safety pass: SCALE001/002/003, DET002, and --scale-report.

Fixture projects live under ``tmp_path/repro/...`` (like the conc
tests) so module names derive for real and entry-point discovery finds
the fixture's ``ColumnarNetwork``/``CrawlScheduler`` exactly as it
finds the shipped ones.  The SCALE fixtures violate through
interprocedural chains where it matters — a finding in a *callee*
module witnessed from a serve entry — and the clean twins pin the
sanctioned seams (``__init__``, setup modules, budgets, SeedSequence
lineage) that must stay silent.
"""

from __future__ import annotations

import textwrap

from repro.lint import all_rules, lint_paths, lint_source
from repro.lint.flow.summary import ModuleSummary, extract_summary
from repro.lint.scale import build_scale_report, render_text as render_report

import ast


def _rules(*ids):
    return [rule for rule in all_rules() if rule.rule_id in ids]


def _project(tmp_path, files):
    for relative, content in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return str(tmp_path / "repro")


def _scale(tmp_path, files, *ids):
    ids = ids or ("SCALE001", "SCALE002", "SCALE003")
    return lint_paths([_project(tmp_path, files)], rules=_rules(*ids))


_PKG = {
    "repro/__init__.py": "",
    "repro/colgen/__init__.py": "",
    "repro/crawler/__init__.py": "",
}


# ----------------------------------------------------------------------
# SCALE001: per-person materialisation on city-tier paths
# ----------------------------------------------------------------------

#: The violation hides one call deep: the serve entry never touches the
#: population itself, the helper it calls materialises it.
MATERIALIZE_TWO_HOP = {
    **_PKG,
    "repro/colgen/serve.py": """
        from repro.colgen.pages import all_rows


        class ColumnarNetwork:
            def __init__(self, world):
                self.world = world

            def friend_page(self, uid):
                return all_rows(self.world)
        """,
    "repro/colgen/pages.py": """
        def all_rows(world):
            return list(world.accounts)
        """,
}

#: Same sweep, but in a setup module (the encoder): sweeping the
#: population once, before serving, is the encoder's job.
MATERIALIZE_IN_SETUP = {
    **_PKG,
    "repro/colgen/serve.py": """
        from repro.colgen.encode import encode_world


        class ColumnarNetwork:
            def __init__(self, world):
                self.world = world

            def rebuild(self):
                return encode_world(self.world)
        """,
    "repro/colgen/encode.py": """
        def encode_world(world):
            return list(world.people)
        """,
}

#: Same sweep in __init__: the sanctioned eager-index seam.
MATERIALIZE_IN_INIT = {
    **_PKG,
    "repro/colgen/serve.py": """
        class ColumnarNetwork:
            def __init__(self, world):
                self.world = world
                self.by_uid = {}
                for row in range(world.n_accounts):
                    self.by_uid[row] = row

            def get_account(self, uid):
                return self.by_uid[uid]
        """,
}

#: Per-account container build inside a population loop, on the crawl
#: scheduler's path.
PER_ACCOUNT_BUILD = {
    **_PKG,
    "repro/crawler/engine.py": """
        class CrawlScheduler:
            def __init__(self, network):
                self.network = network

            def run(self):
                index = {}
                for account in self.network.accounts:
                    index[account.uid] = account
                return index
        """,
}

#: The directive sits on a *different physical line* of the multi-line
#: statement than the finding anchors to — span expansion must cover it.
MATERIALIZE_SUPPRESSED_MULTILINE = {
    **_PKG,
    "repro/colgen/serve.py": """
        class ColumnarNetwork:
            def __init__(self, world):
                self.world = world

            def friend_page(self, uid):
                rows = list(
                    self.world.accounts  # repro-lint: allow(SCALE001) -- school-tier debug page, never mounted at city tier
                )
                return rows
        """,
}


class TestScale001:
    def test_two_hop_materialisation_fires_with_witness(self, tmp_path):
        report = _scale(tmp_path, MATERIALIZE_TWO_HOP)
        assert [f.rule for f in report.findings] == ["SCALE001"]
        finding = report.findings[0]
        assert finding.path.endswith("pages.py")
        assert "ColumnarNetwork.friend_page -> all_rows" in finding.message
        assert "list(world.accounts)" in finding.message

    def test_setup_modules_are_exempt(self, tmp_path):
        report = _scale(tmp_path, MATERIALIZE_IN_SETUP)
        assert report.findings == []

    def test_init_is_the_sanctioned_eager_index_seam(self, tmp_path):
        report = _scale(tmp_path, MATERIALIZE_IN_INIT)
        assert report.findings == []

    def test_per_account_build_in_population_loop(self, tmp_path):
        report = _scale(tmp_path, PER_ACCOUNT_BUILD)
        assert [f.rule for f in report.findings] == ["SCALE001"]
        finding = report.findings[0]
        assert "index" in finding.message
        assert "self.network.accounts" in finding.message

    def test_multiline_statement_suppression_covers_the_call(self, tmp_path):
        report = _scale(tmp_path, MATERIALIZE_SUPPRESSED_MULTILINE)
        assert report.findings == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# SCALE002: population-quadratic nested loops
# ----------------------------------------------------------------------

QUADRATIC = {
    **_PKG,
    "repro/colgen/serve.py": """
        class ColumnarNetwork:
            def __init__(self, world):
                self.world = world

            def school_search(self, name):
                hits = 0
                for row in range(self.world.n_accounts):
                    for other in self.world.accounts:
                        hits += 1
                return hits
        """,
}

#: Inner loop over a *bounded* iterable (one page of results): linear.
LINEAR_INNER = {
    **_PKG,
    "repro/colgen/serve.py": """
        class ColumnarNetwork:
            def __init__(self, world):
                self.world = world

            def school_search(self, name):
                hits = 0
                for row in range(self.world.n_accounts):
                    for field in ("name", "city"):
                        hits += 1
                return hits
        """,
}


class TestScale002:
    def test_quadratic_names_both_iterables(self, tmp_path):
        report = _scale(tmp_path, QUADRATIC)
        rules = [f.rule for f in report.findings]
        assert "SCALE002" in rules
        finding = next(f for f in report.findings if f.rule == "SCALE002")
        assert "self.world.accounts" in finding.message
        assert "range(self.world.n_accounts)" in finding.message
        assert "ColumnarNetwork.school_search" in finding.message

    def test_bounded_inner_loop_is_linear(self, tmp_path):
        report = _scale(tmp_path, LINEAR_INNER)
        assert [f.rule for f in report.findings] == []


# ----------------------------------------------------------------------
# SCALE003: unbounded accumulation in streaming handlers
# ----------------------------------------------------------------------

UNBOUNDED_HANDLER = {
    **_PKG,
    "repro/crawler/engine.py": """
        class CrawlScheduler:
            def __init__(self):
                self.seen = []

            def fetch_page(self, uid):
                self.seen.append(uid)
                return self.seen
        """,
}

BUDGETED_HANDLER = {
    **_PKG,
    "repro/crawler/engine.py": """
        class CrawlScheduler:
            def __init__(self):
                self.seen = []

            def fetch_page(self, uid, budget):
                if budget.remaining <= 0:
                    return self.seen
                self.seen.append(uid)
                return self.seen
        """,
}

#: Accumulating into a *local* is not unbounded state: it dies with the
#: call.
LOCAL_ACCUMULATOR = {
    **_PKG,
    "repro/crawler/engine.py": """
        class CrawlScheduler:
            def fetch_page(self, uid):
                rows = []
                rows.append(uid)
                return rows
        """,
}

#: Finding anchors at the ``def`` line; the directive on the decorator
#: line must cover it (decorated-def span expansion).
SUPPRESSED_DECORATED_HANDLER = {
    **_PKG,
    "repro/crawler/engine.py": """
        def traced(fn):
            return fn


        class CrawlScheduler:
            def __init__(self):
                self.seen = []

            @traced  # repro-lint: allow(SCALE003) -- drained into the store at the end of every turn
            def fetch_page(self, uid):
                self.seen.append(uid)
                return self.seen
        """,
}


class TestScale003:
    def test_unbounded_streaming_handler_fires(self, tmp_path):
        report = _scale(tmp_path, UNBOUNDED_HANDLER)
        assert [f.rule for f in report.findings] == ["SCALE003"]
        finding = report.findings[0]
        assert "self.seen" in finding.message
        assert "CrawlScheduler.fetch_page" in finding.message

    def test_budget_in_scope_is_clean(self, tmp_path):
        report = _scale(tmp_path, BUDGETED_HANDLER)
        assert report.findings == []

    def test_local_accumulator_is_clean(self, tmp_path):
        report = _scale(tmp_path, LOCAL_ACCUMULATOR)
        assert report.findings == []

    def test_decorator_line_suppression_covers_the_def(self, tmp_path):
        report = _scale(tmp_path, SUPPRESSED_DECORATED_HANDLER)
        assert report.findings == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# DET002: RNG stream provenance
# ----------------------------------------------------------------------

def _det(source, module="repro.colgen.workers"):
    return lint_source(
        textwrap.dedent(source), module, rules=_rules("DET002")
    )


class TestDet002:
    def test_sharded_rng_without_lineage_fires(self):
        findings = _det(
            """
            import numpy as np


            def draw(seed, shard):
                rng = np.random.default_rng(seed)
                return rng.normal()
            """
        )
        assert [f.rule for f in findings] == ["DET002"]
        assert "SeedSequence" in findings[0].message

    def test_constant_seedsequence_across_shards_fires(self):
        findings = _det(
            """
            import numpy as np


            def draw(seed, shard):
                rng = np.random.default_rng(np.random.SeedSequence([seed]))
                return rng.normal()
            """
        )
        assert [f.rule for f in findings] == ["DET002"]
        assert "constant across shards" in findings[0].message

    def test_full_lineage_is_clean(self):
        findings = _det(
            """
            import numpy as np


            def shard_rng(seed, stream, shard):
                return np.random.default_rng(
                    np.random.SeedSequence([seed, stream, shard])
                )
            """
        )
        assert findings == []

    def test_lineage_through_a_local_is_clean(self):
        findings = _det(
            """
            import numpy as np


            def shard_rng(seed, shard):
                spawn_key = np.random.SeedSequence([seed, shard])
                return np.random.default_rng(spawn_key)
            """
        )
        assert findings == []

    def test_unsharded_child_seed_is_det001_territory(self):
        # The friendship sampler's idiom: one generator, no shards —
        # DET002 must stay silent (DET001 already polices seeding).
        findings = _det(
            """
            import numpy as np


            def make_sampler(rng):
                sampler_seed = rng.getrandbits(64)
                return np.random.default_rng(sampler_seed)
            """
        )
        assert findings == []

    def test_generator_hoisted_outside_shard_loop_fires(self):
        findings = _det(
            """
            import numpy as np


            def generate(seed, n_shards):
                gen = np.random.default_rng(seed)
                out = []
                for shard in range(n_shards):
                    out.append(gen.normal())
                return out
            """
        )
        rules = [f.rule for f in findings]
        assert rules.count("DET002") == len(rules) >= 1
        assert any("shared across workers" in f.message for f in findings)

    def test_per_shard_generator_inside_loop_is_clean(self):
        findings = _det(
            """
            import numpy as np


            def generate(seed, n_shards):
                out = []
                for shard in range(n_shards):
                    gen = np.random.default_rng(
                        np.random.SeedSequence([seed, shard])
                    )
                    out.append(gen.normal())
                return out
            """
        )
        assert findings == []

    def test_shard_loop_inside_unsharded_function(self):
        # Sharded context can come from the loop variable alone.
        findings = _det(
            """
            import numpy as np


            def generate(seed, blocks):
                for block in blocks:
                    rng = np.random.default_rng(seed)
            """
        )
        assert [f.rule for f in findings] == ["DET002"]

    def test_direct_import_of_default_rng_is_seen(self):
        findings = _det(
            """
            from numpy.random import SeedSequence, default_rng


            def draw(seed, shard):
                return default_rng(seed)
            """
        )
        assert [f.rule for f in findings] == ["DET002"]


# ----------------------------------------------------------------------
# --scale-report: the columnar-port worklist
# ----------------------------------------------------------------------

REPORT_PROJECT = {
    **_PKG,
    "repro/core/__init__.py": "",
    "repro/core/api.py": """
        from repro.core.scoring import rank


        def run_attack(world, seed):
            return rank(world)
        """,
    "repro/core/scoring.py": """
        def rank(world):
            return world.people


        def orphan_reader(world):
            return world.people


        def _hidden(world):
            return world.people


        def no_world(client):
            return client
        """,
    "repro/colgen/world.py": """
        class ColumnarWorld:
            pass
        """,
    "repro/colgen/serve.py": """
        from repro.colgen.world import ColumnarWorld


        class ColumnarNetwork:
            def __init__(self, world: ColumnarWorld) -> None:
                self.world = world

            def get_account(self, uid):
                return self.world.accounts
        """,
}


class TestScaleReport:
    def _report(self, tmp_path):
        root = _project(tmp_path, REPORT_PROJECT)
        report = lint_paths([root], rules=_rules("SCALE001"), keep_index=True)
        assert report.index is not None
        return build_scale_report(report.index)

    def test_covers_every_world_reading_attack_function(self, tmp_path):
        worklist = self._report(tmp_path)
        fqns = [item.fqn for item in worklist.items]
        # reached through a caller AND self-rooted; orphan only self-rooted
        assert "repro.core.api:run_attack" in fqns
        assert "repro.core.scoring:rank" in fqns
        assert "repro.core.scoring:orphan_reader" in fqns

    def test_excludes_private_worldless_and_columnar_holders(self, tmp_path):
        worklist = self._report(tmp_path)
        fqns = [item.fqn for item in worklist.items]
        assert "repro.core.scoring:_hidden" not in fqns
        assert "repro.core.scoring:no_world" not in fqns
        # ColumnarNetwork.get_account reads self.world, but that world is
        # annotated ColumnarWorld — already ported, not worklist material.
        assert all("ColumnarNetwork" not in fqn for fqn in fqns)

    def test_every_item_carries_a_call_path_witness(self, tmp_path):
        worklist = self._report(tmp_path)
        assert worklist.items
        entry_fqn_tails = set()
        for item in worklist.items:
            assert item.witness, item.fqn
            assert item.witness[-1] == item.fqn
            entry_fqn_tails.add(item.witness[0])
        # rank is reached from run_attack: the witness must show the hop.
        rank = next(
            i for i in worklist.items if i.fqn == "repro.core.scoring:rank"
        )
        assert len(rank.witness) >= 2

    def test_ranking_prefers_widely_reached_functions(self, tmp_path):
        worklist = self._report(tmp_path)
        reach = [len(item.reached_from) for item in worklist.items]
        assert reach == sorted(reach, reverse=True)

    def test_text_rendering_is_navigable(self, tmp_path):
        worklist = self._report(tmp_path)
        text = render_report(worklist)
        assert "columnar-port worklist" in text
        assert "repro.core.scoring:rank" in text
        assert "via " in text

    def test_json_shape_round_trips(self, tmp_path):
        worklist = self._report(tmp_path)
        document = worklist.to_json()
        assert document["entries"]
        for row in document["items"]:
            assert {"function", "path", "line", "binds_world",
                    "world_sites", "reached_from", "witness"} <= set(row)


# ----------------------------------------------------------------------
# Summary IR: loop facts and allow-lines round-trip
# ----------------------------------------------------------------------

class TestSummaryLoopFacts:
    SOURCE = textwrap.dedent(
        """
        def sweep(world):
            total = 0
            for row in range(world.n_accounts):
                for friend in world.accounts:
                    total += 1
            while total:
                total -= 1
            return total
        """
    )

    def _summary(self) -> ModuleSummary:
        tree = ast.parse(self.SOURCE)
        return extract_summary(
            tree,
            "repro.fixture",
            "fixture.py",
            allow_lines={4: ("SCALE001", "SCALE002")},
        )

    def test_loop_headers_and_depths(self):
        fn = self._summary().functions["sweep"]
        headers = [(op.line, op.depth) for op in fn.ops if op.loop]
        # outer for at depth 0, inner for at depth 1, while at depth 0
        assert headers == [(4, 0), (5, 1), (7, 0)]
        body_depths = {
            op.line: op.depth for op in fn.ops if not op.loop
        }
        assert body_depths[6] == 2  # total += 1 under both loops
        assert body_depths[8] == 1  # total -= 1 under the while

    def test_round_trip_preserves_loop_and_allow_facts(self):
        summary = self._summary()
        restored = ModuleSummary.from_json(summary.to_json())
        assert restored.allow_lines == {4: ("SCALE001", "SCALE002")}
        original = [(o.loop, o.depth) for o in summary.functions["sweep"].ops]
        round_tripped = [
            (o.loop, o.depth) for o in restored.functions["sweep"].ops
        ]
        assert round_tripped == original
