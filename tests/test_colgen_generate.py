"""Native tiered generation: determinism, sharding, tiers, bench, CLI."""

from __future__ import annotations

import json

import pytest

from repro.colgen import (
    TIER_NAMES,
    TIERS,
    bench_worldgen,
    generate,
    tier,
    write_bench_json,
)
from repro.colgen.backend import HAS_NUMPY

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="native tiers need numpy")

#: 3 blocks x 4k = 12k accounts: full native machinery, test-sized.
_BLOCKS = 3


@pytest.fixture(scope="module")
def mini_city():
    if not HAS_NUMPY:
        pytest.skip("native tiers need numpy")
    return generate("city", seed=7, blocks=_BLOCKS)


class TestTierRegistry:
    def test_ladder_names(self):
        assert TIER_NAMES == ("smoke", "paper", "city", "metro")

    def test_city_targets_a_million(self):
        assert TIERS["city"].approx_accounts == 1_000_000

    def test_metro_is_generation_only(self):
        assert not TIERS["metro"].materialize_graph
        assert TIERS["metro"].approx_accounts == 10_000_000

    def test_unknown_tier_is_a_keyerror(self):
        with pytest.raises(KeyError, match="unknown tier"):
            tier("galaxy")


@needs_numpy
class TestNativeGeneration:
    def test_shape_and_identity_mapping(self, mini_city):
        spec = TIERS["city"]
        n = _BLOCKS * spec.block_size
        assert mini_city.n_accounts == mini_city.n_people == n
        assert mini_city.identity_mapping
        assert mini_city.user_for(5) == 5
        assert mini_city.person_for(5) == 5
        assert mini_city.user_for(n) is None

    def test_same_seed_same_world(self, mini_city):
        import numpy as np

        again = generate("city", seed=7, blocks=_BLOCKS)
        assert np.array_equal(again.accounts.privacy, mini_city.accounts.privacy)
        assert np.array_equal(
            again.people.birth_year_fraction, mini_city.people.birth_year_fraction
        )
        assert np.array_equal(again.csr.indptr, mini_city.csr.indptr)
        assert np.array_equal(again.csr.indices, mini_city.csr.indices)

    def test_different_seed_different_world(self, mini_city):
        import numpy as np

        other = generate("city", seed=8, blocks=_BLOCKS)
        assert not np.array_equal(other.csr.indices, mini_city.csr.indices)

    def test_csr_invariants_at_scale(self, mini_city):
        mini_city.csr.validate()
        assert mini_city.n_edges > 0

    def test_views_decode_native_rows(self, mini_city):
        from repro.colgen import person_view

        person = person_view(mini_city, 42)
        assert person.person_id == 42
        assert person.name.first and person.name.last
        settings = mini_city.privacy_settings(42)
        assert settings.default is not None

    def test_minors_get_minor_defaults(self, mini_city):
        from repro.osn.privacy import Audience, ProfileField

        checked = 0
        for uid in range(mini_city.n_accounts):
            if mini_city.is_registered_minor(uid):
                settings = mini_city.privacy_settings(uid)
                assert not settings.public_search
                assert (
                    settings.audience_for(ProfileField.FRIEND_LIST)
                    is not Audience.PUBLIC
                )
                checked += 1
                if checked >= 200:
                    break
        assert checked > 0

    def test_metro_never_materialises_adjacency(self):
        world = generate("metro", seed=1, blocks=2)
        assert world.csr is None
        with pytest.raises(RuntimeError, match="generation-only"):
            world.friends(0)


@needs_numpy
class TestBench:
    def test_bench_record_fields(self, tmp_path):
        record = bench_worldgen("city", seed=7, blocks=_BLOCKS)
        assert record["accounts"] == _BLOCKS * TIERS["city"].block_size
        assert record["graph_materialized"]
        assert record["accounts_per_second"] > 0
        assert record["peak_rss_bytes"] > 0
        assert record["backend"] == "numpy"

        out = tmp_path / "BENCH_worldgen.json"
        write_bench_json(record, str(out))
        assert json.loads(out.read_text())["tier"] == "city"

    def test_smoke_bench_runs_object_path(self):
        record = bench_worldgen("smoke", seed=11)
        assert record["accounts"] > 5_000
        assert "build_seconds" in record and "encode_seconds" in record


class TestCli:
    def test_worldgen_smoke_tier(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_worldgen.json"
        assert main(["worldgen", "--tier", "smoke", "--bench-out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "Columnar worldgen" in printed
        record = json.loads(out.read_text())
        assert record["tier"] == "smoke"
        assert record["accounts"] > 5_000

    @needs_numpy
    def test_worldgen_city_blocks_override(self, capsys):
        from repro.cli import main

        assert main(["worldgen", "--tier", "city", "--blocks", "2"]) == 0
        assert "8,000" in capsys.readouterr().out
