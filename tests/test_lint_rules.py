"""Every shipped lint rule: one violating and one clean fixture each."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def _lint(source: str, module: str = "repro.core.fake"):
    return lint_source(textwrap.dedent(source), module=module, path="fake.py")


def _rules(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# ORACLE001 — attacker-layer import boundary
# ----------------------------------------------------------------------

class TestOracle001:
    def test_fires_on_worldgen_import(self):
        findings = _lint("from repro.worldgen.world import World\n")
        assert "ORACLE001" in _rules(findings)

    def test_fires_on_plain_import_statement(self):
        findings = _lint("import repro.worldgen.world\n")
        assert "ORACLE001" in _rules(findings)

    def test_fires_on_osn_internal(self):
        findings = _lint("from repro.osn.network import SocialNetwork\n")
        assert "ORACLE001" in _rules(findings)

    def test_fires_on_from_repro_import_worldgen(self):
        findings = _lint("from repro import worldgen\n")
        assert "ORACLE001" in _rules(findings)

    def test_fires_on_relative_parent_import(self):
        findings = _lint("from ..worldgen import world\n")
        assert "ORACLE001" in _rules(findings)

    def test_clean_on_attacker_visible_surface(self):
        findings = _lint(
            """
            from repro.osn.frontend import HtmlFrontend
            from repro.osn.pages import parse_profile_page
            from repro.osn.public import DirectoryEntry, School
            from repro.osn.view import ProfileView
            from repro.osn.errors import NotFoundError
            from repro.osn.clock import SimClock
            """
        )
        assert findings == []

    def test_clean_under_type_checking(self):
        findings = _lint(
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.worldgen.world import World
            """
        )
        assert findings == []

    def test_clean_outside_attacker_layers(self):
        findings = _lint(
            "from repro.worldgen.world import World\n",
            module="repro.analysis.report",
        )
        assert findings == []

    def test_clean_in_evaluation_seam(self):
        findings = _lint(
            "from repro.worldgen.world import World\n",
            module="repro.core.evaluation",
        )
        assert findings == []


# ----------------------------------------------------------------------
# ORACLE002 — ground-truth attribute access
# ----------------------------------------------------------------------

class TestOracle002:
    def test_fires_on_ground_truth_read(self):
        findings = _lint(
            """
            def peek(world):
                return world.ground_truth().all_student_uids
            """
        )
        assert _rules(findings).count("ORACLE002") == 2

    def test_fires_on_frontend_network_reach_through(self):
        findings = _lint(
            """
            def cheat(frontend):
                return frontend.network
            """,
            module="repro.crawler.fake",
        )
        assert "ORACLE002" in _rules(findings)

    def test_clean_on_visible_attributes(self):
        findings = _lint(
            """
            def ok(view, frontend):
                return view.birthday_year, frontend.clock.now_year
            """
        )
        assert findings == []

    def test_clean_in_evaluation_seam(self):
        findings = _lint(
            """
            def score(world):
                return world.ground_truth()
            """,
            module="repro.core.oracle",
        )
        assert findings == []


# ----------------------------------------------------------------------
# DET001 — seeded randomness only
# ----------------------------------------------------------------------

class TestDet001:
    def test_fires_on_global_generator(self):
        findings = _lint(
            """
            import random

            def roll():
                return random.randint(1, 6)
            """,
            module="repro.worldgen.fake",
        )
        assert "DET001" in _rules(findings)

    def test_fires_on_direct_function_import(self):
        findings = _lint("from random import choice\n", module="repro.worldgen.fake")
        assert "DET001" in _rules(findings)

    def test_fires_on_unseeded_random_instance(self):
        findings = _lint(
            """
            import random

            def make():
                return random.Random()
            """,
            module="repro.worldgen.fake",
        )
        assert "DET001" in _rules(findings)

    def test_fires_on_unseeded_numpy_rng(self):
        findings = _lint(
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """,
            module="repro.worldgen.fake",
        )
        assert "DET001" in _rules(findings)

    def test_fires_on_legacy_numpy_global(self):
        findings = _lint(
            """
            import numpy as np

            def roll():
                return np.random.rand(3)
            """,
            module="repro.worldgen.fake",
        )
        assert "DET001" in _rules(findings)

    def test_clean_on_seeded_generators(self):
        findings = _lint(
            """
            import random

            import numpy as np


            def make(seed):
                rng = random.Random(seed)
                np_rng = np.random.default_rng(rng.getrandbits(64))
                return rng.choice([1, 2]), np_rng.integers(10)
            """,
            module="repro.worldgen.fake",
        )
        assert findings == []

    def test_fires_on_module_level_numpy_rng_even_seeded(self):
        findings = _lint(
            """
            import numpy as np

            RNG = np.random.default_rng(42)
            """,
            module="repro.colgen.fake",
        )
        assert "DET001" in _rules(findings)

    def test_fires_on_module_level_stdlib_rng(self):
        findings = _lint(
            """
            import random

            RNG: random.Random = random.Random(7)
            """,
            module="repro.colgen.fake",
        )
        assert "DET001" in _rules(findings)

    def test_fires_on_module_level_generator_over_bitgen(self):
        findings = _lint(
            """
            import numpy as np

            RNG = np.random.Generator(np.random.PCG64(3))
            """,
            module="repro.colgen.fake",
        )
        assert "DET001" in _rules(findings)

    def test_clean_on_module_level_seed_sequence(self):
        findings = _lint(
            """
            import numpy as np

            ROOT = np.random.SeedSequence(12345)
            """,
            module="repro.colgen.fake",
        )
        assert findings == []

    def test_clean_on_function_local_seeded_rng(self):
        findings = _lint(
            """
            import numpy as np


            def shard_rng(seed, shard):
                return np.random.default_rng(
                    np.random.SeedSequence([seed, shard])
                )
            """,
            module="repro.colgen.fake",
        )
        assert findings == []


# ----------------------------------------------------------------------
# CLOCK001 — sim-clock discipline
# ----------------------------------------------------------------------

class TestClock001:
    def test_fires_on_wall_clock_read(self):
        findings = _lint(
            """
            import time

            def now():
                return time.time()
            """,
            module="repro.osn.fake",
        )
        assert "CLOCK001" in _rules(findings)

    def test_fires_on_datetime_now(self):
        findings = _lint(
            """
            from datetime import datetime

            def today():
                return datetime.now().year
            """,
            module="repro.core.fake",
        )
        assert "CLOCK001" in _rules(findings)

    def test_fires_on_real_sleep(self):
        findings = _lint(
            """
            import time

            def wait():
                time.sleep(1.0)
            """,
            module="repro.crawler.fake",
        )
        assert "CLOCK001" in _rules(findings)

    def test_telemetry_is_exempt(self):
        findings = _lint(
            """
            import time

            def stamp():
                return time.time()
            """,
            module="repro.telemetry.fake",
        )
        assert findings == []

    def test_duration_timers_are_clean(self):
        findings = _lint(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            module="repro.osn.fake",
        )
        assert findings == []


# ----------------------------------------------------------------------
# MUT001 — mutable default arguments
# ----------------------------------------------------------------------

class TestMut001:
    def test_fires_on_list_literal_default(self):
        findings = _lint("def f(xs=[]):\n    return xs\n", module="repro.osn.fake")
        assert "MUT001" in _rules(findings)

    def test_fires_on_dict_constructor_default(self):
        findings = _lint(
            "def f(*, mapping=dict()):\n    return mapping\n",
            module="repro.osn.fake",
        )
        assert "MUT001" in _rules(findings)

    def test_fires_on_attribute_call_constructor_default(self):
        findings = _lint(
            """
            import collections

            def f(cache=collections.defaultdict(list)):
                return cache
            """,
            module="repro.osn.fake",
        )
        assert "MUT001" in _rules(findings)

    def test_fires_on_lambda_and_kwonly_defaults(self):
        findings = _lint(
            "g = lambda acc=set(): acc\n",
            module="repro.osn.fake",
        )
        assert "MUT001" in _rules(findings)

    def test_clean_on_none_default(self):
        findings = _lint(
            """
            def f(xs=None, label="x", count=0, pair=(1, 2)):
                return list(xs or [])
            """,
            module="repro.osn.fake",
        )
        assert findings == []
