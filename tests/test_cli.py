"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_thresholds, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.preset == "hs1"
        assert args.accounts == 2
        assert not args.enhanced

    def test_threshold_list_parsing(self):
        assert _parse_thresholds("100,200,300") == [100, 200, 300]

    def test_bad_threshold_list_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_thresholds("a,b")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_thresholds("")

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--preset", "hs9"])


class TestCommands:
    def test_worldinfo(self, capsys):
        assert main(["worldinfo", "--preset", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Smallville High School" in out
        assert "age liars" in out

    def test_worldinfo_without_coppa(self, capsys):
        assert main(["worldinfo", "--preset", "tiny", "--without-coppa"]) == 0
        out = capsys.readouterr().out
        assert "age liars (all accounts)  | 0" in out

    def test_attack(self, capsys):
        code = main(
            ["attack", "--preset", "tiny", "-t", "120", "--enhanced", "--filtering"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "students found" in out
        assert "false positives" in out

    def test_sweep(self, capsys):
        code = main(
            ["sweep", "--preset", "tiny", "--thresholds", "60,90,120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "% of students found for TINY" in out

    def test_tables_facebook(self, capsys):
        assert main(["tables", "--policy", "facebook"]) == 0
        assert "Public Search" in capsys.readouterr().out

    def test_tables_googleplus(self, capsys):
        assert main(["tables", "--policy", "googleplus"]) == 0
        assert "Have You in Circles" in capsys.readouterr().out

    def test_countermeasure(self, capsys):
        code = main(
            [
                "countermeasure",
                "--preset",
                "tiny",
                "-t",
                "120",
                "--thresholds",
                "60,120",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Without reverse lookup" in out

    def test_coppaless(self, capsys):
        code = main(["coppaless", "--preset", "tiny", "-t", "120"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Without-COPPA" in out


class TestExtendedCommands:
    def test_export_aggregate(self, capsys, tmp_path):
        out = str(tmp_path / "w.json")
        assert main(["export", "--preset", "tiny", "-o", out]) == 0
        import json

        doc = json.load(open(out))
        assert "summary" in doc and "users" not in doc

    def test_export_full(self, capsys, tmp_path):
        out = str(tmp_path / "w.json")
        assert main(["export", "--preset", "tiny", "--full", "-o", out]) == 0
        import json

        doc = json.load(open(out))
        assert doc["users"] and doc["edges"]

    def test_robustness(self, capsys):
        code = main(
            ["robustness", "--preset", "tiny", "-t", "120", "--seeds", "1,2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage" in out and "2 seeds" in out

    def test_defences(self, capsys):
        code = main(["defences", "--preset", "tiny", "-t", "120"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no_reverse_lookup" in out
        assert "age_verification" in out
