"""The async crawl engine: determinism, pool invariance, client parity.

The engine's promises: same seed + pool + plan reproduce the run
bit-for-bit (visit order, effort, simulated clock); the ``jobs`` knob
never changes results; pools of different sizes crawl the *same* result
set at the same per-category effort, only faster in simulated time; and
a single-account engine run observes exactly what the sequential
``CrawlClient`` observes.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.crawler.accounts import AccountPool
from repro.crawler.client import CrawlClient
from repro.crawler.engine import CrawlPlan, CrawlScheduler, TurnDispatcher
from repro.osn.clock import SimClock
from repro.worldgen.presets import tiny
from repro.worldgen.world import build_world

_SEED = 7
_BUDGET = 12


def engine_run(pool_size: int, jobs: int = 1, budget: int = _BUDGET):
    """A full scheduler run on a private tiny world."""
    world = build_world(tiny(seed=_SEED))
    uids = world.create_attacker_accounts(pool_size)
    client = CrawlClient(world.frontend, AccountPool.of(uids), seed=_SEED)
    plan = CrawlPlan(school_id=world.school().school_id, max_profiles=budget)
    return CrawlScheduler(client, plan, jobs=jobs).run()


def categories(result):
    report = result.effort
    return (
        report.seed_requests,
        report.profile_requests,
        report.friend_list_requests,
        report.other_requests,
    )


class TestTurnDispatcher:
    def test_wakes_sleepers_in_simulated_time_order(self):
        clock = SimClock(now_year=2012.25)
        turns = TurnDispatcher(clock)
        order = []

        async def sleeper(name, delay):
            await turns.sleep(delay)
            order.append((name, clock.seconds()))

        async def scenario():
            workers = [sleeper("late", 5.0), sleeper("early", 1.0), sleeper("mid", 3.0)]
            for _ in workers:
                turns.register()
            await asyncio.gather(*(guard(w) for w in workers))

        async def guard(worker):
            try:
                await worker
            finally:
                turns.finish()

        start = clock.seconds()
        asyncio.run(scenario())
        assert [name for name, _ in order] == ["early", "mid", "late"]
        # The shared clock advanced to each wake instant, not the sum.
        assert [t - start for _, t in order] == [1.0, 3.0, 5.0]

    def test_ties_break_by_registration_order(self):
        clock = SimClock(now_year=2012.25)
        turns = TurnDispatcher(clock, jobs=1)
        order = []

        async def sleeper(name):
            await turns.sleep(2.0)
            order.append(name)

        async def guard(worker):
            try:
                await worker
            finally:
                turns.finish()

        async def scenario():
            workers = [sleeper("a"), sleeper("b"), sleeper("c")]
            for _ in workers:
                turns.register()
            await asyncio.gather(*(guard(w) for w in workers))

        asyncio.run(scenario())
        assert order == ["a", "b", "c"]


class TestDeterminism:
    def test_identical_reruns(self):
        first = engine_run(3)
        second = engine_run(3)
        assert first.visit_order == second.visit_order
        assert first.result_signature() == second.result_signature()
        assert first.effort == second.effort
        assert first.sim_seconds == second.sim_seconds
        assert first.pages_by_account == second.pages_by_account

    def test_jobs_knob_cannot_change_results(self):
        serial = engine_run(4, jobs=1)
        batched = engine_run(4, jobs=4)
        assert serial.visit_order == batched.visit_order
        assert serial.result_signature() == batched.result_signature()
        assert serial.sim_seconds == batched.sim_seconds
        assert serial.effort == batched.effort


class TestPoolInvariance:
    def test_same_results_faster_clock(self):
        solo = engine_run(1)
        pooled = engine_run(3)
        assert pooled.result_signature() == solo.result_signature()
        assert categories(pooled) == categories(solo)
        assert pooled.pages == solo.pages
        # Concurrency overlaps the politeness waits: strictly faster.
        assert pooled.sim_seconds < solo.sim_seconds
        # Every account actually participated in the drain phase.
        assert len(pooled.pages_by_account) == 3

    def test_budget_bounds_the_result_set(self):
        tight = engine_run(2, budget=5)
        assert len(tight.profiles) == 5
        assert len(tight.friend_lists) == 5
        assert sorted(tight.profiles) == sorted(tight.seeds)[:5]


class TestClientParity:
    def test_single_account_engine_matches_sequential_client(self):
        result = engine_run(1, budget=_BUDGET)

        world = build_world(tiny(seed=_SEED))
        uids = world.create_attacker_accounts(1)
        client = CrawlClient(world.frontend, AccountPool.of(uids), seed=_SEED)
        school_id = world.school().school_id
        seeds = client.collect_seeds(school_id)
        targets = sorted(seeds)[:_BUDGET]
        profiles = {uid: client.fetch_profile(uid) for uid in targets}
        friend_lists = {uid: client.fetch_friend_list(uid) for uid in targets}

        assert result.seeds == seeds
        assert result.profiles == profiles
        assert result.friend_lists == friend_lists
        assert categories(result) == (
            client.effort_report().seed_requests,
            client.effort_report().profile_requests,
            client.effort_report().friend_list_requests,
            client.effort_report().other_requests,
        )


class TestPlanValidation:
    def test_harvest_account_pinning(self):
        # More harvest accounts may surface more seeds, but the pinned
        # default keeps the seed set identical across pool sizes.
        solo = engine_run(1)
        pooled = engine_run(4)
        assert solo.seeds == pooled.seeds

    def test_fetch_friend_lists_toggle(self):
        world = build_world(tiny(seed=_SEED))
        uids = world.create_attacker_accounts(2)
        client = CrawlClient(world.frontend, AccountPool.of(uids), seed=_SEED)
        plan = CrawlPlan(
            school_id=world.school().school_id,
            max_profiles=4,
            fetch_friend_lists=False,
        )
        result = CrawlScheduler(client, plan).run()
        assert len(result.profiles) == 4
        assert result.friend_lists == {}
        assert result.effort.friend_list_requests == 0
