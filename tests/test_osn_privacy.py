"""Unit tests for audiences, relationships and privacy settings."""

import pytest

from repro.osn.privacy import (
    EXTENDED_FIELDS,
    MINIMAL_FIELDS,
    Audience,
    PrivacySettings,
    ProfileField,
    Relationship,
    most_private,
)


class TestRelationshipSatisfies:
    def test_self_sees_everything(self):
        for audience in Audience:
            assert Relationship.SELF.satisfies(audience)

    def test_everyone_sees_public(self):
        for rel in Relationship:
            assert rel.satisfies(Audience.PUBLIC)

    def test_stranger_blocked_from_friends_only(self):
        assert not Relationship.STRANGER.satisfies(Audience.FRIENDS)

    def test_stranger_blocked_from_fof(self):
        assert not Relationship.STRANGER.satisfies(Audience.FRIENDS_OF_FRIENDS)

    def test_network_member_blocked_from_fof(self):
        assert not Relationship.NETWORK_MEMBER.satisfies(Audience.FRIENDS_OF_FRIENDS)

    def test_fof_sees_fof_content(self):
        assert Relationship.FRIEND_OF_FRIEND.satisfies(Audience.FRIENDS_OF_FRIENDS)

    def test_fof_blocked_from_friends_only(self):
        assert not Relationship.FRIEND_OF_FRIEND.satisfies(Audience.FRIENDS)

    def test_friend_sees_friends_content(self):
        assert Relationship.FRIEND.satisfies(Audience.FRIENDS)

    def test_nobody_but_self_sees_only_me(self):
        for rel in (
            Relationship.STRANGER,
            Relationship.NETWORK_MEMBER,
            Relationship.FRIEND_OF_FRIEND,
            Relationship.FRIEND,
        ):
            assert not rel.satisfies(Audience.ONLY_ME)


class TestPrivacySettings:
    def test_default_audience_used_for_unset_fields(self):
        settings = PrivacySettings(default=Audience.FRIENDS)
        assert settings.audience_for(ProfileField.PHOTOS) is Audience.FRIENDS

    def test_with_field_overrides_one(self):
        settings = PrivacySettings().with_field(ProfileField.BIRTHDAY, Audience.PUBLIC)
        assert settings.audience_for(ProfileField.BIRTHDAY) is Audience.PUBLIC

    def test_with_field_does_not_mutate_original(self):
        original = PrivacySettings()
        original.with_field(ProfileField.BIRTHDAY, Audience.PUBLIC)
        assert original.audience_for(ProfileField.BIRTHDAY) is original.default

    def test_with_fields_bulk(self):
        settings = PrivacySettings().with_fields(
            {
                ProfileField.PHOTOS: Audience.ONLY_ME,
                ProfileField.WALL: Audience.PUBLIC,
            }
        )
        assert settings.audience_for(ProfileField.PHOTOS) is Audience.ONLY_ME
        assert settings.audience_for(ProfileField.WALL) is Audience.PUBLIC

    def test_everything_public_is_public_everywhere(self):
        settings = PrivacySettings.everything_public()
        for field in ProfileField:
            assert settings.audience_for(field) is Audience.PUBLIC
        assert settings.public_search
        assert settings.message_audience is Audience.PUBLIC

    def test_everything_private_is_only_me_everywhere(self):
        settings = PrivacySettings.everything_private()
        for field in ProfileField:
            assert settings.audience_for(field) is Audience.ONLY_ME
        assert not settings.public_search

    def test_adult_default_friend_list_public(self):
        settings = PrivacySettings.facebook_adult_default_2012()
        assert settings.audience_for(ProfileField.FRIEND_LIST) is Audience.PUBLIC

    def test_adult_default_contact_private(self):
        settings = PrivacySettings.facebook_adult_default_2012()
        assert settings.audience_for(ProfileField.CONTACT_INFO) is Audience.FRIENDS

    def test_minor_default_not_publicly_searchable(self):
        assert not PrivacySettings.facebook_minor_default_2012().public_search

    def test_minor_default_minimal_fields_public(self):
        settings = PrivacySettings.facebook_minor_default_2012()
        for field in MINIMAL_FIELDS:
            assert settings.audience_for(field) is Audience.PUBLIC


class TestFieldSets:
    def test_minimal_fields_are_the_papers_four(self):
        assert MINIMAL_FIELDS == {
            ProfileField.NAME,
            ProfileField.GENDER,
            ProfileField.NETWORKS,
            ProfileField.PROFILE_PHOTO,
        }

    def test_extended_fields_disjoint_from_minimal(self):
        assert not (set(EXTENDED_FIELDS) & MINIMAL_FIELDS)

    def test_every_field_is_minimal_or_extended(self):
        assert set(EXTENDED_FIELDS) | MINIMAL_FIELDS == set(ProfileField)


class TestMostPrivate:
    def test_picks_strictest(self):
        assert (
            most_private([Audience.PUBLIC, Audience.FRIENDS, Audience.ONLY_ME])
            is Audience.ONLY_ME
        )

    def test_empty_defaults_public(self):
        assert most_private([]) is Audience.PUBLIC
