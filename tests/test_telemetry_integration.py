"""End-to-end telemetry: a full instrumented HS1 attack, CLI included.

The acceptance bar from the telemetry subsystem: the event stream and
the metrics registry must agree *exactly* with the pipeline's own
effort accounting (:class:`~repro.crawler.effort.EffortReport`), both
live and after a JSONL round-trip through ``python -m repro trace``.
"""

import pytest

from repro.cli import main
from repro.crawler.effort import (
    CATEGORY_FRIEND_LISTS,
    CATEGORY_PROFILES,
    CATEGORY_SEEDS,
)
from repro.core.api import run_attack
from repro.core.profiler import ProfilerConfig
from repro.telemetry import (
    CrawlSessionReport,
    JsonlSink,
    MemorySink,
    Telemetry,
    replay_report,
)
from repro.worldgen.presets import smoke
from repro.worldgen.world import build_world


@pytest.fixture(scope="module")
def instrumented_world(tmp_path_factory):
    """One instrumented enhanced+filtered attack on the smoke-tier world.

    These assertions are scale-independent (event/effort agreement), so
    the mid-sized smoke preset replaces the paper-scale HS1 build the
    fixture used to pay for.
    """
    world = build_world(smoke())
    path = tmp_path_factory.mktemp("telemetry") / "smoke.jsonl"
    telemetry = Telemetry(
        world.network.clock, sinks=[MemorySink(), JsonlSink(str(path))]
    )
    result = run_attack(
        world,
        accounts=2,
        config=ProfilerConfig(threshold=500, enhanced=True, filtering=True),
        telemetry=telemetry,
    )
    telemetry.close()
    return world, telemetry, result, str(path)


class TestEffortAgreement:
    def test_request_events_match_effort_total(self, instrumented_world):
        _, telemetry, result, _ = instrumented_world
        requests = [e for e in telemetry.events if e.kind == "request"]
        assert len(requests) == result.effort.total

    def test_registry_counter_matches_effort_total(self, instrumented_world):
        _, telemetry, result, _ = instrumented_world
        family = telemetry.registry.get("crawl_requests_total")
        assert family is not None
        assert family.total() == result.effort.total

    def test_per_category_counts_match(self, instrumented_world):
        _, telemetry, result, _ = instrumented_world
        report = CrawlSessionReport.from_events(telemetry.events)
        assert report.category_count(CATEGORY_SEEDS) == result.effort.seed_requests
        assert report.category_count(CATEGORY_PROFILES) == result.effort.profile_requests
        assert (
            report.category_count(CATEGORY_FRIEND_LISTS)
            == result.effort.friend_list_requests
        )

    def test_accounts_used_match(self, instrumented_world):
        _, telemetry, result, _ = instrumented_world
        report = CrawlSessionReport.from_events(telemetry.events)
        assert report.accounts_used == result.effort.accounts_used

    def test_frontend_attempts_cover_every_effort_request(self, instrumented_world):
        world, telemetry, result, _ = instrumented_world
        http = [e for e in telemetry.events if e.kind == "http"]
        # request_count omits attempts rejected by auth or the limiter
        assert len(http) >= world.frontend.request_count
        ok = [e for e in http if e.fields["outcome"] == "ok"]
        assert len(ok) == result.effort.total


class TestPhases:
    def test_every_methodology_step_has_a_span(self, instrumented_world):
        _, telemetry, _, _ = instrumented_world
        span_names = {e.fields["name"] for e in telemetry.events if e.kind == "span"}
        assert {"setup", "seeds", "core", "scoring", "candidates", "threshold"} <= span_names

    def test_phase_request_totals_sum_to_effort(self, instrumented_world):
        _, telemetry, result, _ = instrumented_world
        report = CrawlSessionReport.from_events(telemetry.events)
        assert sum(p.pages for p in report.phases.values()) == result.effort.total

    def test_sim_time_attributed_to_phases(self, instrumented_world):
        _, telemetry, _, _ = instrumented_world
        report = CrawlSessionReport.from_events(telemetry.events)
        crawl_phases = ("seeds", "core")
        assert all(report.phases[p].sim_seconds > 0 for p in crawl_phases)


class TestJsonlReplay:
    def test_replay_equals_live_report(self, instrumented_world):
        _, telemetry, _, path = instrumented_world
        live = CrawlSessionReport.from_events(telemetry.events)
        replayed = replay_report(path)
        assert replayed == live

    def test_trace_cli_prints_matching_total(self, instrumented_world, capsys):
        _, _, result, path = instrumented_world
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert f"total requests (effort): {result.effort.total}" in out


class TestCliAttackTelemetry:
    def test_attack_writes_trace_and_trace_replays_it(self, tmp_path, capsys):
        trace_path = tmp_path / "tiny.jsonl"
        prom_path = tmp_path / "tiny.prom"
        code = main(
            [
                "attack",
                "--preset",
                "tiny",
                "-t",
                "120",
                "--telemetry",
                str(trace_path),
                "--prometheus",
                str(prom_path),
            ]
        )
        assert code == 0
        attack_out = capsys.readouterr().out
        assert "telemetry:" in attack_out
        gets = int(
            next(
                line for line in attack_out.splitlines() if "HTTP GETs" in line
            ).split("|")[1]
        )

        assert main(["trace", str(trace_path)]) == 0
        trace_out = capsys.readouterr().out
        assert f"total requests (effort): {gets}" in trace_out
        assert "crawl_requests_total" in prom_path.read_text()


class TestOffByDefault:
    def test_uninstrumented_attack_allocates_no_telemetry(self, tiny_world):
        from repro.core.api import make_client

        client = make_client(tiny_world, accounts=2)
        assert client.telemetry is None
        assert client.pacer_for(client.pool.account_ids[0]).telemetry is None
        assert tiny_world.frontend.telemetry is None
