"""The hot-page render cache: LRU mechanics and frontend correctness.

The contract under test (see ``HtmlFrontend._cache_key``): cached pages
are byte-identical to uncached renders; keys end with the network's
``version`` so any page-visible mutation retires every entry at once;
viewer identity collapses to the visibility *class* where the render
depends only on it; friend lists under the reverse-lookup
countermeasure and all POSTs bypass the cache entirely.
"""

from __future__ import annotations

import pytest

from repro.osn.frontend import HtmlFrontend
from repro.osn.privacy import PrivacySettings
from repro.osn.profile import Birthday, Name, Profile
from repro.osn.rendercache import RenderCache


@pytest.fixture()
def cached_frontend(school_network):
    net, school, accounts = school_network
    cache = RenderCache()
    return HtmlFrontend(net, cache=cache), cache, school, accounts


class TestLru:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RenderCache(0)
        with pytest.raises(ValueError):
            RenderCache(-3)

    def test_miss_then_hit(self):
        cache = RenderCache(capacity=4)
        assert cache.get(("profile", 1, "x", 0)) is None
        cache.put(("profile", 1, "x", 0), "<html/>")
        assert cache.get(("profile", 1, "x", 0)) == "<html/>"
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_eviction_drops_least_recent(self):
        cache = RenderCache(capacity=2)
        cache.put(("a",), "A")
        cache.put(("b",), "B")
        cache.get(("a",))  # refresh A; B is now least recent
        cache.put(("c",), "C")
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "A"
        assert cache.get(("c",)) == "C"
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_stats_shape(self):
        cache = RenderCache(capacity=8)
        cache.put(("k",), "V")
        cache.get(("k",))
        stats = cache.stats()
        assert stats["entries"] == 1.0
        assert stats["capacity"] == 8.0
        assert stats["hits"] == 1.0
        assert stats["hit_rate"] == 1.0


class TestFrontendCaching:
    def test_repeat_get_is_served_from_cache(self, cached_frontend):
        fe, cache, _, accounts = cached_frontend
        viewer = accounts["crawler"].user_id
        target = accounts["alumnus"].user_id
        first = fe.get(viewer, f"/profile/{target}")
        second = fe.get(viewer, f"/profile/{target}")
        assert first == second
        assert cache.hits == 1 and cache.misses == 1

    def test_cached_pages_byte_identical_across_viewer_classes(
        self, school_network
    ):
        net, school, accounts = school_network
        target = accounts["lying_minor"].user_id
        # stranger, friend, self: three distinct visibility classes.
        viewers = [
            accounts["crawler"].user_id,
            accounts["minor"].user_id,
            target,
        ]
        uncached = HtmlFrontend(net)
        plain = {v: uncached.get(v, f"/profile/{target}") for v in viewers}

        cache = RenderCache()
        cached = HtmlFrontend(net, cache=cache)
        for viewer in viewers:
            assert cached.get(viewer, f"/profile/{target}") == plain[viewer]
            assert cached.get(viewer, f"/profile/{target}") == plain[viewer]
        # One entry per visibility class, each replayed exactly once.
        assert len(cache) == 3
        assert cache.hits == 3 and cache.misses == 3
        # The classes render differently, so sharing would be a bug.
        assert len(set(plain.values())) == 3

    def test_same_class_viewers_share_an_entry(self, school_network):
        net, school, accounts = school_network
        # A second true stranger (crawler is the first): registration
        # happens before the first request so the version is stable.
        stranger_b = net.register_account(
            profile=Profile(name=Name("Second", "Stranger")),
            registered_birthday=Birthday(1984),
            settings=PrivacySettings.everything_private(),
            is_fake=True,
        ).user_id
        cache = RenderCache()
        fe = HtmlFrontend(net, cache=cache)
        stranger_a = accounts["crawler"].user_id
        target = accounts["minor"].user_id
        page_a = fe.get(stranger_a, f"/profile/{target}")
        page_b = fe.get(stranger_b, f"/profile/{target}")
        assert page_a == page_b
        assert cache.misses == 1 and cache.hits == 1

    def test_mutation_invalidates_via_version(self, cached_frontend):
        fe, cache, school, accounts = cached_frontend
        viewer = accounts["crawler"].user_id
        target = accounts["minor"].user_id
        before = fe.network.version
        fe.get(viewer, f"/profile/{target}")
        # A page-visible write bumps the version: the old entry is dead.
        fe.network.add_friendship(
            accounts["minor"].user_id, accounts["alumnus"].user_id
        )
        assert fe.network.version > before
        fe.get(viewer, f"/profile/{target}")
        assert cache.hits == 0 and cache.misses == 2

    def test_explicit_bump_version_invalidates(self, cached_frontend):
        fe, cache, school, accounts = cached_frontend
        viewer = accounts["crawler"].user_id
        fe.get(viewer, f"/school/{school.school_id}")
        fe.network.bump_version()
        fe.get(viewer, f"/school/{school.school_id}")
        assert cache.hits == 0 and cache.misses == 2

    def test_friends_route_bypassed_under_countermeasure(
        self, cached_frontend
    ):
        fe, cache, school, accounts = cached_frontend
        fe.network.reverse_lookup_enabled = False
        viewer = accounts["minor"].user_id
        target = accounts["lying_minor"].user_id
        first = fe.get(viewer, f"/profile/{target}/friends")
        second = fe.get(viewer, f"/profile/{target}/friends")
        assert first == second
        # Never consulted, never filled: visibility there is decided
        # per (member, viewer) pair, which no class-level key captures.
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_posts_never_cached_and_never_bump_version(self, cached_frontend):
        fe, cache, school, accounts = cached_frontend
        sender = accounts["minor"].user_id
        recipient = accounts["lying_minor"].user_id
        before = fe.network.version
        fe.post(sender, "/messages/send", {"to": str(recipient), "text": "hi"})
        fe.post(sender, "/friend-request", {"to": str(recipient)})
        # Messages and friend requests are not page-visible: no bump,
        # and nothing entered the cache.
        assert fe.network.version == before
        assert len(cache) == 0

    def test_search_pages_cached_per_account(self, cached_frontend):
        fe, cache, school, accounts = cached_frontend
        a = accounts["crawler"].user_id
        b = accounts["alumnus"].user_id
        params = {"school": str(school.school_id)}
        fe.get(a, "/find-friends/browser", params)
        fe.get(b, "/find-friends/browser", params)
        # The portal samples a per-account pool, so the key includes the
        # account: two accounts, two entries, no false sharing.
        assert cache.misses == 2 and cache.hits == 0
        fe.get(a, "/find-friends/browser", params)
        assert cache.hits == 1
