"""Tests for the Facebook/Google+ minor-policy engines (Tables 1 and 6)."""

import pytest

from repro.osn.clock import SimClock
from repro.osn.errors import PolicyError
from repro.osn.policy import facebook_policy, googleplus_policy, policy_by_name
from repro.osn.privacy import (
    MINIMAL_FIELDS,
    Audience,
    PrivacySettings,
    ProfileField,
    Relationship,
)
from repro.osn.profile import Birthday, Name, Profile
from repro.osn.user import Account

NOW = 2012.25


def _account(registered_year: int, settings: PrivacySettings) -> Account:
    return Account(
        user_id=1,
        profile=Profile(name=Name("Test", "User")),
        registered_birthday=Birthday(registered_year),
        real_birthday=Birthday(registered_year),
        settings=settings,
    )


def minor(settings=None) -> Account:
    return _account(1997, settings or PrivacySettings.everything_public())


def adult(settings=None) -> Account:
    return _account(1985, settings or PrivacySettings.everything_public())


class TestRegistration:
    def test_thirteen_allowed(self):
        assert facebook_policy().registration_allowed(13.0)

    def test_under_thirteen_banned(self):
        assert not facebook_policy().registration_allowed(12.9)

    def test_adult_allowed(self):
        assert facebook_policy().registration_allowed(35.0)


class TestMinorClassification:
    def test_seventeen_is_registered_minor(self):
        assert facebook_policy().is_registered_minor(minor(), NOW)

    def test_adult_is_not(self):
        assert not facebook_policy().is_registered_minor(adult(), NOW)

    def test_boundary_exactly_18(self):
        policy = facebook_policy()
        account = _account(1994, PrivacySettings())
        # born mid-1994 -> turns 18 around 2012.5, so still a minor in March
        assert policy.is_registered_minor(account, 2012.25)
        assert not policy.is_registered_minor(account, 2012.75)


class TestFacebookMinorCaps:
    """A stranger must never see more than minimal info on a minor."""

    @pytest.mark.parametrize(
        "field",
        [f for f in ProfileField if f not in MINIMAL_FIELDS],
    )
    def test_extended_fields_capped_for_strangers(self, field):
        policy = facebook_policy()
        assert not policy.field_visible_to(minor(), field, Relationship.STRANGER, NOW)

    @pytest.mark.parametrize("field", sorted(MINIMAL_FIELDS, key=lambda f: f.value))
    def test_minimal_fields_follow_settings(self, field):
        policy = facebook_policy()
        assert policy.field_visible_to(minor(), field, Relationship.STRANGER, NOW)

    def test_fof_can_see_minor_extended_fields(self):
        policy = facebook_policy()
        assert policy.field_visible_to(
            minor(), ProfileField.PHOTOS, Relationship.FRIEND_OF_FRIEND, NOW
        )

    def test_adult_extended_fields_follow_settings(self):
        policy = facebook_policy()
        assert policy.field_visible_to(
            adult(), ProfileField.FRIEND_LIST, Relationship.STRANGER, NOW
        )

    def test_minor_own_privacy_still_respected(self):
        """The cap is a ceiling, not a floor."""
        policy = facebook_policy()
        locked = minor(PrivacySettings.everything_private())
        assert not policy.field_visible_to(
            locked, ProfileField.GENDER, Relationship.STRANGER, NOW
        )


class TestMessageButton:
    def test_stranger_never_messages_minor(self):
        policy = facebook_policy()
        assert not policy.message_button_visible(minor(), Relationship.STRANGER, NOW)

    def test_stranger_messages_adult_with_public_setting(self):
        policy = facebook_policy()
        assert policy.message_button_visible(adult(), Relationship.STRANGER, NOW)

    def test_friend_can_message_minor(self):
        policy = facebook_policy()
        assert policy.message_button_visible(minor(), Relationship.FRIEND, NOW)

    def test_self_has_no_message_button(self):
        policy = facebook_policy()
        assert not policy.message_button_visible(adult(), Relationship.SELF, NOW)

    def test_network_member_cannot_message_minor(self):
        policy = facebook_policy()
        assert not policy.message_button_visible(
            minor(), Relationship.NETWORK_MEMBER, NOW
        )


class TestSearchEligibility:
    def test_minors_never_in_school_search(self):
        assert not facebook_policy().school_search_eligible(minor(), NOW)

    def test_adults_in_school_search(self):
        assert facebook_policy().school_search_eligible(adult(), NOW)

    def test_adult_with_search_disabled_not_listed(self):
        account = adult(
            PrivacySettings(
                audiences={}, default=Audience.PUBLIC, public_search=False
            )
        )
        assert not facebook_policy().school_search_eligible(account, NOW)

    def test_disabled_account_not_searchable(self):
        account = adult()
        account.disabled = True
        assert not facebook_policy().school_search_eligible(account, NOW)

    def test_minor_never_in_public_search_even_opted_in(self):
        assert not facebook_policy().public_search_eligible(minor(), NOW)

    def test_googleplus_minor_can_be_in_public_search(self):
        assert googleplus_policy().public_search_eligible(minor(), NOW)

    def test_googleplus_minor_still_hidden_from_school_search(self):
        assert not googleplus_policy().school_search_eligible(minor(), NOW)


class TestGooglePlusCaps:
    def test_minor_may_expose_school_publicly(self):
        policy = googleplus_policy()
        assert policy.field_visible_to(
            minor(), ProfileField.HIGH_SCHOOL, Relationship.STRANGER, NOW
        )

    def test_minor_may_expose_phone_publicly(self):
        policy = googleplus_policy()
        assert policy.field_visible_to(
            minor(), ProfileField.CONTACT_INFO, Relationship.STRANGER, NOW
        )

    def test_minor_defaults_are_protective(self):
        policy = googleplus_policy()
        account = minor(policy.default_minor_settings)
        assert not policy.field_visible_to(
            account, ProfileField.HIGH_SCHOOL, Relationship.STRANGER, NOW
        )


class TestLookupAndValidation:
    def test_policy_by_name(self):
        assert policy_by_name("facebook").name == "facebook"
        assert policy_by_name("googleplus").name == "googleplus"

    def test_unknown_policy_raises(self):
        with pytest.raises(PolicyError):
            policy_by_name("myspace")

    def test_builtin_policies_validate(self):
        facebook_policy().validate()
        googleplus_policy().validate()
