"""Ablation: the paper's max-fraction score vs sum-of-fractions vs raw count.

The paper's x(u) = max_i |G_i(u)|/|C_i| both ranks candidates and
assigns class years.  We compare it against two plausible alternatives
on identical crawled data.  Expected shape: max-fraction and
sum-fraction rank similarly; raw count (unnormalised) misassigns years
when the per-year core sizes are imbalanced.
"""

from repro.analysis.tables import ascii_table
from repro.core.evaluation import evaluate_full
from repro.core.profiler import AttackResult
from repro.core.scoring import ScoringRule, score_candidates

from _bench_utils import emit


def rescore(result: AttackResult, rule: ScoringRule) -> AttackResult:
    """A copy of the attack result ranked under a different rule."""
    scores = score_candidates(result.core, rule)
    ranking = [
        uid
        for uid in scores.ranked(exclude=set(result.core.claimed))
        if uid not in result.filtered_out
    ]
    return AttackResult(
        school=result.school,
        config=result.config,
        current_year=result.current_year,
        seeds=result.seeds,
        core=result.core,
        initial_core_size=result.initial_core_size,
        initial_claimed_size=result.initial_claimed_size,
        candidates=result.candidates,
        scores=scores,
        ranking=ranking,
        filtered_out=result.filtered_out,
        profiles=result.profiles,
        threshold=result.threshold,
        effort=result.effort,
    )


def test_ablation_scoring_rules(benchmark, hs1_world, hs1_enhanced):
    truth = hs1_world.ground_truth()

    def run_all():
        return {
            rule: evaluate_full(rescore(hs1_enhanced, rule), truth, 400)
            for rule in ScoringRule
        }

    evals = benchmark(run_all)

    rows = [
        (
            rule.value,
            e.found,
            e.false_positives,
            f"{100 * e.year_accuracy:.0f}%",
        )
        for rule, e in evals.items()
    ]
    emit(
        "ablation_scoring",
        ascii_table(
            ("scoring rule", "students found (t=400)", "false positives", "year accuracy"),
            rows,
            title="Ablation: scoring rule (paper uses max_fraction)",
        ),
    )

    max_frac = evals[ScoringRule.MAX_FRACTION]
    raw = evals[ScoringRule.RAW_COUNT]
    # The paper's rule matches or beats raw counting on coverage, and
    # every rule recovers a majority of the school.
    assert max_frac.found >= raw.found - 10
    for e in evals.values():
        assert e.found_fraction > 0.5
