"""Section 2's data-broker threat, quantified (beyond the paper's prose).

The paper argues that high-school profiles plus purchasable voter
records let brokers pin students to street addresses, with parents on
friend lists giving high certainty.  This bench runs that linkage and
asserts the mechanism: high-confidence (parent-matched) links are far
more precise than surname-only guessing.
"""

from repro.analysis.tables import ascii_table
from repro.core.api import make_client
from repro.core.extension import build_extended_profiles
from repro.core.linkage import Confidence, evaluate_linkage, link_home_addresses
from repro.worldgen.records import build_voter_registry

from _bench_utils import emit


def test_linkage_broker(benchmark, hs1_world, hs1_enhanced):
    client = make_client(hs1_world, 2)
    extended = build_extended_profiles(hs1_enhanced, client, t=400)
    registry = build_voter_registry(
        hs1_world.population, hs1_world.config.observation_year,
        seed=hs1_world.config.seed,
    )

    name_cache = {}

    def friend_name_of(uid):
        if uid not in name_cache:
            view = hs1_enhanced.profiles.get(uid) or client.fetch_profile(uid)
            name_cache[uid] = view.name if view else None
        return name_cache[uid]

    linked = benchmark.pedantic(
        lambda: link_home_addresses(extended, registry, friend_name_of),
        rounds=1,
        iterations=1,
    )
    evaluation = evaluate_linkage(linked, hs1_world)

    assert evaluation.linked > 30
    assert evaluation.high_confidence > 5
    # Parent-on-friend-list links are near-certain (the paper's claim).
    assert evaluation.high_confidence_precision > 0.8
    # And clearly better than the overall best-candidate rate.
    assert evaluation.high_confidence_precision > evaluation.precision_of_best

    high = sum(
        1 for cands in linked.values() if cands[0].confidence is Confidence.HIGH
    )
    emit(
        "linkage_broker",
        ascii_table(
            ("metric", "value"),
            [
                ("registered voters on file", len(registry)),
                ("students linked to >=1 address", evaluation.linked),
                ("high-confidence (parent) links", high),
                (
                    "high-confidence precision",
                    f"{100 * evaluation.high_confidence_precision:.0f}%",
                ),
                (
                    "best-candidate precision overall",
                    f"{100 * evaluation.precision_of_best:.0f}%",
                ),
            ],
            title="Section 2: data-broker address linkage via voter records",
        ),
    )
