"""Section 5.6's summary: coverage and FP rates for all three schools.

The paper reports 83% / 85% / 79% of students found with 32% / 22% /
29% false positives.  We assert the same regime: >=65% coverage with
<=55% false positives at t near each school's size.
"""

from repro.analysis.tables import ascii_table
from repro.core.evaluation import evaluate_full

from _bench_utils import emit


def test_summary_three_schools(
    benchmark,
    hs1_world, hs2_world, hs3_world,
    hs1_enhanced, hs2_enhanced, hs3_enhanced,
):
    plans = (
        ("HS1", hs1_world, hs1_enhanced, 400),
        ("HS2", hs2_world, hs2_enhanced, 1500),
        ("HS3", hs3_world, hs3_enhanced, 1500),
    )

    def evaluate_all():
        return [
            (label, evaluate_full(result, world.ground_truth(), t))
            for label, world, result, t in plans
        ]

    evaluations = benchmark(evaluate_all)

    rows = []
    for label, e in evaluations:
        rows.append(
            (
                label,
                e.threshold,
                f"{100 * e.found_fraction:.0f}%",
                f"{100 * e.false_positive_rate:.0f}%",
                f"{100 * e.year_accuracy:.0f}%",
            )
        )
        assert e.found_fraction >= 0.65, label   # paper: 79-85%
        assert e.false_positive_rate <= 0.55, label  # paper: 22-32%
        assert e.year_accuracy >= 0.8, label     # paper: ~92%

    emit(
        "summary_three_schools",
        ascii_table(
            ("School", "t", "students found", "false positives", "year accuracy"),
            rows,
            title="Section 5.6 summary (paper: 83%/85%/79% found at 32%/22%/29% FPs)",
        ),
    )
