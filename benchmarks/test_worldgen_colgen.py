"""Columnar worldgen throughput and footprint across the tier ladder.

Benches the ``smoke`` tier (object generator + lossless encode) and a
sub-sampled ``city`` run (native sharded generation + streaming CSR
build), emitting one text exhibit plus machine-readable
``BENCH_worldgen.json`` — the artifact the CI city-tier job asserts
its memory ceiling against.
"""

from __future__ import annotations

from repro.colgen import bench_worldgen
from repro.perf.benches import RSS_TOLERANCE_PCT, THROUGHPUT_TOLERANCE_PCT
from repro.perf.record import metric, new_record

from _bench_utils import emit, emit_json

#: 25 blocks × 4k = 100k accounts: the full native machinery (sharded
#: draws, two-pass CSR, composite sort) at a benchmark-friendly size.
_CITY_BLOCKS = 25

#: Floor for the native path; the full 1M city run clears this by ~10x.
_MIN_NATIVE_ACCOUNTS_PER_SECOND = 10_000


def _fmt(record):
    return [
        f"  accounts:            {record['accounts']:,}",
        f"  edges:               {record['edges']:,}",
        f"  accounts/second:     {record['accounts_per_second']:,.0f}",
        f"  wall seconds:        {record['wall_seconds']:.2f}",
        f"  graph build seconds: {record['graph_build_seconds']:.2f}",
        f"  column MiB:          {record['column_nbytes'] / 2**20:.1f}",
        f"  graph MiB:           {record['graph_nbytes'] / 2**20:.1f}",
        f"  peak RSS MiB:        {record['peak_rss_bytes'] / 2**20:.0f}",
    ]


def test_worldgen_tier_throughput():
    smoke = bench_worldgen("smoke", seed=11)
    city = bench_worldgen("city", seed=1, blocks=_CITY_BLOCKS)

    lines = ["Columnar worldgen (repro.colgen)"]
    lines.append(f"smoke tier ({smoke['backend']} backend, object+encode):")
    lines.extend(_fmt(smoke))
    lines.append(f"city tier @ {_CITY_BLOCKS} blocks (native columnar):")
    lines.extend(_fmt(city))
    emit("worldgen_colgen", "\n".join(lines))
    # Schema-shaped record; the flat per-tier records ride along under
    # their historical keys for the CI city job and older tooling.
    emit_json(
        "worldgen",
        new_record(
            "worldgen",
            params={"smoke_seed": 11, "city_seed": 1, "city_blocks": _CITY_BLOCKS},
            metrics={
                "smoke_accounts_per_second": metric(
                    smoke["accounts_per_second"], "accounts/sec", "higher",
                    tolerance_pct=THROUGHPUT_TOLERANCE_PCT,
                ),
                "city_accounts_per_second": metric(
                    city["accounts_per_second"], "accounts/sec", "higher",
                    tolerance_pct=THROUGHPUT_TOLERANCE_PCT,
                ),
                "city_accounts": metric(city["accounts"], "count", "exact"),
                "city_edges": metric(city["edges"], "count", "exact"),
                "city_column_bytes": metric(
                    city["column_nbytes"], "bytes", "lower",
                    tolerance_pct=RSS_TOLERANCE_PCT,
                ),
                "city_graph_bytes": metric(
                    city["graph_nbytes"], "bytes", "lower",
                    tolerance_pct=RSS_TOLERANCE_PCT,
                ),
                "peak_rss_bytes": metric(
                    city["peak_rss_bytes"], "bytes", "lower",
                    tolerance_pct=RSS_TOLERANCE_PCT,
                ),
            },
            smoke=smoke,
            city_subsampled=city,
        ),
    )

    assert smoke["accounts"] > 5_000
    assert smoke["edges"] > 0
    assert city["accounts"] == _CITY_BLOCKS * 4_000
    assert city["graph_materialized"]
    assert city["accounts_per_second"] > _MIN_NATIVE_ACCOUNTS_PER_SECOND
