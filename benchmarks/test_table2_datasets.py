"""Table 2: seeds, core users and candidates for the three schools.

The benchmark times one full basic crawl (seed harvest -> core
extraction -> candidate collection) on HS1; the table aggregates the
session's three enhanced runs.  Shape assertions: seeds near school
size, core ~5% of the school, candidates an order of magnitude larger.
"""

from repro.analysis.tables import dataset_row, render_table2
from repro.core.api import run_attack
from repro.core.profiler import ProfilerConfig

from _bench_utils import emit


def test_table2_datasets(
    benchmark, hs1_world, hs1_enhanced, hs2_enhanced, hs3_enhanced,
    hs2_world, hs3_world,
):
    benchmark.pedantic(
        lambda: run_attack(hs1_world, accounts=2, config=ProfilerConfig(threshold=500)),
        rounds=1,
        iterations=1,
    )

    rows = []
    for label, world, result in (
        ("HS1", hs1_world, hs1_enhanced),
        ("HS2", hs2_world, hs2_enhanced),
        ("HS3", hs3_world, hs3_enhanced),
    ):
        truth = world.ground_truth()
        on_osn = truth.on_osn_count if label == "HS1" else None  # paper: N/A
        rows.append(dataset_row(label, result, truth.enrolled_count, on_osn))

        school_size = truth.enrolled_count
        assert 0.3 * school_size <= len(result.seeds) <= 3.0 * school_size
        assert 0.01 * school_size <= result.initial_core_size <= 0.15 * school_size
        assert len(result.candidates) >= 5 * school_size
        assert result.extended_core_size >= result.initial_core_size

    emit("table2_datasets", render_table2(rows))
