"""Trade-off curves: rank the four methodology variants by AUC.

Single-threshold comparisons (Table 4) depend on the chosen t; the
coverage-vs-false-positive curve over the whole sweep is the
threshold-free comparison.  Expected shape: enhanced variants dominate
basic ones on AUC, and every variant is far above the candidate-set
base rate (a random ranking).
"""

from repro.analysis.metrics import tradeoff_curve
from repro.analysis.tables import ascii_table

from _bench_utils import emit

THRESHOLDS = (100, 200, 300, 400, 500, 700, 1000)


def test_tradeoff_auc(benchmark, hs1_world, hs1_runs):
    truth = hs1_world.ground_truth()

    def build_curves():
        return {
            variant: tradeoff_curve(result, truth, THRESHOLDS)
            for variant, result in hs1_runs.items()
        }

    curves = benchmark(build_curves)

    rows = []
    aucs = {}
    for variant, curve in curves.items():
        auc = curve.normalized_auc()
        aucs[variant] = auc
        rows.append(
            (
                variant,
                f"{auc:.3f}",
                f"{100 * curve.coverage_at_fp_budget(100):.0f}%",
            )
        )
    emit(
        "tradeoff_auc",
        ascii_table(
            ("methodology", "normalized AUC", "coverage within 100 FPs"),
            rows,
            title="Threshold-free comparison: coverage/FP AUC per variant",
        ),
    )

    base_rate = truth.on_osn_count / max(
        len(hs1_runs["Basic methodology without filtering"].candidates), 1
    )
    # Every variant crushes a random ranking...
    for auc in aucs.values():
        assert auc > 5 * base_rate
    # ...and the enhanced methodology beats the basic one overall.
    assert (
        aucs["Enhanced methodology without filtering"]
        >= aucs["Basic methodology without filtering"]
    )
