"""Helpers shared by the benchmark files."""

from __future__ import annotations

import pathlib

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def emit(name: str, text: str) -> None:
    """Print a rendered exhibit and save it under benchmarks/output/."""
    print("\n" + text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


def emit_figure(name: str, figure) -> None:
    """Save a figure both as rendered text and as an SVG plot."""
    from repro.analysis.figures import render_figure
    from repro.analysis.svg import save_figure_svg

    emit(name, render_figure(figure))
    OUTPUT_DIR.mkdir(exist_ok=True)
    save_figure_svg(figure, str(OUTPUT_DIR / f"{name}.svg"))
