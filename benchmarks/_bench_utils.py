"""Helpers shared by the benchmark files."""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def emit(name: str, text: str) -> None:
    """Print a rendered exhibit and save it under benchmarks/output/."""
    print("\n" + text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


def emit_figure(name: str, figure) -> None:
    """Save a figure both as rendered text and as an SVG plot."""
    from repro.analysis.figures import render_figure
    from repro.analysis.svg import save_figure_svg

    emit(name, render_figure(figure))
    OUTPUT_DIR.mkdir(exist_ok=True)
    save_figure_svg(figure, str(OUTPUT_DIR / f"{name}.svg"))


def emit_json(name: str, record: Dict[str, Any]) -> None:
    """Save a machine-readable bench record as BENCH_<name>.json.

    The text/SVG exhibits are for humans; these records are the CI
    artifact surface — stable keys, plain scalars, durations instead of
    timestamps (CLOCK001: bench code never reads the wall clock).
    """
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"BENCH_{name}.json"
    with path.open("w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
