"""Helpers shared by the benchmark files."""

from __future__ import annotations

import pathlib
from typing import Any, Dict

from repro.perf.record import write_record

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def emit(name: str, text: str) -> None:
    """Print a rendered exhibit and save it under benchmarks/output/."""
    print("\n" + text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


def emit_figure(name: str, figure) -> None:
    """Save a figure both as rendered text and as an SVG plot."""
    from repro.analysis.figures import render_figure
    from repro.analysis.svg import save_figure_svg

    emit(name, render_figure(figure))
    OUTPUT_DIR.mkdir(exist_ok=True)
    save_figure_svg(figure, str(OUTPUT_DIR / f"{name}.svg"))


def emit_json(name: str, record: Dict[str, Any]) -> None:
    """Save a machine-readable bench record as BENCH_<name>.json.

    The text/SVG exhibits are for humans; these records are the CI
    artifact surface, validated against the :mod:`repro.perf.record`
    schema (a malformed record fails the bench here, not the downstream
    ``bench compare``) and written atomically so a crashed bench never
    leaves a torn file for CI to upload.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)
    write_record(record, OUTPUT_DIR / f"BENCH_{name}.json")
