"""Figure 2: HS2/HS3 estimated coverage/FP vs threshold (partial ground truth).

Reproduces the paper's Section-5.5 regime end to end: a second,
disjoint crawl with four more fake accounts collects test users, and
the estimator produces the Figure-2 series.  Shape assertions: coverage
rises with t to the ~80%+ range around t = school size, and the
estimates roughly agree with the exact numbers our worlds also provide.
"""

import pytest

from repro.analysis.figures import figure2, render_figure
from repro.core.api import make_client
from repro.core.evaluation import (
    collect_test_users,
    evaluate_full,
    evaluate_partial,
    sweep_partial,
)

from _bench_utils import emit, emit_figure

THRESHOLDS = (500, 750, 1000, 1250, 1500, 1750, 2000)


def test_fig2_hs23_sweep(benchmark, hs2_world, hs3_world, hs2_enhanced, hs3_enhanced):
    def collect(world, result):
        client = make_client(world, 4)
        return collect_test_users(
            client, world.school().school_id, exclude=result.seeds
        )

    test_users_hs2 = benchmark.pedantic(
        lambda: collect(hs2_world, hs2_enhanced), rounds=1, iterations=1
    )
    test_users_hs3 = collect(hs3_world, hs3_enhanced)
    assert len(test_users_hs2) >= 5, "second crawl found too few test users"
    assert len(test_users_hs3) >= 5

    series = {}
    for label, world, result, test_users in (
        ("HS2", hs2_world, hs2_enhanced, test_users_hs2),
        ("HS3", hs3_world, hs3_enhanced, test_users_hs3),
    ):
        size = world.ground_truth().enrolled_count
        evals = sweep_partial(result, test_users, size, THRESHOLDS)
        series[label] = evals

        found = [e.found_percent for e in evals]
        assert found == sorted(found)
        assert found[-1] > 60  # paper: ~85% at t=1500 for HS2

        # Estimator vs exact (our worlds have full ground truth too).
        exact = evaluate_full(result, world.ground_truth(), 1500)
        est = evaluate_partial(result, test_users, size, 1500)
        assert est.estimated_found_fraction == pytest.approx(
            exact.found_fraction, abs=0.3
        )

    emit_figure("fig2_hs23_sweep", figure2(series))
