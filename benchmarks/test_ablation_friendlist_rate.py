"""Ablation: how much do *users'* friend-list settings protect them?

A behavioural (rather than site- or law-side) defence: what if fewer
adult-registered students kept their friend lists public?  Sweeping the
public-friend-list rate isolates the user-behaviour lever the paper's
Table 5 measures — and shows why it is weak: reverse lookup needs only
a handful of public lists to expose everyone else.
"""

from dataclasses import replace

from repro.analysis.tables import ascii_table
from repro.core.api import run_attack
from repro.core.evaluation import evaluate_full
from repro.core.profiler import ProfilerConfig
from repro.worldgen.presets import hs1
from repro.worldgen.world import build_world

from _bench_utils import emit

RATES = (0.10, 0.30, 0.50, 0.80)


def test_ablation_friendlist_rate(benchmark):
    def run_rate(rate):
        config = hs1(seed=909)
        config = replace(
            config,
            students=replace(config.students, p_adult_friend_list_public=rate),
            alumni=replace(config.alumni, p_friend_list_public=rate),
        )
        world = build_world(config)
        result = run_attack(
            world,
            accounts=2,
            config=ProfilerConfig(threshold=400, enhanced=True, filtering=True),
        )
        return result.extended_core_size, evaluate_full(
            result, world.ground_truth(), 400
        )

    runs = benchmark.pedantic(
        lambda: [run_rate(r) for r in RATES], rounds=1, iterations=1
    )

    rows = [
        (f"{rate:.0%}", core, f"{100 * e.found_fraction:.0f}%", e.false_positives)
        for rate, (core, e) in zip(RATES, runs)
    ]
    emit(
        "ablation_friendlist_rate",
        ascii_table(
            (
                "public friend-list rate",
                "core size",
                "students found (t=400)",
                "false positives",
            ),
            rows,
            title="Ablation: user-behaviour defence (hiding friend lists)",
        ),
    )

    coverages = [e.found_fraction for _, e in runs]
    cores = [core for core, _ in runs]
    # More public lists -> bigger core and (weakly) better coverage...
    assert cores == sorted(cores)
    assert coverages[-1] >= coverages[0]
    # ...but even at a 30% public rate the attack still recovers a
    # majority: individual privacy hygiene cannot fix a structural leak.
    assert runs[1][1].found_fraction > 0.5
