"""Ablation: Jaccard threshold for hidden-friendship inference (Section 6.1).

Sweeps the decision threshold and reports the precision/recall
trade-off against ground truth minor-minor edges.  Expected shape:
precision rises with the threshold while the number of predicted links
falls — and precision always beats the random-pair base rate.
"""

from repro.analysis.tables import ascii_table
from repro.core.api import make_client
from repro.core.extension import build_extended_profiles
from repro.core.hidden_links import infer_hidden_links

from _bench_utils import emit

THRESHOLDS = (0.1, 0.2, 0.3, 0.4)


def test_ablation_jaccard_threshold(benchmark, hs1_world, hs1_enhanced):
    client = make_client(hs1_world, 2)
    extended = build_extended_profiles(hs1_enhanced, client, t=400)
    truth_students = hs1_world.ground_truth().all_student_uids
    graph = hs1_world.network.graph

    reverse = {
        uid: p.reverse_friends
        for uid, p in extended.items()
        if not p.appears_registered_adult and uid in truth_students
    }

    def sweep():
        return {
            th: infer_hidden_links(reverse, threshold=th, min_common=3)
            for th in THRESHOLDS
        }

    by_threshold = benchmark(sweep)

    # Base rate of friendship among the candidate minor pairs.
    uids = sorted(reverse)
    pairs = hits = 0
    for i, a in enumerate(uids):
        for b in uids[i + 1 :]:
            pairs += 1
            hits += graph.are_friends(a, b)
    base_rate = hits / pairs

    rows = []
    precisions = []
    counts = []
    for th, links in by_threshold.items():
        correct = sum(1 for l in links if graph.are_friends(*l.pair))
        precision = correct / len(links) if links else 0.0
        precisions.append(precision)
        counts.append(len(links))
        rows.append((th, len(links), correct, f"{100 * precision:.0f}%"))

    emit(
        "ablation_jaccard",
        ascii_table(
            ("Jaccard threshold", "links predicted", "correct", "precision"),
            rows,
            title=(
                "Ablation: hidden-link inference threshold "
                f"(base friendship rate {100 * base_rate:.1f}%)"
            ),
        ),
    )

    assert counts == sorted(counts, reverse=True)  # stricter -> fewer links
    assert precisions[-1] >= precisions[0] - 0.05  # and (weakly) more precise
    assert all(
        p > base_rate for p, c in zip(precisions, counts) if c >= 10
    )  # real lift over chance wherever we have support
