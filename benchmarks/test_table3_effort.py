"""Table 3: measurement effort (HTTP GETs by category).

Shape assertions match the paper: total requests for the basic
methodology are roughly 2-5x the school size; the enhanced methodology
costs a few times more; the analytic formula A*R + |S| + |C|*f/p tracks
the measured total.
"""

from repro.analysis.tables import effort_row, render_table3
from repro.crawler.effort import predicted_requests

from _bench_utils import emit


def test_table3_effort(
    benchmark,
    hs1_world, hs2_world, hs3_world,
    hs1_basic, hs2_basic, hs3_basic,
    hs1_enhanced, hs2_enhanced, hs3_enhanced,
):
    def build_rows():
        return [
            effort_row("HS1", hs1_basic, hs1_enhanced),
            effort_row("HS2", hs2_basic, hs2_enhanced),
            effort_row("HS3", hs3_basic, hs3_enhanced),
        ]

    rows = benchmark(build_rows)

    for row, world in zip(rows, (hs1_world, hs2_world, hs3_world)):
        school_size = world.ground_truth().enrolled_count
        assert row.total_basic < 8 * school_size
        assert row.total_basic < row.total_enhanced < 20 * school_size

    # The analytic effort model stays within ~35% of the measured total.
    result = hs1_basic
    mean_friends = sum(len(f) for f in result.core.friend_lists.values()) / max(
        result.initial_core_size, 1
    )
    predicted = predicted_requests(
        accounts=result.effort.accounts_used,
        requests_per_account_for_seeds=result.effort.seed_requests
        / max(result.effort.accounts_used, 1),
        seed_count=len(result.seeds),
        core_size=result.initial_core_size,
        mean_friends=mean_friends,
    )
    assert abs(predicted - result.effort.total) / result.effort.total < 0.35

    emit("table3_effort", render_table3(rows))
