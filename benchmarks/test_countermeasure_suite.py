"""Defence portfolio (Section 8 broadened): which countermeasure works?

Evaluates five defences under identical attack conditions on HS1-scale
worlds.  Expected ordering: no_school_search (kills the attack) >
age_verification (the law-side fix) ≈/> no_reverse_lookup (the paper's
site-side fix) >> tiny_search_cap (barely helps) >= baseline.
"""

from repro.analysis.tables import ascii_table
from repro.core.countermeasures import run_countermeasure_suite
from repro.core.profiler import ProfilerConfig
from repro.worldgen.presets import hs1

from _bench_utils import emit


def test_countermeasure_suite(benchmark):
    outcomes = benchmark.pedantic(
        lambda: run_countermeasure_suite(
            hs1(seed=606),
            accounts=2,
            config=ProfilerConfig(threshold=400, enhanced=True, filtering=True),
            t=400,
            throttled_search_cap=60,
        ),
        rounds=1,
        iterations=1,
    )
    by_name = {o.name: o for o in outcomes}

    rows = [
        (o.name, f"{o.found_percent:.0f}%", o.false_positives, o.core_size, o.seeds)
        for o in outcomes
    ]
    emit(
        "countermeasure_suite",
        ascii_table(
            ("defence", "students found", "false positives", "core", "seeds"),
            rows,
            title="Section 8 broadened: defence portfolio vs the attack",
        ),
    )

    baseline = by_name["baseline"].found_percent
    assert baseline > 70
    # The paper's defence and the law-side fix both gut the attack...
    assert by_name["no_reverse_lookup"].found_percent < baseline - 20
    assert by_name["age_verification"].found_percent < baseline - 20
    # ...blocking school search kills it outright...
    assert by_name["no_school_search"].found_percent == 0.0
    # ...while throttling search to 60 results/account only partially
    # mitigates: even a thin core carries the attack a long way.
    assert by_name["tiny_search_cap"].seeds < by_name["baseline"].seeds / 2
    assert by_name["tiny_search_cap"].found_percent > 35
