"""Figure 3: with- vs without-COPPA false positives (log scale).

The apples-to-apples comparison on HS1's minimal-profile students:
the with-COPPA attack (top-t minimal-profile users) against the
Section-7.1 natural approach (recent-graduate cores, n-core-friend
filter).  Headline shape: at matched coverage the without-COPPA
attacker pays one to two orders of magnitude more false positives.

Also runs the direct counterfactual the paper could not: the same
methodology inside an actual no-age-ban, no-lying world.
"""

from repro.analysis.figures import figure3, log10_gap_at_matched_coverage, render_figure
from repro.core.api import make_client, run_attack
from repro.core.coppaless import (
    natural_approach_points,
    run_natural_approach,
    with_coppa_minimal_points,
)
from repro.core.evaluation import evaluate_full
from repro.core.profiler import ProfilerConfig
from repro.worldgen.presets import hs1
from repro.worldgen.world import build_world

from _bench_utils import emit, emit_figure


def test_fig3_coppaless(benchmark, hs1_world, hs1_enhanced):
    minimal_truth = hs1_world.minimal_profile_students()
    current = hs1_world.network.clock.current_year

    natural = benchmark.pedantic(
        lambda: run_natural_approach(
            make_client(hs1_world, 2),
            hs1_world.school().school_id,
            [current - 1, current - 2],
        ),
        rounds=1,
        iterations=1,
    )

    with_points = with_coppa_minimal_points(hs1_enhanced, minimal_truth, (300, 400, 500))
    without_points = natural_approach_points(natural, minimal_truth, ns=(1, 2, 3))
    fig = figure3(with_points, without_points)

    # The paper's headline: an order-of-magnitude-plus FP gap.
    gap = log10_gap_at_matched_coverage(fig)
    assert gap is not None and gap > 1.0

    # Without-COPPA trades coverage against floods of minimal profiles.
    n1 = without_points[0]
    assert n1.false_positives > 10 * max(p.false_positives for p in with_points)

    extra = (
        f"\nlog10 false-positive gap at matched coverage: {gap:.2f}"
        f"\nnatural-approach core (recent graduates with public lists): "
        f"{len(natural.core)}; candidates: {len(natural.candidates)}; "
        f"minimal-profile candidates: {len(natural.minimal_candidates)}"
    )
    emit("fig3_coppaless", render_figure(fig) + extra)
    emit_figure("fig3_coppaless_plot", fig)


def test_fig3_direct_counterfactual(benchmark):
    """A world with no age ban: the main attack collapses (Section 7.3)."""
    counter_world = build_world(hs1().without_coppa())

    result = benchmark.pedantic(
        lambda: run_attack(
            counter_world,
            accounts=2,
            config=ProfilerConfig(threshold=500, enhanced=True, filtering=True),
        ),
        rounds=1,
        iterations=1,
    )
    truth = counter_world.ground_truth()
    current = counter_world.network.clock.current_year
    evaluation = evaluate_full(result, truth, 400)

    # Core users can only be genuinely adult (mostly seniors).
    now = counter_world.network.clock.now_year
    for uid in result.core.core:
        assert counter_world.network.users[uid].real_age(now) >= 18.0
    # Coverage collapses versus the with-COPPA world's ~88%.
    assert evaluation.found_fraction < 0.6

    emit(
        "fig3_direct_counterfactual",
        "Direct without-COPPA counterfactual (same seed, truthful ages):\n"
        f"  core users: {result.extended_core_size} (all real adults)\n"
        f"  students found at t=400: {evaluation.found} "
        f"({100 * evaluation.found_fraction:.0f}% vs ~88% with COPPA)\n"
        f"  false positives: {evaluation.false_positives}",
    )
