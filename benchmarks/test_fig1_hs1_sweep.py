"""Figure 1: HS1 coverage and false-positive percentage vs threshold t.

Shape assertions: both series increase with t; coverage exceeds 80%
by t=400 while the FP rate stays below the coverage curve (the paper's
operating-point trade-off).
"""

from repro.analysis.figures import figure1, render_figure
from repro.core.evaluation import sweep_full

from _bench_utils import emit, emit_figure

THRESHOLDS = (200, 250, 300, 350, 400, 450, 500)


def test_fig1_hs1_sweep(benchmark, hs1_world, hs1_enhanced):
    truth = hs1_world.ground_truth()

    evals = benchmark(lambda: sweep_full(hs1_enhanced, truth, THRESHOLDS))
    fig = figure1(evals)

    found = fig.series_by_name("% of students found for HS1").ys()
    fps = fig.series_by_name("% of false positives for HS1").ys()

    assert found == sorted(found)                 # coverage monotone in t
    assert fps == sorted(fps)                     # FP rate monotone in t
    assert found[-1] > 72                         # paper: 92% at t=500
    assert fps[0] < 30                            # paper: 13% at t=200
    assert all(f > p for f, p in zip(found, fps))  # found curve dominates

    emit_figure("fig1_hs1_sweep", fig)
