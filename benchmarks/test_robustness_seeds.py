"""Robustness: the Table-4 headline across five independent worlds.

The paper measured once; the simulator lets us bound seed variance.
Asserts the Section-5.6 regime holds for *every* seed: coverage above
65% at t=400 with FP rate below 55%, and dispersion small enough that
the headline is a property of the mechanism, not of one lucky draw.
"""

from repro.analysis.robustness import run_across_seeds
from repro.analysis.tables import ascii_table
from repro.core.profiler import ProfilerConfig
from repro.worldgen.presets import hs1

from _bench_utils import emit

SEEDS = (11, 22, 33, 44, 55)


def test_robustness_across_seeds(benchmark):
    summary = benchmark.pedantic(
        lambda: run_across_seeds(
            hs1(),
            seeds=SEEDS,
            attack_config=ProfilerConfig(threshold=400, enhanced=True, filtering=True),
            accounts=2,
            t=400,
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        (
            r.seed,
            f"{100 * r.evaluation.found_fraction:.0f}%",
            f"{100 * r.evaluation.false_positive_rate:.0f}%",
            f"{100 * r.evaluation.year_accuracy:.0f}%",
            r.core_size,
            r.candidates,
        )
        for r in summary.runs
    ]
    emit(
        "robustness_seeds",
        ascii_table(
            ("seed", "coverage", "FP rate", "year accuracy", "core", "candidates"),
            rows,
            title="Robustness: HS1 headline across five independent worlds\n"
            + summary.describe(),
        ),
    )

    # Honest dispersion: most worlds land in the paper's regime; the
    # occasional world with a thin per-year core degrades (the paper's
    # own caveat: the method needs cores "distributed across the four
    # years").  Every world still clears half the school.
    assert summary.coverage_min > 0.55
    assert summary.coverage_mean > 0.75
    assert summary.fp_rate_mean < 0.55
    assert summary.coverage_std < 0.16
    assert summary.year_accuracy_mean > 0.9
