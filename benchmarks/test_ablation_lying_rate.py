"""Ablation: attack success as a function of the age-lying rate.

The paper's causal story is that COPPA-driven lying creates the core
set.  Sweeping p(lie | under 13) from 0 to 0.9, everything else fixed,
should show coverage rising steeply with the lying rate — at 0 the
attack degenerates to the without-COPPA regime.
"""

from dataclasses import replace

from repro.analysis.tables import ascii_table
from repro.core.api import run_attack
from repro.core.evaluation import evaluate_full
from repro.core.profiler import ProfilerConfig
from repro.worldgen.presets import hs1
from repro.worldgen.world import build_world

from _bench_utils import emit

LIE_RATES = (0.0, 0.2, 0.5, 0.8)


def test_ablation_lying_rate(benchmark):
    def run_rate(rate):
        config = hs1(seed=404)
        config = replace(config, lying=replace(config.lying, p_lie_if_under_13=rate))
        world = build_world(config)
        result = run_attack(
            world,
            accounts=2,
            config=ProfilerConfig(threshold=400, enhanced=True, filtering=True),
        )
        truth = world.ground_truth()
        return (
            len(world.adult_registered_students()),
            result.extended_core_size,
            evaluate_full(result, truth, 400),
        )

    runs = benchmark.pedantic(
        lambda: [run_rate(r) for r in LIE_RATES], rounds=1, iterations=1
    )

    rows = [
        (
            rate,
            adult_students,
            core,
            e.found,
            f"{100 * e.found_fraction:.0f}%",
        )
        for rate, (adult_students, core, e) in zip(LIE_RATES, runs)
    ]
    emit(
        "ablation_lying_rate",
        ascii_table(
            (
                "p(lie | under 13)",
                "students registered adult",
                "extended core",
                "found (t=400)",
                "coverage",
            ),
            rows,
            title="Ablation: lying rate drives the attack (the COPPA mechanism)",
        ),
    )

    adults = [a for a, _, _ in runs]
    coverages = [e.found_fraction for _, _, e in runs]
    # More lying -> more adult-registered students -> better coverage.
    assert adults == sorted(adults)
    assert coverages[-1] > coverages[0] + 0.2
    # With no lying the attack collapses toward the seniors-only regime.
    assert coverages[0] < 0.6
