"""Lint engine cost: cold analysis vs warm cache replay.

The lint gate runs on every CI push, so its cost is a tax on every
contributor.  ``BENCH_lint.json`` records the cold wall cost of the
full rule set — per-file rules plus the whole-program flow and
concurrency passes — over ``src/repro``, the warm cost of the same run
against a populated cache, and throughput in files/sec for both.  The
cache invariant is gated absolutely: ``warm_files_reparsed`` carries
``max_value=0``, so a cache-key regression that silently reverts lint
CI to cold cost fails the bench rather than just slowing it down.

The scale pass (SCALE001-003 + DET002) is costed separately under the
``scale_*`` metrics — its interprocedural reachability analysis runs
against its own cache with a subset rule signature, and its warm
re-parse count is gated ``max_value=0`` as well.
"""

from __future__ import annotations

import pathlib

from repro.perf.benches import bench_lint
from repro.perf.record import validate_record

from _bench_utils import emit, emit_json

_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src" / "repro")


def test_lint_perf_record():
    record = bench_lint(paths=[_SRC])
    assert validate_record(record) == [], validate_record(record)

    metrics = record["metrics"]
    assert metrics["files_checked"]["value"] > 50
    # The shipped tree carries exactly the baselined columnar-port debt
    # recorded in lint-baseline.json (the bench runs without a baseline).
    assert metrics["findings"]["value"] == 1
    assert metrics["scale_findings"]["value"] == 1
    assert metrics["warm_files_reparsed"]["value"] == 0
    assert metrics["warm_cache_hits"]["value"] == metrics["files_checked"]["value"]
    assert metrics["cold_files_per_second"]["value"] > 0
    assert metrics["scale_cold_files_per_second"]["value"] > 0
    assert metrics["scale_warm_files_reparsed"]["value"] == 0
    # Skipping parse + per-file analysis must actually buy wall time.
    assert (
        metrics["warm_wall_seconds"]["value"]
        < metrics["cold_wall_seconds"]["value"]
    )

    emit_json("lint", record)

    lines = ["Lint engine cost (src/repro, full rule set)"]
    for name, entry in sorted(metrics.items()):
        lines.append(f"  {name}: {entry['value']:,.2f} {entry['unit']}")
    emit("lint_perf", "\n".join(lines))
