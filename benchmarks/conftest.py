"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  Worlds
and attack results are built once per session and shared; each bench
times the piece of the pipeline it is about (pytest-benchmark) and then
renders the paper-style rows/series, both to stdout and to
``benchmarks/output/<name>.txt``.
"""

from __future__ import annotations

import pytest

from repro.core.api import make_client, run_attack
from repro.core.profiler import ProfilerConfig
from repro.worldgen.presets import hs1, hs2, hs3
from repro.worldgen.world import build_world

#: Threshold used for the large schools (the paper sweeps around 1500).
LARGE_T = 1500
#: Threshold used for HS1 (the paper sweeps 200-500).
SMALL_T = 500


@pytest.fixture(scope="session")
def hs1_world():
    return build_world(hs1())


@pytest.fixture(scope="session")
def hs2_world():
    return build_world(hs2())


@pytest.fixture(scope="session")
def hs3_world():
    return build_world(hs3())


@pytest.fixture(scope="session")
def hs1_runs(hs1_world):
    """All four methodology variants on HS1 (Table 4's grid)."""
    return {
        "Basic methodology without filtering": run_attack(
            hs1_world, accounts=2, config=ProfilerConfig(threshold=SMALL_T)
        ),
        "Basic methodology with filtering": run_attack(
            hs1_world, accounts=2, config=ProfilerConfig(threshold=SMALL_T, filtering=True)
        ),
        "Enhanced methodology without filtering": run_attack(
            hs1_world, accounts=2, config=ProfilerConfig(threshold=SMALL_T, enhanced=True)
        ),
        "Enhanced methodology with filtering": run_attack(
            hs1_world,
            accounts=2,
            config=ProfilerConfig(threshold=SMALL_T, enhanced=True, filtering=True),
        ),
    }


@pytest.fixture(scope="session")
def hs1_enhanced(hs1_runs):
    return hs1_runs["Enhanced methodology with filtering"]


@pytest.fixture(scope="session")
def hs2_enhanced(hs2_world):
    return run_attack(
        hs2_world,
        accounts=4,
        config=ProfilerConfig(threshold=LARGE_T, enhanced=True, filtering=True),
    )


@pytest.fixture(scope="session")
def hs3_enhanced(hs3_world):
    return run_attack(
        hs3_world,
        accounts=4,
        config=ProfilerConfig(threshold=LARGE_T, enhanced=True, filtering=True),
    )


@pytest.fixture(scope="session")
def hs2_basic(hs2_world):
    return run_attack(hs2_world, accounts=4, config=ProfilerConfig(threshold=LARGE_T))


@pytest.fixture(scope="session")
def hs3_basic(hs3_world):
    return run_attack(hs3_world, accounts=4, config=ProfilerConfig(threshold=LARGE_T))


@pytest.fixture(scope="session")
def hs1_basic(hs1_runs):
    return hs1_runs["Basic methodology without filtering"]
