"""Figure 4: coverage with and without the reverse-lookup countermeasure.

Shape assertions: with reverse lookup the attack keeps improving with
t toward ~90%; with the defence on, coverage flattens near the share of
students whose own friend lists are public (paper: 92% -> 33% at
t=500).
"""

from repro.analysis.figures import figure4, render_figure
from repro.core.countermeasures import run_countermeasure_comparison
from repro.core.profiler import ProfilerConfig
from repro.worldgen.presets import hs1
from repro.worldgen.world import build_world

from _bench_utils import emit, emit_figure

THRESHOLDS = (200, 250, 300, 350, 400, 450, 500)


def test_fig4_countermeasure(benchmark):
    world = build_world(hs1())

    report = benchmark.pedantic(
        lambda: run_countermeasure_comparison(
            world,
            accounts=2,
            config=ProfilerConfig(threshold=500, enhanced=True, filtering=True),
            thresholds=THRESHOLDS,
        ),
        rounds=1,
        iterations=1,
    )

    last = report.points[-1]
    assert last.found_percent_with > 80          # paper: 92%
    assert last.found_percent_without < 60       # paper: 33%
    assert report.max_reduction() > 25           # a drastic collapse

    # The defence flattens the curve: little gain from raising t.
    without = [p.found_percent_without for p in report.points]
    assert without[-1] - without[0] < 10

    # The candidate pool itself shrinks (minors vanish from lists).
    assert len(report.without_lookup.candidates) < len(report.with_lookup.candidates)

    emit_figure("fig4_countermeasure", figure4(report))
