"""Ablation: the enhanced methodology's epsilon (profile-fetch budget).

The paper fixes epsilon = 1 (fetch the top 2t profiles).  Sweeping it
shows the trade-off: larger epsilon finds more hidden self-identified
students (bigger extended core, better coverage) at a higher request
cost.  Expected shape: coverage is non-decreasing-ish in epsilon while
effort grows roughly linearly.
"""

from repro.analysis.tables import ascii_table
from repro.core.api import run_attack
from repro.core.evaluation import evaluate_full
from repro.core.profiler import ProfilerConfig
from repro.crawler.accounts import AccountPool
from repro.crawler.client import CrawlClient

from _bench_utils import emit

EPSILONS = (0.0, 0.5, 1.0, 2.0)


def test_ablation_epsilon(benchmark, hs1_world):
    truth = hs1_world.ground_truth()
    # One fixed pair of crawl accounts: the per-account search samples
    # are deterministic, so every epsilon sees identical seed sets and
    # the sweep isolates epsilon's effect.
    account_ids = hs1_world.create_attacker_accounts(2)

    def run_eps(eps):
        client = CrawlClient(hs1_world.frontend, AccountPool.of(list(account_ids)))
        result = run_attack(
            hs1_world,
            config=ProfilerConfig(threshold=400, enhanced=True, epsilon=eps),
            client=client,
        )
        return result, evaluate_full(result, truth, 400)

    runs = benchmark.pedantic(
        lambda: [run_eps(eps) for eps in EPSILONS], rounds=1, iterations=1
    )

    rows = []
    for eps, (result, e) in zip(EPSILONS, runs):
        rows.append(
            (
                eps,
                result.extended_core_size,
                e.found,
                f"{100 * e.false_positive_rate:.0f}%",
                result.effort.total,
            )
        )

    cores = [r.extended_core_size for r, _ in runs]
    efforts = [r.effort.total for r, _ in runs]
    founds = [e.found for _, e in runs]
    assert cores == sorted(cores)          # bigger budget, bigger core
    assert efforts == sorted(efforts)      # and more requests
    assert founds[-1] >= founds[0] - 10    # coverage does not degrade

    emit(
        "ablation_epsilon",
        ascii_table(
            ("epsilon", "extended core", "found (t=400)", "FP rate", "total requests"),
            rows,
            title="Ablation: enhanced-methodology epsilon (paper uses 1.0)",
        ),
    )
