"""Ablation: interaction-graph boost (the paper's future-work optimization).

Compares the paper's friendship-only ranking against the
interaction-boosted one, sweeping alpha.  Expected shape: candidates
with observed wall interactions are overwhelmingly true schoolmates, so
a moderate boost improves (or at least preserves) precision at small
thresholds at zero extra crawling cost.
"""

from repro.analysis.tables import ascii_table
from repro.core.evaluation import evaluate_full
from repro.core.interaction import (
    score_with_interactions,
    summarize_interactions,
)
from repro.core.profiler import AttackResult

from _bench_utils import emit

ALPHAS = (0.0, 0.25, 0.5, 1.0)


def _with_table(result: AttackResult, table) -> AttackResult:
    ranking = [
        uid
        for uid in table.ranked(exclude=set(result.core.claimed))
        if uid not in result.filtered_out
    ]
    return AttackResult(
        school=result.school,
        config=result.config,
        current_year=result.current_year,
        seeds=result.seeds,
        core=result.core,
        initial_core_size=result.initial_core_size,
        initial_claimed_size=result.initial_claimed_size,
        candidates=result.candidates,
        scores=table,
        ranking=ranking,
        filtered_out=result.filtered_out,
        profiles=result.profiles,
        threshold=result.threshold,
        effort=result.effort,
    )


def test_ablation_interaction_boost(benchmark, hs1_world, hs1_enhanced):
    truth = hs1_world.ground_truth()
    stats = summarize_interactions(hs1_enhanced.core, hs1_enhanced.profiles)
    assert stats.has_signal, "crawl captured no interaction evidence"

    def sweep():
        out = {}
        for alpha in ALPHAS:
            table = score_with_interactions(
                hs1_enhanced.core, hs1_enhanced.profiles, alpha=alpha
            )
            out[alpha] = evaluate_full(_with_table(hs1_enhanced, table), truth, 200)
        return out

    evals = benchmark(sweep)

    rows = [
        (alpha, e.found, e.false_positives, f"{100 * e.year_accuracy:.0f}%")
        for alpha, e in evals.items()
    ]
    emit(
        "ablation_interactions",
        ascii_table(
            ("alpha", "found (t=200)", "false positives", "year accuracy"),
            rows,
            title=(
                "Ablation: interaction-graph boost "
                f"({stats.total_posts_observed} posts observed on "
                f"{stats.core_profiles_with_walls} core walls)"
            ),
        ),
    )

    base = evals[0.0]
    best = max(evals.values(), key=lambda e: e.found)
    # The boost never costs much coverage, and some alpha matches or
    # beats the paper's ranking (at zero extra requests).
    assert best.found >= base.found
    for e in evals.values():
        assert e.found >= base.found - 15
