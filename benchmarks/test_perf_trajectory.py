"""The perf trajectory: crawl, attack and linkage throughput records.

The paper's quantitative core is cost curves — crawl effort vs coverage
(Table 3, Figures 1-2) — so the hot paths behind them get first-class
bench records: ``BENCH_crawl.json``, ``BENCH_attack.json`` and
``BENCH_linkage.json``, all on the paper-tier HS1 world with pinned
seeds.  CI uploads the records and the ``bench-compare`` job gates the
next run against them; this test asserts the records are schema-valid
and that the deterministic (``exact``) metrics reproduce across runs.
"""

from __future__ import annotations

from repro.perf.benches import bench_attack, bench_crawl, bench_linkage
from repro.perf.profile import PhaseStat, render_phase_table
from repro.perf.record import validate_record

from _bench_utils import emit, emit_json

_SEED = 101  # the hs1 preset default, pinned for the record's params


def _phase_stats(record):
    return [
        PhaseStat(p["name"], p["calls"], p["wall_seconds"], p["sim_seconds"])
        for p in record.get("phases", [])
    ]


def test_perf_trajectory_records():
    crawl = bench_crawl("hs1", seed=_SEED)
    attack = bench_attack("hs1", seed=_SEED, threshold=500)
    linkage = bench_linkage("hs1", seed=_SEED, threshold=400)

    for record in (crawl, attack, linkage):
        assert validate_record(record) == [], validate_record(record)

    assert crawl["metrics"]["pages_per_second"]["value"] > 0
    assert crawl["metrics"]["requests"]["value"] > 0
    assert crawl["metrics"]["sim_seconds"]["value"] > 0  # pacing on the SimClock
    assert {p["name"] for p in crawl["phases"]} == {
        "seeds", "profiles", "friend_lists",
    }

    assert attack["metrics"]["accounts_scored_per_second"]["value"] > 0
    assert attack["metrics"]["candidates_scored"]["value"] > 100
    phase_names = {p["name"] for p in attack["phases"]}
    assert {"seeds", "core", "scoring", "threshold"} <= phase_names

    assert linkage["metrics"]["students_linked"]["value"] > 30
    assert linkage["metrics"]["pairs_per_second"]["value"] > 0

    # Seeded determinism: a re-run reproduces every exact metric.
    rerun = bench_crawl("hs1", seed=_SEED)
    for name, entry in crawl["metrics"].items():
        if entry["direction"] == "exact":
            assert rerun["metrics"][name]["value"] == entry["value"], name

    emit_json("crawl", crawl)
    emit_json("attack", attack)
    emit_json("linkage", linkage)

    lines = ["Perf trajectory (paper-tier HS1, seeded)"]
    for record in (crawl, attack, linkage):
        lines.append("")
        lines.append(f"[{record['benchmark']}]")
        for name, entry in sorted(record["metrics"].items()):
            if entry["direction"] in ("higher", "lower"):
                lines.append(f"  {name}: {entry['value']:,.1f} {entry['unit']}")
        stats = _phase_stats(record)
        if stats:
            lines.append(render_phase_table(stats))
    emit("perf_trajectory", "\n".join(lines))
