"""Table 5: extending the profiles of minors registered as adults.

Also reproduces the Section-6.1 statistic: average reverse-lookup
friends recovered per *registered minor* (paper: 38/141/129).
Shape assertions: most adult-registered minors expose public friend
lists, public search and the Message link; registered minors still get
a non-trivial reverse-lookup friend list despite showing nothing.
"""

from repro.analysis.tables import ascii_table, render_table5
from repro.core.api import make_client
from repro.core.extension import (
    build_extended_profiles,
    registered_minor_friend_average,
    table5_stats,
)

from _bench_utils import emit


def test_table5_extension(
    benchmark,
    hs1_world, hs2_world, hs3_world,
    hs1_enhanced, hs2_enhanced, hs3_enhanced,
):
    plans = (
        ("HS1", hs1_world, hs1_enhanced, 400),
        ("HS2", hs2_world, hs2_enhanced, 1500),
        ("HS3", hs3_world, hs3_enhanced, 1500),
    )

    def extend_hs1():
        return build_extended_profiles(
            hs1_enhanced, make_client(hs1_world, 2), t=400
        )

    benchmark.pedantic(extend_hs1, rounds=1, iterations=1)

    stats = {}
    minor_rows = []
    for label, world, result, t in plans:
        extended = build_extended_profiles(result, make_client(world, 2), t=t)
        first_three = result.core.years[1:]
        stats[label] = table5_stats(extended, first_three)
        count, avg = registered_minor_friend_average(extended, first_three)
        minor_rows.append((label, count, f"{avg:.0f}"))

        s = stats[label]
        assert s.count > 0
        assert s.pct_friend_list_public > 50   # paper: 73-87%
        assert s.pct_message_link > 60         # paper: 86-91%
        assert s.pct_public_search > 50        # paper: 71-86%
        assert s.avg_photos > 5                # paper: 19-57
        assert avg > 5                         # paper: 38-141

    emit(
        "table5_extension",
        render_table5(stats)
        + "\n\n"
        + ascii_table(
            ("School", "# registered minors profiled", "avg reverse-lookup friends"),
            minor_rows,
            title="Section 6.1: friends recovered for registered minors",
        ),
    )
