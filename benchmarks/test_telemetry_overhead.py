"""Instrumentation overhead: the telemetry-on tax must stay under 10%.

Runs the enhanced+filtered HS1 attack with telemetry off and with the
JSONL sink attached (the most expensive shipped sink: every event is
serialised at emit time), interleaved best-of-N to shrug off scheduler
noise.  The <10% budget rides the perf comparator: the emitted
``BENCH_telemetry_overhead.json`` declares ``max_value`` on the
overhead metric, and the same :func:`repro.perf.compare.check_budgets`
gate that ``bench compare`` applies in CI enforces it here.
"""

from __future__ import annotations

import time

from repro.core.api import run_attack
from repro.core.profiler import ProfilerConfig
from repro.perf.compare import check_budgets
from repro.perf.record import metric, new_record
from repro.telemetry import Telemetry
from repro.worldgen.presets import hs1
from repro.worldgen.world import build_world

from _bench_utils import emit, emit_json

_ROUNDS = 3
_MAX_OVERHEAD = 0.10
_CONFIG = ProfilerConfig(threshold=500, enhanced=True, filtering=True)


def _attack_once(world, tmp_path, instrumented: bool):
    telemetry = None
    if instrumented:
        telemetry = Telemetry.to_jsonl(
            world.network.clock, str(tmp_path / "overhead.jsonl")
        )
    start = time.perf_counter()
    result = run_attack(world, accounts=2, config=_CONFIG, telemetry=telemetry)
    if telemetry is not None:
        telemetry.close()
    elapsed = time.perf_counter() - start
    # Detach so the next telemetry-off round runs the true fast path.
    world.frontend.set_telemetry(None)
    return elapsed, result, telemetry


def test_telemetry_overhead_under_10_percent(tmp_path):
    world = build_world(hs1())
    _attack_once(world, tmp_path, instrumented=False)  # warm-up

    off_times, on_times = [], []
    events = requests = 0
    for _ in range(_ROUNDS):
        off, _, _ = _attack_once(world, tmp_path, instrumented=False)
        on, result, telemetry = _attack_once(world, tmp_path, instrumented=True)
        off_times.append(off)
        on_times.append(on)
        events = telemetry.event_count
        requests = result.effort.total

    best_off, best_on = min(off_times), min(on_times)
    overhead = best_on / best_off - 1.0

    lines = [
        "Telemetry overhead (HS1, enhanced+filtering, JSONL sink)",
        f"rounds:                {_ROUNDS} (interleaved, best-of)",
        f"requests per run:      {requests}",
        f"events per run:        {events}",
        f"telemetry off (best):  {best_off * 1000:.1f} ms",
        f"telemetry on  (best):  {best_on * 1000:.1f} ms",
        f"overhead:              {overhead * 100:+.1f}% (budget {_MAX_OVERHEAD:.0%})",
    ]
    emit("telemetry_overhead", "\n".join(lines))

    record = new_record(
        "telemetry_overhead",
        params={"preset": "hs1", "rounds": _ROUNDS, "sink": "jsonl"},
        metrics={
            "overhead_percent": metric(
                overhead * 100.0, "percent", "info",
                max_value=_MAX_OVERHEAD * 100.0,
            ),
            "telemetry_off_seconds": metric(best_off, "seconds", "info"),
            "telemetry_on_seconds": metric(best_on, "seconds", "info"),
            "events": metric(events, "count", "exact"),
            "requests": metric(requests, "count", "exact"),
        },
    )
    emit_json("telemetry_overhead", record)

    assert events > requests > 0
    # The <10% gate, through the same budget check 'bench compare' runs.
    over_budget = check_budgets(record)
    assert not over_budget, [item.note for item in over_budget]
