"""Instrumentation overhead: the telemetry-on tax must stay under 10%.

Runs the enhanced+filtered HS1 attack with telemetry off and with the
JSONL sink attached (the most expensive shipped sink: every event is
serialised at emit time), interleaved best-of-N to shrug off scheduler
noise, and asserts the instrumented run costs less than 10% extra wall
time.  The comparison is written to benchmarks/output/.
"""

from __future__ import annotations

import time

from repro.core.api import run_attack
from repro.core.profiler import ProfilerConfig
from repro.telemetry import Telemetry
from repro.worldgen.presets import hs1
from repro.worldgen.world import build_world

from _bench_utils import emit

_ROUNDS = 3
_MAX_OVERHEAD = 0.10
_CONFIG = ProfilerConfig(threshold=500, enhanced=True, filtering=True)


def _attack_once(world, tmp_path, instrumented: bool):
    telemetry = None
    if instrumented:
        telemetry = Telemetry.to_jsonl(
            world.network.clock, str(tmp_path / "overhead.jsonl")
        )
    start = time.perf_counter()
    result = run_attack(world, accounts=2, config=_CONFIG, telemetry=telemetry)
    if telemetry is not None:
        telemetry.close()
    elapsed = time.perf_counter() - start
    # Detach so the next telemetry-off round runs the true fast path.
    world.frontend.set_telemetry(None)
    return elapsed, result, telemetry


def test_telemetry_overhead_under_10_percent(tmp_path):
    world = build_world(hs1())
    _attack_once(world, tmp_path, instrumented=False)  # warm-up

    off_times, on_times = [], []
    events = requests = 0
    for _ in range(_ROUNDS):
        off, _, _ = _attack_once(world, tmp_path, instrumented=False)
        on, result, telemetry = _attack_once(world, tmp_path, instrumented=True)
        off_times.append(off)
        on_times.append(on)
        events = telemetry.event_count
        requests = result.effort.total

    best_off, best_on = min(off_times), min(on_times)
    overhead = best_on / best_off - 1.0

    lines = [
        "Telemetry overhead (HS1, enhanced+filtering, JSONL sink)",
        f"rounds:                {_ROUNDS} (interleaved, best-of)",
        f"requests per run:      {requests}",
        f"events per run:        {events}",
        f"telemetry off (best):  {best_off * 1000:.1f} ms",
        f"telemetry on  (best):  {best_on * 1000:.1f} ms",
        f"overhead:              {overhead * 100:+.1f}% (budget {_MAX_OVERHEAD:.0%})",
    ]
    emit("telemetry_overhead", "\n".join(lines))

    assert events > requests > 0
    assert overhead < _MAX_OVERHEAD
