"""Table 6 (Appendix A): Google+'s default/worst-case visibility.

Unlike Facebook, Google+ minors *may* opt into exposing school, city,
relationship, photos and even phone numbers publicly; defaults are
protective and school search still excludes registered minors.
"""

from repro.analysis.tables import policy_visibility_matrix, render_policy_table
from repro.osn.clock import SimClock
from repro.osn.network import SocialNetwork
from repro.osn.policy import facebook_policy, googleplus_policy
from repro.osn.privacy import PrivacySettings
from repro.osn.profile import Birthday, Name, Profile, SchoolAffiliation

from _bench_utils import emit


def test_table6_googleplus_policy(benchmark):
    matrix = benchmark(lambda: policy_visibility_matrix(googleplus_policy()))
    rows = {row[0]: row[1:] for row in matrix}

    # Name/photo visible everywhere.
    assert rows["Name, Profile Picture"] == (True, True, True, True)
    # Worst-case minors expose school/city/phone/relationship (the
    # paper's key contrast with Facebook).
    for label in (
        "Gender, Employment, HS, Hometown, Current City",
        "Home and Work Phone",
        "Relationship, Looking",
        "Photos",
    ):
        assert rows[label][2], label
        assert not rows[label][0], label  # but defaults stay protective
    # Google+ still lets worst-case minors appear in public search,
    # yet keeps them out of *school* search - verify against the engine.
    net = SocialNetwork(policy=googleplus_policy(), clock=SimClock(2012.25))
    school = net.register_school("G+ High", "Plusville")
    minor = net.register_account(
        profile=Profile(
            name=Name("Gp", "Minor"),
            high_schools=(SchoolAffiliation(school.school_id, school.name, 2014),),
        ),
        registered_birthday=Birthday(1997),
        settings=PrivacySettings.everything_public(),
        enforce_minimum_age=False,
    )
    viewer = net.register_account(
        profile=Profile(name=Name("A", "Dult")), registered_birthday=Birthday(1980)
    )
    _, entries = net.school_search(viewer.user_id, school.school_id)
    assert minor.user_id not in {e.user_id for e in entries}

    emit(
        "table6_googleplus_policy",
        render_policy_table(
            googleplus_policy(),
            "Table 6: Google+ - default and worst-case information "
            "available to strangers",
        ),
    )


def test_googleplus_exposes_more_than_facebook_for_minors(benchmark):
    def count_worst_minor_rows():
        fb = sum(1 for row in policy_visibility_matrix(facebook_policy()) if row[3])
        gp = sum(1 for row in policy_visibility_matrix(googleplus_policy()) if row[3])
        return fb, gp

    fb, gp = benchmark(count_worst_minor_rows)
    assert gp > fb
