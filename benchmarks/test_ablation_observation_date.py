"""Ablation: when in the school year the attacker strikes.

The paper notes "a fraction of the final-year students may be adults,
with the fraction increasing each month in the school year" — late-year
crawls see more genuinely-adult seniors (bigger legitimate cores) while
early-year crawls rely almost purely on liars.  This bench sweeps the
observation date across one school year.
"""

from dataclasses import replace

from repro.analysis.tables import ascii_table
from repro.core.api import run_attack
from repro.core.evaluation import evaluate_full
from repro.core.profiler import ProfilerConfig
from repro.osn.clock import school_class_year
from repro.worldgen.presets import hs1
from repro.worldgen.world import build_world

from _bench_utils import emit

#: September (start of the school year) through June (graduation).
OBSERVATION_DATES = (2011.70, 2012.00, 2012.25, 2012.45)


def test_ablation_observation_date(benchmark):
    def run_date(obs):
        config = replace(hs1(seed=808), observation_year=obs)
        world = build_world(config)
        truth = world.ground_truth()
        now = world.network.clock.now_year
        senior_class = school_class_year(world.network.clock.now_year)
        seniors = truth.student_uids_by_year.get(senior_class, [])
        real_adult_seniors = sum(
            1 for uid in seniors if world.network.users[uid].real_age(now) >= 18.0
        )
        result = run_attack(
            world,
            accounts=2,
            config=ProfilerConfig(threshold=400, enhanced=True, filtering=True),
        )
        return (
            real_adult_seniors,
            len(seniors),
            result.extended_core_size,
            evaluate_full(result, truth, 400),
        )

    runs = benchmark.pedantic(
        lambda: [run_date(obs) for obs in OBSERVATION_DATES], rounds=1, iterations=1
    )

    rows = [
        (
            f"{obs:.2f}",
            f"{adult_seniors}/{seniors}",
            core,
            f"{100 * e.found_fraction:.0f}%",
        )
        for obs, (adult_seniors, seniors, core, e) in zip(OBSERVATION_DATES, runs)
    ]
    emit(
        "ablation_observation_date",
        ascii_table(
            (
                "observation date",
                "genuinely adult seniors",
                "extended core",
                "coverage (t=400)",
            ),
            rows,
            title="Ablation: attack timing across the school year",
        ),
    )

    # All four dates fall in the same school year (class of 2012 is the
    # senior cohort throughout), so the genuinely-adult fraction of the
    # seniors grows monotonically as the year progresses.
    adult_fractions = [adult / max(total, 1) for adult, total, _, _ in runs]
    assert adult_fractions == sorted(adult_fractions)
    # The attack works at every date (the liars, not the seniors, carry it).
    for _, _, _, e in runs:
        assert e.found_fraction > 0.5
