"""Ablation: the contribution of each Section-4.4 filter rule.

Runs the enhanced methodology with all rules, no rules, and each rule
alone.  Expected shape: every individual rule removes some false
positives without destroying coverage; the combination removes the
most at small t.
"""

from repro.analysis.tables import ascii_table
from repro.core.api import run_attack
from repro.core.evaluation import evaluate_full
from repro.core.filtering import ALL_RULES, FilterConfig
from repro.core.profiler import ProfilerConfig

from _bench_utils import emit


def test_ablation_filter_rules(benchmark, hs1_world):
    truth = hs1_world.ground_truth()
    variants = {"all rules": FilterConfig(), "no rules": FilterConfig.none()}
    for rule in ALL_RULES:
        variants[f"only {rule}"] = FilterConfig.only(rule)

    def run_variant(config):
        result = run_attack(
            hs1_world,
            accounts=2,
            config=ProfilerConfig(
                threshold=400, enhanced=True, filtering=True, filter_config=config
            ),
        )
        return result, evaluate_full(result, truth, 200)

    runs = benchmark.pedantic(
        lambda: {name: run_variant(cfg) for name, cfg in variants.items()},
        rounds=1,
        iterations=1,
    )

    rows = [
        (name, len(result.filtered_out), e.found, e.false_positives)
        for name, (result, e) in runs.items()
    ]
    emit(
        "ablation_filters",
        ascii_table(
            ("filter variant", "candidates removed", "found (t=200)", "false positives"),
            rows,
            title="Ablation: Section 4.4 filter rules, one at a time",
        ),
    )

    all_rules = runs["all rules"][1]
    no_rules = runs["no rules"][1]
    # Full filtering cuts false positives at the small threshold...
    assert all_rules.false_positives <= no_rules.false_positives
    # ...without collapsing coverage.
    assert all_rules.found >= 0.85 * no_rules.found
    # Each single rule removes someone and keeps the attack working.
    for rule in ALL_RULES:
        result, e = runs[f"only {rule}"]
        assert len(result.filtered_out) > 0, rule
        assert e.found_fraction > 0.4, rule
