"""Table 4: HS1 found/correct-year grid over four variants x four thresholds.

Shape assertions (the paper's comparative claims):
* the enhanced methodology beats the basic one at small thresholds;
* filtering reduces false positives at t=200;
* its advantage shrinks or reverses by t=500;
* the best variant recovers most of the student body at t=400.
"""

from repro.analysis.tables import render_table4
from repro.core.evaluation import evaluate_full, sweep_full

from _bench_utils import emit

THRESHOLDS = (200, 300, 400, 500)


def test_table4_hs1_grid(benchmark, hs1_world, hs1_runs):
    truth = hs1_world.ground_truth()

    def evaluate_grid():
        return {
            variant: sweep_full(result, truth, THRESHOLDS)
            for variant, result in hs1_runs.items()
        }

    grid = benchmark(evaluate_grid)

    basic = {e.threshold: e for e in grid["Basic methodology without filtering"]}
    enhanced = {e.threshold: e for e in grid["Enhanced methodology without filtering"]}
    enh_filtered = {e.threshold: e for e in grid["Enhanced methodology with filtering"]}

    # Enhanced >= basic at the small threshold.
    assert enhanced[200].found >= basic[200].found
    # Filtering cuts FPs at t=200...
    assert enh_filtered[200].false_positives <= enhanced[200].false_positives
    # ...but its advantage shrinks at t=500 (the paper's crossover).
    gain_small = enhanced[200].false_positives - enh_filtered[200].false_positives
    gain_large = enhanced[500].false_positives - enh_filtered[500].false_positives
    assert gain_large <= gain_small + 10
    # Headline: most of the school at t=400, high year accuracy.
    best = enh_filtered[400]
    assert best.found_fraction > 0.7
    assert best.year_accuracy > 0.85

    m = truth.on_osn_count
    emit(
        "table4_hs1",
        render_table4(grid, THRESHOLDS)
        + f"\n(|M| = {m} HS1 students with accounts)",
    )
