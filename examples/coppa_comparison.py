#!/usr/bin/env python3
"""Section 7: how COPPA's age ban *increases* third-party exposure.

Compares minor discovery in the with-COPPA world (where lying minors
seed the attack) against the without-COPPA heuristic (recent-graduate
cores, minimal-profile filtering), producing the paper's Figure-3
series — and then goes one step further than the paper could: it builds
an actual counterfactual world with no age ban and truthful birth dates
and attacks that directly.

Run:  python examples/coppa_comparison.py
"""

from repro import ProfilerConfig, build_world, hs1, make_client, run_attack
from repro.analysis import figure3, log10_gap_at_matched_coverage, render_figure
from repro.core import (
    natural_approach_points,
    run_natural_approach,
    with_coppa_minimal_points,
)
from repro.core.evaluation import evaluate_full


def main() -> None:
    print("Building the with-COPPA HS1 world...")
    world = build_world(hs1())
    minimal_truth = world.minimal_profile_students()
    current = world.network.clock.current_year
    print(f"  {len(minimal_truth)} students present only minimal profiles")

    print("\nWith-COPPA: the paper's methodology...")
    attack = run_attack(
        world,
        accounts=2,
        config=ProfilerConfig(threshold=500, enhanced=True, filtering=True),
    )
    with_points = with_coppa_minimal_points(attack, minimal_truth, (300, 400, 500))

    print("Without-COPPA heuristic: recent-graduate cores + minimal-profile filter...")
    natural = run_natural_approach(
        make_client(world, 2),
        world.school().school_id,
        [current - 1, current - 2],
    )
    without_points = natural_approach_points(natural, minimal_truth, ns=(1, 2, 3))

    fig = figure3(with_points, without_points)
    print("\n" + render_figure(fig))
    gap = log10_gap_at_matched_coverage(fig)
    print(
        f"\nAt matched coverage, the without-COPPA attacker suffers about "
        f"10^{gap:.1f}x more false positives - the paper's headline result: "
        "the age ban (via lying) made minors MORE discoverable."
    )

    print("\nDirect counterfactual: a world with no age ban and no lying...")
    counter_world = build_world(hs1().without_coppa())
    counter_attack = run_attack(
        counter_world,
        accounts=2,
        config=ProfilerConfig(threshold=500, enhanced=True, filtering=True),
    )
    truth = counter_world.ground_truth()
    e = evaluate_full(counter_attack, truth, 400)
    print(
        f"  the main methodology now finds only {100 * e.found_fraction:.0f}% of "
        f"students (core users: {counter_attack.extended_core_size}, all of them "
        "genuinely adult seniors)."
    )


if __name__ == "__main__":
    main()
