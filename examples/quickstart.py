#!/usr/bin/env python3
"""Quickstart: profile one synthetic high school end to end.

Builds the calibrated HS1 world (a ~360-student private school on a
simulated 2012 Facebook), runs the paper's enhanced methodology with
filtering through the crawlable HTML frontend, and evaluates the result
against ground truth — the experiment of Table 4 / Figure 1 in one page
of code.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import ProfilerConfig, build_world, evaluate_full, hs1, run_attack
from repro.analysis import ascii_table


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 101
    print("Building the HS1 world (synthetic 2012 Facebook)...")
    world = build_world(hs1(seed))
    truth = world.ground_truth()
    school = world.school()
    print(f"  school: {school.name} ({school.city}), "
          f"{truth.enrolled_count} students, {truth.on_osn_count} on the OSN")
    print(f"  students registered as adults (lied about age years ago): "
          f"{len(world.adult_registered_students())}")

    print("\nRunning the attack (enhanced methodology with filtering)...")
    result = run_attack(
        world,
        accounts=2,
        config=ProfilerConfig(threshold=500, enhanced=True, filtering=True),
    )
    print(f"  seeds harvested from the Find Friends Portal: {len(result.seeds)}")
    print(f"  core users (self-identified, public friend lists): "
          f"{result.initial_core_size} -> {result.extended_core_size} after extension")
    print(f"  candidate set (reverse lookup): {len(result.candidates)}")
    print(f"  HTTP GETs spent: {result.effort.total}")

    print("\nEvaluation against confidential ground truth:")
    rows = []
    for t in (200, 300, 400, 500):
        e = evaluate_full(result, truth, t)
        rows.append(
            (
                t,
                f"{100 * e.found_fraction:.0f}%",
                f"{e.found}/{e.correct_year}",
                e.false_positives,
                f"{100 * e.false_positive_rate:.0f}%",
            )
        )
    print(
        ascii_table(
            ("top t", "students found", "found/correct-year", "false pos.", "FP rate"),
            rows,
        )
    )
    e400 = evaluate_full(result, truth, 400)
    print(
        f"\nAt t=400 a stranger recovered {100 * e400.found_fraction:.0f}% of the "
        f"student body,\nclassifying {100 * e400.year_accuracy:.0f}% of them into "
        "the correct graduation year -\ninformation Facebook never exposes for "
        "registered minors."
    )


if __name__ == "__main__":
    main()
