#!/usr/bin/env python3
"""Section 6: extend the inferred students' profiles into dossiers.

After the attack identifies the student body, the third party enriches
each profile: inferred school/year/city/birth-year for everyone,
reverse-lookup friend lists even for registered minors whose pages show
nothing, and the full Table-5 harvest for minors registered as adults.
Also demonstrates the Section-6.1 Jaccard inference of *hidden*
friendships between two registered minors.

Run:  python examples/extended_dossiers.py
"""

from repro import (
    ProfilerConfig,
    build_world,
    build_extended_profiles,
    hs1,
    infer_hidden_links,
    make_client,
    run_attack,
    table5_stats,
)
from repro.analysis import render_table5
from repro.core.extension import registered_minor_friend_average


def main() -> None:
    world = build_world(hs1())
    result = run_attack(
        world,
        accounts=2,
        config=ProfilerConfig(threshold=400, enhanced=True, filtering=True),
    )
    client = make_client(world, 2)
    print("Extending profiles for the inferred student body...")
    extended = build_extended_profiles(result, client, t=400)

    # A few sample dossiers (synthetic people - safe to print).
    minors = [
        p for p in extended.values()
        if not p.appears_registered_adult and p.reverse_friends
    ]
    print(f"\nSample dossiers for registered minors ({len(minors)} built):")
    for profile in minors[:3]:
        print(
            f"  {profile.name}: {profile.school_name}, class of "
            f"{profile.inferred_year}, lives in {profile.inferred_city}, "
            f"born ~{profile.inferred_birth_year}; "
            f"{len(profile.reverse_friends)} school friends recovered via "
            "reverse lookup (their own friend list is hidden)"
        )

    first_three_years = result.core.years[1:]
    count, avg_friends = registered_minor_friend_average(extended, first_three_years)
    print(
        f"\nReverse lookup recovered on average {avg_friends:.0f} friends for each "
        f"of {count} registered minors (paper: 38 for HS1)."
    )

    stats = table5_stats(extended, first_three_years)
    print("\n" + render_table5({"HS1": stats}))

    # Hidden minor-minor friendships via the Jaccard index.
    reverse_sets = {
        uid: p.reverse_friends
        for uid, p in extended.items()
        if not p.appears_registered_adult
    }
    links = infer_hidden_links(reverse_sets, threshold=0.3, min_common=4)
    graph = world.network.graph
    correct = sum(1 for l in links if graph.are_friends(*l.pair))
    print(
        f"\nJaccard inference proposed {len(links)} hidden minor-minor "
        f"friendships; {correct} are real (checked against ground truth)."
    )


if __name__ == "__main__":
    main()
