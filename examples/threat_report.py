#!/usr/bin/env python3
"""Full threat assessment: attack, extend, assess contact vectors, report.

Chains everything: the profiling attack, Section-6 dossier extension,
Section-2 contact-surface assessment (who can a stranger message?), the
friend-based birth-year estimator, and renders a complete markdown
report to ``hs1_threat_report.md``.

Run:  python examples/threat_report.py [output.md]
"""

import sys

from repro import (
    ProfilerConfig,
    build_world,
    build_extended_profiles,
    evaluate_full,
    hs1,
    make_client,
    run_attack,
    sweep_full,
)
from repro.analysis import attack_report_markdown
from repro.core import (
    assess_contactability,
    estimate_birth_years,
    evaluate_age_inference,
)


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "hs1_threat_report.md"

    print("Building world and running the attack...")
    world = build_world(hs1())
    result = run_attack(
        world,
        accounts=2,
        config=ProfilerConfig(threshold=400, enhanced=True, filtering=True),
    )
    client = make_client(world, 2)

    print("Extending profiles and assessing contact vectors...")
    extended = build_extended_profiles(result, client, t=400)
    outreach = assess_contactability(extended)
    print(
        f"  {outreach.directly_messageable} of {outreach.targets} inferred "
        f"students ({100 * outreach.messageable_fraction:.0f}%) are directly "
        "messageable by a stranger"
    )

    print("Estimating birth years (cohort vs friend-based)...")
    estimates = estimate_birth_years(extended)
    age_eval = evaluate_age_inference(estimates, world)
    print(
        f"  cohort estimator: {100 * age_eval.cohort_within_one_year:.0f}% "
        f"within one year of the true birth year "
        f"(friend-based: {100 * age_eval.friend_within_one_year:.0f}%)"
    )

    print("Rendering the report...")
    report = attack_report_markdown(
        result,
        evaluations=sweep_full(result, world.ground_truth(), [200, 300, 400]),
        extended=extended,
        outreach=outreach,
    )
    with open(output_path, "w") as f:
        f.write(report)
    print(f"  wrote {output_path} ({len(report.splitlines())} lines)")

    evaluation = evaluate_full(result, world.ground_truth(), 400)
    print(
        f"\nBottom line: a stranger with two fake accounts recovered "
        f"{100 * evaluation.found_fraction:.0f}% of the student body, built "
        f"{len(extended)} dossiers, and can directly message "
        f"{100 * outreach.messageable_fraction:.0f}% of them."
    )


if __name__ == "__main__":
    main()
