#!/usr/bin/env python3
"""Section 8: quantify the reverse-lookup countermeasure (Figure 4).

If the OSN omits anyone whose own friend list is hidden from every
*other* user's friend list, registered minors can no longer be
discovered through their friends — the attack's coverage collapses.
This script runs the identical attack with the defence off and on.

Run:  python examples/countermeasure_eval.py
"""

from repro import ProfilerConfig, build_world, hs1, run_countermeasure_comparison
from repro.analysis import figure4, render_figure


def main() -> None:
    print("Building the HS1 world...")
    world = build_world(hs1())

    print("Running the attack with and without reverse lookup...")
    report = run_countermeasure_comparison(
        world,
        accounts=2,
        config=ProfilerConfig(enhanced=True, filtering=True, threshold=500),
        thresholds=(200, 250, 300, 350, 400, 450, 500),
    )

    print("\n" + render_figure(figure4(report)))
    last = report.points[-1]
    print(
        f"\nDisabling reverse lookup cuts top-{last.threshold} coverage from "
        f"{last.found_percent_with:.0f}% to {last.found_percent_without:.0f}% "
        f"(paper: 92% -> 33%). Candidate pool shrank from "
        f"{len(report.with_lookup.candidates)} to "
        f"{len(report.without_lookup.candidates)} users."
    )


if __name__ == "__main__":
    main()
