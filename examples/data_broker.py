#!/usr/bin/env python3
"""Section 2's first threat: a data broker pins students to home addresses.

After profiling the school, the broker buys the (synthetic) state voter
file and links each student's last name + inferred city to registered
voters; a same-surname friend who appears in the file — almost
certainly a parent on the friend list — upgrades the match to high
confidence.  Ground truth then scores how often the broker is right.

Run:  python examples/data_broker.py
"""

from collections import Counter

from repro import (
    ProfilerConfig,
    build_world,
    build_extended_profiles,
    hs1,
    make_client,
    run_attack,
)
from repro.core.linkage import evaluate_linkage, link_home_addresses
from repro.worldgen.records import build_voter_registry


def main() -> None:
    world = build_world(hs1())
    print("Profiling the school...")
    result = run_attack(
        world,
        accounts=2,
        config=ProfilerConfig(threshold=400, enhanced=True, filtering=True),
    )
    client = make_client(world, 2)
    extended = build_extended_profiles(result, client, t=400)

    print("Buying the voter file...")
    registry = build_voter_registry(
        world.population, world.config.observation_year, seed=world.config.seed
    )
    print(f"  {len(registry)} registered voters on file")

    # The broker resolves friend names by visiting their (public) pages.
    name_cache: dict[int, str | None] = {}

    def friend_name_of(uid: int) -> str | None:
        if uid not in name_cache:
            view = result.profiles.get(uid) or client.fetch_profile(uid)
            name_cache[uid] = view.name if view else None
        return name_cache[uid]

    print("Linking students to household addresses...")
    linked = link_home_addresses(extended, registry, friend_name_of)

    by_confidence = Counter(
        candidates[0].confidence.value for candidates in linked.values()
    )
    print(f"  students with candidate addresses: {len(linked)}")
    print(f"  best-candidate confidence mix: {dict(by_confidence)}")

    evaluation = evaluate_linkage(linked, world)
    print(
        f"\nOf {evaluation.students_with_known_address} students with a known "
        f"home address, the broker linked {evaluation.linked}; the top candidate "
        f"was the true address for {evaluation.correct_best} "
        f"({100 * evaluation.precision_of_best:.0f}%)."
    )
    if evaluation.high_confidence:
        print(
            f"High-confidence (parent-on-friend-list) links: "
            f"{evaluation.high_confidence}, of which "
            f"{100 * evaluation.high_confidence_precision:.0f}% correct."
        )

    sample = next(
        (
            (uid, cands)
            for uid, cands in linked.items()
            if cands[0].via_friend is not None
        ),
        None,
    )
    if sample:
        uid, cands = sample
        profile = extended[uid]
        print(
            f"\nExample dossier: {profile.name}, class of {profile.inferred_year} "
            f"at {profile.school_name} - likely lives at "
            f"{cands[0].street_address}, {cands[0].city} "
            f"(via friend {cands[0].via_friend})."
        )


if __name__ == "__main__":
    main()
