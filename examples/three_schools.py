#!/usr/bin/env python3
"""Reproduce the paper's three-school study (Tables 2, 3 and Figure 2).

Runs the basic and enhanced methodologies against all three calibrated
school presets — HS1 (small private), HS2 (large suburban), HS3 (large
mid-western) — printing the dataset summary (Table 2), the measurement
effort (Table 3), and, for the large schools, the Section-5.5
partial-ground-truth estimates the paper uses when full ground truth is
unavailable.

Run:  python examples/three_schools.py        (full scale, ~1 min)
      python examples/three_schools.py fast   (HS1 only)
"""

import sys

from repro import (
    ProfilerConfig,
    build_world,
    collect_test_users,
    evaluate_full,
    evaluate_partial,
    hs1,
    hs2,
    hs3,
    make_client,
    run_attack,
)
from repro.analysis import (
    dataset_row,
    effort_row,
    render_table2,
    render_table3,
)


def run_school(label, config, threshold, accounts):
    print(f"\n=== {label}: building world and attacking ===")
    world = build_world(config)
    truth = world.ground_truth()
    basic = run_attack(world, accounts=accounts, config=ProfilerConfig(threshold=threshold))
    enhanced = run_attack(
        world,
        accounts=accounts,
        config=ProfilerConfig(threshold=threshold, enhanced=True, filtering=True),
    )
    return world, truth, basic, enhanced


def main() -> None:
    fast = len(sys.argv) > 1 and sys.argv[1] == "fast"
    plan = [("HS1", hs1(), 400, 2)]
    if not fast:
        plan += [("HS2", hs2(), 1500, 4), ("HS3", hs3(), 1500, 4)]

    table2_rows, table3_rows = [], []
    partial_reports = []
    for label, config, threshold, accounts in plan:
        world, truth, basic, enhanced = run_school(label, config, threshold, accounts)
        table2_rows.append(
            dataset_row(label, enhanced, truth.enrolled_count, truth.on_osn_count)
        )
        table3_rows.append(effort_row(label, basic, enhanced))

        if label == "HS1":
            e = evaluate_full(enhanced, truth, threshold)
            print(
                f"  full ground truth: {100 * e.found_fraction:.0f}% of students found, "
                f"{100 * e.false_positive_rate:.0f}% false positives"
            )
        else:
            # Second, disjoint crawl for test users (Section 5.5).
            client = make_client(world, accounts)
            test_users = collect_test_users(
                client, world.school().school_id, exclude=enhanced.seeds
            )
            if test_users:
                pe = evaluate_partial(
                    enhanced, test_users, truth.enrolled_count, threshold
                )
                partial_reports.append((label, len(test_users), pe))

    print("\n" + render_table2(table2_rows))
    print("\n" + render_table3(table3_rows))

    for label, n_test, pe in partial_reports:
        print(
            f"\n{label} (estimator over {n_test} test users): "
            f"~{pe.found_percent:.0f}% of students found with "
            f"~{pe.false_positive_percent:.0f}% false positives at t={pe.threshold}"
        )


if __name__ == "__main__":
    main()
