"""The typed crawl client: HTML in, structured data out.

:class:`CrawlClient` is the attacker's entire I/O surface.  It wraps the
OSN's HTML frontend with:

* account rotation over the fake-account pool (retiring disabled ones),
* politeness pacing and throttle back-off on the simulated clock,
* per-category request accounting (the Table-3 effort breakdown),
* page parsing (every byte of knowledge the attack has comes out of
  :mod:`repro.osn.pages` parsers — never from simulator internals).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from repro.osn.errors import (
    AccountDisabledError,
    ForbiddenError,
    NotFoundError,
    RateLimitedError,
)
from repro.osn.frontend import HtmlFrontend
from repro.osn.public import DirectoryEntry, School
from repro.osn.pages import (
    parse_action_page,
    parse_friends_page,
    parse_profile_page,
    parse_school_page,
    parse_search_page,
)
from repro.osn.view import ProfileView

from .accounts import AccountPool, NoUsableAccountsError
from .effort import (
    CATEGORY_FRIEND_LISTS,
    CATEGORY_OTHER,
    CATEGORY_PROFILES,
    CATEGORY_SEEDS,
    EffortCounter,
    EffortReport,
)
from .politeness import Pacer, PolitenessPolicy, pacer_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.runtime import Telemetry

_MAX_THROTTLE_RETRIES = 8


class CrawlClient:
    """Fetch, parse and account for pages on behalf of the attacker."""

    def __init__(
        self,
        frontend: HtmlFrontend,
        pool: AccountPool,
        politeness: Optional[PolitenessPolicy] = None,
        counter: Optional[EffortCounter] = None,
        telemetry: Optional["Telemetry"] = None,
        seed: int = 0,
    ) -> None:
        self.frontend = frontend
        self.pool = pool
        self.telemetry = telemetry
        self.seed = seed
        self._politeness = politeness
        self._pacers: Dict[int, Pacer] = {}
        if counter is None:
            counter = EffortCounter(
                registry=telemetry.registry if telemetry is not None else None
            )
        self.counter = counter

    def pacer_for(self, account_id: int) -> Pacer:
        """The per-account pacer, created on first use.

        Pacing state (jitter RNG, backoff streak, sleep total) is keyed
        per account so concurrent sessions never share it.  Each pacer
        draws jitter from its own ``pacer_rng(seed, account_id)``
        stream — multi-account runs stay deterministic regardless of
        how requests interleave across accounts, and the stream depends
        only on the crawl seed and the account id, never on pool size.
        """
        pacer = self._pacers.get(account_id)
        if pacer is None:
            pacer = Pacer(
                self.frontend.clock,
                self._politeness,
                rng=pacer_rng(self.seed, account_id),
                telemetry=self.telemetry,
            )
            self._pacers[account_id] = pacer  # repro-lint: shared(CrawlClient) -- first-use registry insert; pacing state lives on the per-account object
        return pacer

    # ------------------------------------------------------------------
    # Transport with rotation / back-off
    # ------------------------------------------------------------------
    def _get(
        self,
        path: str,
        params: Optional[Mapping[str, str]],
        category: str,
        account_id: Optional[int] = None,
    ) -> str:
        """One logical GET: paces, rotates accounts, retries throttles."""
        return self._transport(False, path, params, category, account_id)

    def _post(
        self,
        path: str,
        params: Optional[Mapping[str, str]],
        category: str,
        account_id: Optional[int] = None,
    ) -> str:
        """One logical POST (state-changing action), same pacing rules."""
        return self._transport(True, path, params, category, account_id)

    def _transport(
        self,
        write: bool,
        path: str,
        params: Optional[Mapping[str, str]],
        category: str,
        account_id: Optional[int] = None,
    ) -> str:
        telemetry = self.telemetry
        throttles = 0
        while True:
            chosen = account_id if account_id is not None else self.pool.next()
            pacer = self.pacer_for(chosen)
            pacer.before_request()
            try:
                if write:
                    page = self.frontend.post(chosen, path, params)
                else:
                    page = self.frontend.get(chosen, path, params)
            except RateLimitedError as exc:
                throttles += 1
                if throttles > _MAX_THROTTLE_RETRIES:
                    if telemetry is not None:
                        telemetry.emit(
                            "retry_exhausted",
                            account=chosen,
                            path=path,
                            category=category,
                            throttles=throttles,
                        )
                    raise
                slept = pacer.on_throttle(exc.retry_after)
                if telemetry is not None:
                    telemetry.emit(
                        "throttle",
                        account=chosen,
                        category=category,
                        retry_after=exc.retry_after,
                        slept=slept,
                    )
                continue
            except AccountDisabledError:
                self.pool.mark_disabled(chosen)
                rotated = account_id is None and bool(self.pool.usable)
                if telemetry is not None:
                    telemetry.emit(
                        "account_lost",
                        account=chosen,
                        pinned=account_id is not None,
                        rotated=rotated,
                    )
                if not rotated:
                    raise
                continue
            self.counter.record(category, chosen)
            if telemetry is not None:
                telemetry.emit(
                    "request", account=chosen, category=category, path=path
                )
            pacer.on_success()
            return page

    # ------------------------------------------------------------------
    # Seed collection (Step 1)
    # ------------------------------------------------------------------
    def collect_seeds(
        self,
        school_id: int,
        accounts: Optional[List[int]] = None,
        max_pages_per_account: int = 100,
    ) -> Dict[int, str]:
        """Harvest the seed set S from the Find Friends Portal.

        Scrolls every results page (AJAX-style offsets) from each crawl
        account; different accounts receive different truncated samples,
        so the union grows with the number of accounts (paper, Section
        3.1).  Returns uid -> display name.
        """
        seeds: Dict[int, str] = {}
        for account_id in accounts if accounts is not None else self.pool.usable:
            offset = 0
            for _ in range(max_pages_per_account):
                page = self._get(
                    "/find-friends/browser",
                    {"school": str(school_id), "offset": str(offset)},
                    CATEGORY_SEEDS,
                    account_id=account_id,
                )
                listing = parse_search_page(page)
                for entry in listing.entries:
                    seeds[entry.user_id] = entry.name
                if listing.next_offset is None:
                    break
                offset = listing.next_offset
        return seeds

    def collect_seeds_graph_search(
        self,
        school_id: int,
        years: Optional[List[int]] = None,
    ) -> Dict[int, str]:
        """Harvest seeds via Graph Search instead of the portal.

        Issues one unconstrained query plus one "studied at X in YEAR"
        query per requested year (Graph Search caps each result set, so
        year refinements surface users the broad query truncated away).
        """
        seeds: Dict[int, str] = {}
        queries: List[Dict[str, str]] = [{"school": str(school_id)}]
        for year in years or ():
            queries.append(
                {"school": str(school_id), "year_op": "in", "year": str(year)}
            )
        for params in queries:
            page = self._get("/graphsearch", params, CATEGORY_SEEDS)
            for entry in parse_search_page(page).entries:
                seeds[entry.user_id] = entry.name
        return seeds

    # ------------------------------------------------------------------
    # Profiles (Steps 2 and the enhanced methodology)
    # ------------------------------------------------------------------
    def fetch_profile(self, user_id: int) -> Optional[ProfileView]:
        """Download and parse one public profile; ``None`` if gone."""
        try:
            page = self._get(f"/profile/{user_id}", None, CATEGORY_PROFILES)
        except NotFoundError:
            return None
        return parse_profile_page(page)

    # ------------------------------------------------------------------
    # Friend lists (Step 3; paginated, p=20 per request)
    # ------------------------------------------------------------------
    def fetch_friend_list(
        self, user_id: int, max_pages: int = 200
    ) -> Optional[List[DirectoryEntry]]:
        """Download a full friend list, page by page.

        Returns ``None`` when the list is not visible to a stranger —
        the distinction between the paper's C' and core set C.
        """
        entries: List[DirectoryEntry] = []
        offset = 0
        for _ in range(max_pages):
            try:
                page = self._get(
                    f"/profile/{user_id}/friends",
                    {"offset": str(offset)},
                    CATEGORY_FRIEND_LISTS,
                )
            except ForbiddenError:
                return None
            listing = parse_friends_page(page)
            entries.extend(listing.entries)
            if listing.next_offset is None:
                break
            offset = listing.next_offset
        return entries

    # ------------------------------------------------------------------
    # Contact surfaces (Section 2 threat quantification)
    # ------------------------------------------------------------------
    def send_message(self, user_id: int, text: str) -> bool:
        """Attempt a direct message; ``False`` when policy forbids it."""
        try:
            self._post(
                "/messages/send",
                {"to": str(user_id), "text": text},
                CATEGORY_OTHER,
            )
        except ForbiddenError:
            return False
        return True

    def send_friend_request(self, user_id: int) -> bool:
        """Send a friend request; ``False`` if one was already pending."""
        page = self._post(
            "/friend-request", {"to": str(user_id)}, CATEGORY_OTHER
        )
        kind, _ = parse_action_page(page)
        return kind == "friend-request-sent"

    # ------------------------------------------------------------------
    # Directory
    # ------------------------------------------------------------------
    def fetch_school(self, school_id: int) -> School:
        """Look up a school's directory entry (name, city, size hint)."""
        page = self._get(f"/school/{school_id}", None, CATEGORY_OTHER)
        return parse_school_page(page)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def effort_report(self) -> EffortReport:
        return self.counter.report()
