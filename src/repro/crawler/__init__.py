"""Crawler framework: the attacker's I/O layer.

Fake-account pool, polite paced transport with throttle back-off,
typed page fetchers (seeds, profiles, paginated friend lists), request
accounting matching the paper's Table-3 effort categories, and a SQLite
store for everything observed.
"""

from .accounts import AccountPool, NoUsableAccountsError
from .client import CrawlClient
from .effort import (
    CATEGORY_FRIEND_LISTS,
    CATEGORY_OTHER,
    CATEGORY_PROFILES,
    CATEGORY_SEEDS,
    EffortCounter,
    EffortReport,
    predicted_requests,
)
from .politeness import Pacer, PolitenessPolicy
from .storage import CrawlStore

__all__ = [
    "AccountPool",
    "CATEGORY_FRIEND_LISTS",
    "CATEGORY_OTHER",
    "CATEGORY_PROFILES",
    "CATEGORY_SEEDS",
    "CrawlClient",
    "CrawlStore",
    "EffortCounter",
    "EffortReport",
    "NoUsableAccountsError",
    "Pacer",
    "PolitenessPolicy",
    "predicted_requests",
]
