"""The async multi-account crawl engine on simulated time.

The paper's crawl is bounded by politeness, not bandwidth: every
request is preceded by a multi-second "sleeping function" (Section
3.2), so one account takes hours per school.  Running several crawl
accounts *concurrently* overlaps those waits — eight accounts pay the
same per-request delays but interleave them, cutting simulated
wall-time roughly eightfold at equal request budgets.

:class:`CrawlScheduler` drives a pool of accounts through a shared
work queue with asyncio, while :class:`TurnDispatcher` keeps the run
**deterministic**: instead of real timers, every ``await
turns.sleep(d)`` parks the session on a heap keyed by its simulated
wake-up instant, and the dispatcher only releases the earliest
sleeper(s) once every session is parked — advancing the shared
:class:`~repro.osn.clock.SimClock` with
:meth:`~repro.osn.clock.SimClock.advance_to` (summing per-session
sleeps would double-count the overlapped waits, which is the whole
point of concurrency).  Exactly one session runs between scheduling
points, so the visit order, effort counters and parsed results are a
pure function of (world seed, crawl seed, pool, plan) — reruns are
bit-identical, and the ``jobs`` knob (how many same-instant wake-ups
are released per turn) provably cannot change results, only batch
tie-broken resumptions.

Result-set invariance across pool sizes: seed harvesting is pinned to
the first ``harvest_accounts`` accounts of the sorted pool (portal
samples are per-account, so harvesting from *more* accounts would grow
the seed set), and the profile/friend-list queue is built from the
sorted seed set truncated at ``max_profiles`` — so pools of 1, 4 and 8
accounts visit the same pages and spend the same per-category effort,
they just overlap the waits.

Everything here speaks the :class:`~repro.crawler.client.CrawlClient`
vocabulary — per-account pacers, the Table-3 effort counter, the HTML
parsers — so the engine observes exactly what a single-account crawl
observes, never simulator internals.
"""

from __future__ import annotations

import asyncio
import heapq
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Coroutine,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.osn.clock import SimClock
from repro.osn.errors import (
    AccountDisabledError,
    ForbiddenError,
    NotFoundError,
    RateLimitedError,
)
from repro.osn.pages import (
    parse_friends_page,
    parse_profile_page,
    parse_search_page,
)
from repro.osn.public import DirectoryEntry
from repro.osn.view import ProfileView

from .client import CrawlClient, _MAX_THROTTLE_RETRIES
from .effort import (
    CATEGORY_FRIEND_LISTS,
    CATEGORY_PROFILES,
    CATEGORY_SEEDS,
    EffortReport,
)

_Worker = Coroutine[Any, Any, None]


class TurnDispatcher:
    """Deterministic turn-taking over a shared :class:`SimClock`.

    Sessions call :meth:`sleep`; the dispatcher wakes the earliest
    sleeper only when *no* session is runnable, advancing the clock to
    that wake instant.  ``jobs`` caps how many sleepers sharing one
    wake instant are released per turn — released sessions still run
    their synchronous segments one at a time (asyncio resumes futures
    in release order), so results are identical for every ``jobs``
    value; it exists to batch tie-broken resumptions.
    """

    def __init__(self, clock: SimClock, jobs: int = 1) -> None:
        self.clock = clock
        self.jobs = max(1, int(jobs))
        self._heap: List[Tuple[float, int, "asyncio.Future[None]"]] = []
        self._seq = 0
        self._active = 0

    def register(self) -> None:
        """Declare one runnable session (call before it starts)."""
        self._active += 1

    def finish(self) -> None:
        """Retire a session; may hand the turn to a sleeper."""
        self._active -= 1
        self._pump()

    async def sleep(self, seconds: float) -> None:
        """Park the calling session until its simulated wake instant."""
        future: "asyncio.Future[None]" = (
            asyncio.get_running_loop().create_future()
        )
        wake = self.clock.seconds() + max(0.0, float(seconds))
        heapq.heappush(self._heap, (wake, self._seq, future))
        self._seq += 1
        self._active -= 1
        self._pump()
        await future

    def _pump(self) -> None:
        """Release the earliest sleeper(s) once everyone is parked."""
        while self._active == 0 and self._heap:
            wake, _, future = heapq.heappop(self._heap)
            released: List["asyncio.Future[None]"] = []
            if not future.done():
                released.append(future)
            while (
                len(released) < self.jobs
                and self._heap
                and self._heap[0][0] == wake
            ):
                _, _, tied = heapq.heappop(self._heap)
                if not tied.done():
                    released.append(tied)
            if wake > self.clock.seconds():
                self.clock.advance_to(wake)
            self._active += len(released)
            for woken in released:
                woken.set_result(None)


@dataclass(frozen=True)
class CrawlPlan:
    """What to crawl and how much of it (the run's budget knobs).

    ``max_profiles`` is the budget: the seed set is sorted and
    truncated there before the fetch phase, which is what keeps result
    sets identical across pool sizes at equal budgets.
    ``harvest_accounts`` pins seed harvesting to the first N accounts
    of the sorted pool for the same reason.
    """

    school_id: int
    harvest_accounts: int = 1
    max_pages_per_account: int = 100
    max_profiles: Optional[int] = None
    fetch_friend_lists: bool = True
    max_friend_pages: int = 200


class _RunState:
    """All mutable engine state, threaded through the workers.

    Lives in a parameter object (never on the scheduler) so async
    workers share it explicitly; within a run the dispatcher serialises
    every access — exactly one session executes between awaits.
    """

    def __init__(self) -> None:
        self.seeds: Dict[int, str] = {}
        self.profiles: Dict[int, Optional[ProfileView]] = {}
        self.friend_lists: Dict[int, Optional[List[DirectoryEntry]]] = {}
        self.visit_order: List[Tuple[Any, ...]] = []
        self.pages = 0
        self.pages_by_account: Dict[int, int] = {}
        self.work: Deque[Tuple[str, int]] = deque()


@dataclass
class CrawlRunResult:
    """Everything a scheduler run produced, plus its cost."""

    seeds: Dict[int, str]
    profiles: Dict[int, Optional[ProfileView]]
    friend_lists: Dict[int, Optional[List[DirectoryEntry]]]
    #: successful page fetches in execution order (deterministic).
    visit_order: List[Tuple[Any, ...]]
    effort: EffortReport
    sim_seconds: float
    pages: int
    pages_by_account: Dict[int, int]
    cache_stats: Optional[Dict[str, float]] = None

    @property
    def pages_per_sim_second(self) -> float:
        return self.pages / self.sim_seconds if self.sim_seconds else 0.0

    def result_signature(self) -> Tuple[Any, ...]:
        """Order-insensitive digest of *what* was crawled.

        Equal signatures mean identical crawl result sets — same seeds,
        same parsed profile views, same friend-list contents — which is
        the invariant benches assert across pool sizes and serve modes.
        """
        return (
            tuple(sorted(self.seeds.items())),
            tuple(sorted(self.profiles.items())),
            tuple(
                (uid, None if entries is None else tuple(entries))
                for uid, entries in sorted(self.friend_lists.items())
            ),
        )


async def _guarded(turns: TurnDispatcher, worker: _Worker) -> None:
    try:
        await worker
    finally:
        turns.finish()


class CrawlScheduler:
    """Run one school crawl concurrently over the client's account pool."""

    def __init__(self, client: CrawlClient, plan: CrawlPlan, jobs: int = 1) -> None:
        self.client = client
        self.plan = plan
        self.jobs = jobs

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def run(self) -> CrawlRunResult:
        """Harvest seeds, then drain the profile/friend-list queue."""
        client = self.client
        plan = self.plan
        clock = client.frontend.clock
        start = clock.seconds()
        state = _RunState()

        pool = sorted(client.pool.account_ids)
        harvesters = pool[: max(1, plan.harvest_accounts)]
        self._run_phase(
            lambda turns: [
                self._harvest(turns, state, account_id, plan.school_id)
                for account_id in harvesters
            ]
        )

        targets = sorted(state.seeds)
        if plan.max_profiles is not None:
            targets = targets[: plan.max_profiles]
        work: List[Tuple[str, int]] = [("profile", uid) for uid in targets]
        if plan.fetch_friend_lists:
            work.extend(("friends", uid) for uid in targets)
        state.work = deque(work)
        self._run_phase(
            lambda turns: [
                self._drain(turns, state, account_id) for account_id in pool
            ]
        )

        cache = client.frontend.cache
        return CrawlRunResult(
            seeds=dict(state.seeds),
            profiles=dict(state.profiles),
            friend_lists=dict(state.friend_lists),
            visit_order=list(state.visit_order),
            effort=client.effort_report(),
            sim_seconds=clock.seconds() - start,
            pages=state.pages,
            pages_by_account=dict(state.pages_by_account),
            cache_stats=cache.stats() if cache is not None else None,
        )

    def _run_phase(
        self, make_workers: Callable[[TurnDispatcher], List[_Worker]]
    ) -> None:
        """One barrier phase: spawn workers, await them all."""
        clock = self.client.frontend.clock
        jobs = self.jobs

        async def phase() -> None:
            turns = TurnDispatcher(clock, jobs)
            workers = make_workers(turns)
            for _ in workers:
                turns.register()
            outcomes = await asyncio.gather(
                *(_guarded(turns, worker) for worker in workers),
                return_exceptions=True,
            )
            for outcome in outcomes:
                if isinstance(outcome, BaseException):
                    raise outcome

        asyncio.run(phase())

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _harvest(
        self,
        turns: TurnDispatcher,
        state: _RunState,
        account_id: int,
        school_id: int,
    ) -> None:
        """Scroll the Find Friends Portal from one pinned account."""
        offset = 0
        for _ in range(self.plan.max_pages_per_account):
            page = await self._fetch(
                turns,
                state,
                account_id,
                "/find-friends/browser",
                {"school": str(school_id), "offset": str(offset)},
                CATEGORY_SEEDS,
            )
            listing = parse_search_page(page)
            for entry in listing.entries:
                state.seeds[entry.user_id] = entry.name
            state.visit_order.append(("seeds", account_id, offset))
            if listing.next_offset is None:
                break
            offset = listing.next_offset

    async def _drain(
        self, turns: TurnDispatcher, state: _RunState, account_id: int
    ) -> None:
        """Pull queue items until the shared deque is empty."""
        work = state.work
        while work:
            kind, uid = work.popleft()
            if kind == "profile":
                await self._fetch_profile(turns, state, account_id, uid)
            else:
                await self._fetch_friends(turns, state, account_id, uid)

    async def _fetch_profile(
        self,
        turns: TurnDispatcher,
        state: _RunState,
        account_id: int,
        user_id: int,
    ) -> None:
        try:
            page = await self._fetch(
                turns,
                state,
                account_id,
                f"/profile/{user_id}",
                None,
                CATEGORY_PROFILES,
            )
        except NotFoundError:
            state.profiles[user_id] = None
            return
        state.profiles[user_id] = parse_profile_page(page)
        state.visit_order.append(("profile", account_id, user_id))

    async def _fetch_friends(
        self,
        turns: TurnDispatcher,
        state: _RunState,
        account_id: int,
        user_id: int,
    ) -> None:
        entries: List[DirectoryEntry] = []
        offset = 0
        for _ in range(self.plan.max_friend_pages):
            try:
                page = await self._fetch(
                    turns,
                    state,
                    account_id,
                    f"/profile/{user_id}/friends",
                    {"offset": str(offset)},
                    CATEGORY_FRIEND_LISTS,
                )
            except ForbiddenError:
                state.friend_lists[user_id] = None
                return
            listing = parse_friends_page(page)
            entries.extend(listing.entries)
            state.visit_order.append(("friends", account_id, user_id, offset))
            if listing.next_offset is None:
                break
            offset = listing.next_offset
        state.friend_lists[user_id] = entries

    # ------------------------------------------------------------------
    # Transport (CrawlClient._transport semantics on cooperative time)
    # ------------------------------------------------------------------
    async def _fetch(
        self,
        turns: TurnDispatcher,
        state: _RunState,
        account_id: int,
        path: str,
        params: Optional[Dict[str, str]],
        category: str,
    ) -> str:
        """One logical GET: polite delay, throttle back-off, accounting.

        Mirrors ``CrawlClient._transport`` exactly — same pacer draws,
        same retry ceiling, same effort recording — except sleeps park
        the session on the dispatcher instead of summing onto the
        clock, so concurrent sessions overlap their waits.
        """
        client = self.client
        pacer = client.pacer_for(account_id)
        throttles = 0
        while True:
            delay = pacer.next_polite_delay()
            pacer.note_slept(delay, "polite")
            await turns.sleep(delay)
            try:
                page = client.frontend.get(account_id, path, params)
            except RateLimitedError as exc:
                throttles += 1
                if throttles > _MAX_THROTTLE_RETRIES:
                    raise
                penalty = pacer.next_throttle_penalty(exc.retry_after)
                pacer.note_slept(penalty, "throttle")
                await turns.sleep(penalty)
                continue
            except AccountDisabledError:
                client.pool.mark_disabled(account_id)
                raise
            client.counter.record(category, account_id)
            pacer.on_success()
            state.pages += 1
            state.pages_by_account[account_id] = (
                state.pages_by_account.get(account_id, 0) + 1
            )
            return page
