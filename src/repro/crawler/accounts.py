"""The attacker's pool of fake crawl accounts.

The paper's script "takes as input the target high school's Facebook
ID, a username and password for a fake account" and uses several
accounts for the larger schools (2 for HS1, 4 each for HS2/HS3).  The
pool hands out accounts round-robin and retires any the site disables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from repro.osn.errors import AccountDisabledError


class NoUsableAccountsError(RuntimeError):
    """Every crawl account has been disabled by the site."""


@dataclass
class AccountPool:
    """Round-robin rotation over fake account user ids."""

    account_ids: List[int]
    _disabled: set[int] = field(default_factory=set)
    _cursor: int = 0

    def __post_init__(self) -> None:
        if not self.account_ids:
            raise ValueError("account pool cannot be empty")
        if len(set(self.account_ids)) != len(self.account_ids):
            raise ValueError("duplicate account ids in pool")

    @property
    def usable(self) -> List[int]:
        return [a for a in self.account_ids if a not in self._disabled]

    @property
    def size(self) -> int:
        return len(self.account_ids)

    def next(self) -> int:
        """The next usable account, rotating fairly."""
        usable = self.usable
        if not usable:
            raise NoUsableAccountsError("all crawl accounts disabled")
        account = usable[self._cursor % len(usable)]
        self._cursor += 1  # repro-lint: shared(AccountPool) -- rotation cursor is deliberately session-global so concurrent sessions fan out over the pool
        return account

    def mark_disabled(self, account_id: int) -> None:
        self._disabled.add(account_id)  # repro-lint: shared(AccountPool) -- losing an account must retire it for every session, not just the one that tripped the ban

    def is_disabled(self, account_id: int) -> bool:
        return account_id in self._disabled

    def each_usable(self) -> Iterator[int]:
        """Iterate once over the currently usable accounts."""
        yield from self.usable

    @classmethod
    def of(cls, account_ids: Sequence[int]) -> "AccountPool":
        return cls(list(account_ids))
