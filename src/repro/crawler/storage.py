"""SQLite persistence for crawled data.

The paper stored parsed page data in an SQL database (Section 3.2); we
do the same so an interrupted crawl can resume and the analysis stage
can run offline.  Profile views are stored as JSON documents plus a few
indexed columns; friend lists and seed sets are relational.

The store works on-disk or fully in memory (``path=":memory:"``).
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import asdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.osn.public import DirectoryEntry, Gender, SchoolAffiliation
from repro.osn.view import ProfileView, WallPostView

_SCHEMA = """
CREATE TABLE IF NOT EXISTS profiles (
    user_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    school_id INTEGER,
    graduation_year INTEGER,
    friend_list_visible INTEGER NOT NULL,
    is_minimal INTEGER NOT NULL,
    document TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS friendships (
    owner_id INTEGER NOT NULL,
    friend_id INTEGER NOT NULL,
    friend_name TEXT NOT NULL,
    PRIMARY KEY (owner_id, friend_id)
);
CREATE TABLE IF NOT EXISTS seeds (
    school_id INTEGER NOT NULL,
    user_id INTEGER NOT NULL,
    name TEXT NOT NULL,
    PRIMARY KEY (school_id, user_id)
);
CREATE INDEX IF NOT EXISTS idx_friend ON friendships(friend_id);
CREATE INDEX IF NOT EXISTS idx_profile_school ON profiles(school_id, graduation_year);
"""


def _view_to_json(view: ProfileView) -> str:
    doc = asdict(view)
    doc["gender"] = view.gender.value if view.gender is not None else None
    doc["high_schools"] = [
        {
            "school_id": a.school_id,
            "school_name": a.school_name,
            "graduation_year": a.graduation_year,
        }
        for a in view.high_schools
    ]
    doc["wall_posts"] = [
        {"author_id": p.author_id, "text": p.text} for p in view.wall_posts
    ]
    return json.dumps(doc)


def _view_from_json(document: str) -> ProfileView:
    doc = json.loads(document)
    doc["gender"] = Gender(doc["gender"]) if doc["gender"] else None
    doc["networks"] = tuple(doc["networks"])
    doc["high_schools"] = tuple(
        SchoolAffiliation(a["school_id"], a["school_name"], a["graduation_year"])
        for a in doc["high_schools"]
    )
    doc["wall_posts"] = tuple(
        WallPostView(p["author_id"], p["text"]) for p in doc.get("wall_posts", [])
    )
    return ProfileView(**doc)


class CrawlStore:
    """A SQLite-backed store of everything the crawl observed."""

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CrawlStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    def save_profile(self, view: ProfileView, target_school_id: Optional[int] = None) -> None:
        affiliation = None
        if target_school_id is not None:
            affiliation = next(
                (a for a in view.high_schools if a.school_id == target_school_id), None
            )
        elif view.high_schools:
            affiliation = view.high_schools[-1]
        self._conn.execute(
            "INSERT OR REPLACE INTO profiles VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                view.user_id,
                view.name,
                affiliation.school_id if affiliation else None,
                affiliation.graduation_year if affiliation else None,
                int(view.friend_list_visible),
                int(view.is_minimal()),
                _view_to_json(view),
            ),
        )
        self._conn.commit()

    def save_profiles(
        self, views: Iterable[ProfileView], target_school_id: Optional[int] = None
    ) -> None:
        for view in views:
            self.save_profile(view, target_school_id)

    def load_profile(self, user_id: int) -> Optional[ProfileView]:
        row = self._conn.execute(
            "SELECT document FROM profiles WHERE user_id = ?", (user_id,)
        ).fetchone()
        return _view_from_json(row[0]) if row else None

    def profile_count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM profiles").fetchone()[0]

    def profiles_claiming_school(
        self, school_id: int, min_year: Optional[int] = None
    ) -> List[ProfileView]:
        """Profiles listing ``school_id`` (optionally with year >= min_year)."""
        if min_year is None:
            rows = self._conn.execute(
                "SELECT document FROM profiles WHERE school_id = ?", (school_id,)
            )
        else:
            rows = self._conn.execute(
                "SELECT document FROM profiles WHERE school_id = ? "
                "AND graduation_year >= ?",
                (school_id, min_year),
            )
        return [_view_from_json(r[0]) for r in rows]

    # ------------------------------------------------------------------
    # Friend lists
    # ------------------------------------------------------------------
    def save_friend_list(self, owner_id: int, entries: Sequence[DirectoryEntry]) -> None:
        self._conn.executemany(
            "INSERT OR REPLACE INTO friendships VALUES (?, ?, ?)",
            [(owner_id, e.user_id, e.name) for e in entries],
        )
        self._conn.commit()

    def load_friend_list(self, owner_id: int) -> List[DirectoryEntry]:
        rows = self._conn.execute(
            "SELECT friend_id, friend_name FROM friendships WHERE owner_id = ? "
            "ORDER BY friend_id",
            (owner_id,),
        )
        return [DirectoryEntry(uid, name) for uid, name in rows]

    def owners_with_friend_lists(self) -> Set[int]:
        rows = self._conn.execute("SELECT DISTINCT owner_id FROM friendships")
        return {r[0] for r in rows}

    def reverse_lookup(self, friend_id: int) -> List[int]:
        """Owners whose stored friend lists contain ``friend_id``."""
        rows = self._conn.execute(
            "SELECT owner_id FROM friendships WHERE friend_id = ? ORDER BY owner_id",
            (friend_id,),
        )
        return [r[0] for r in rows]

    def friendship_count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM friendships").fetchone()[0]

    # ------------------------------------------------------------------
    # Seeds
    # ------------------------------------------------------------------
    def save_seeds(self, school_id: int, seeds: Dict[int, str]) -> None:
        self._conn.executemany(
            "INSERT OR REPLACE INTO seeds VALUES (?, ?, ?)",
            [(school_id, uid, name) for uid, name in seeds.items()],
        )
        self._conn.commit()

    def load_seeds(self, school_id: int) -> Dict[int, str]:
        rows = self._conn.execute(
            "SELECT user_id, name FROM seeds WHERE school_id = ?", (school_id,)
        )
        return {uid: name for uid, name in rows}
