"""Measurement-effort accounting (paper, Section 4.5 and Table 3).

Anti-crawling defences make the number of HTTP GETs the attack's real
cost.  The paper decomposes effort as ``A·R + |S| + |C|·f/p``: requests
to gather seeds, requests for profile pages, and requests for paginated
friend lists.  :class:`EffortCounter` measures the same categories from
the live request stream, so Table 3 can be regenerated from observed
counts, and :func:`predicted_requests` implements the analytic formula
for cross-checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


#: Request categories matching Table 3's columns.
CATEGORY_SEEDS = "seeds"
CATEGORY_PROFILES = "profiles"
CATEGORY_FRIEND_LISTS = "friend_lists"
CATEGORY_OTHER = "other"

_CATEGORIES = (CATEGORY_SEEDS, CATEGORY_PROFILES, CATEGORY_FRIEND_LISTS, CATEGORY_OTHER)


@dataclass
class EffortReport:
    """A frozen summary of crawl effort, one row of Table 3."""

    accounts_used: int
    seed_requests: int
    profile_requests: int
    friend_list_requests: int
    other_requests: int = 0

    @property
    def total(self) -> int:
        return (
            self.seed_requests
            + self.profile_requests
            + self.friend_list_requests
            + self.other_requests
        )

    def __add__(self, other: "EffortReport") -> "EffortReport":
        return EffortReport(
            accounts_used=max(self.accounts_used, other.accounts_used),
            seed_requests=self.seed_requests + other.seed_requests,
            profile_requests=self.profile_requests + other.profile_requests,
            friend_list_requests=self.friend_list_requests + other.friend_list_requests,
            other_requests=self.other_requests + other.other_requests,
        )


class EffortCounter:
    """Counts HTTP GETs by category as the crawl proceeds."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {c: 0 for c in _CATEGORIES}
        self._accounts: set[int] = set()

    def record(self, category: str, account_id: int) -> None:
        if category not in self._counts:
            category = CATEGORY_OTHER
        self._counts[category] += 1
        self._accounts.add(account_id)

    def count(self, category: str) -> int:
        return self._counts.get(category, 0)

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def report(self) -> EffortReport:
        return EffortReport(
            accounts_used=len(self._accounts),
            seed_requests=self._counts[CATEGORY_SEEDS],
            profile_requests=self._counts[CATEGORY_PROFILES],
            friend_list_requests=self._counts[CATEGORY_FRIEND_LISTS],
            other_requests=self._counts[CATEGORY_OTHER],
        )


def predicted_requests(
    accounts: int,
    requests_per_account_for_seeds: float,
    seed_count: int,
    core_size: int,
    mean_friends: float,
    page_size: int = 20,
) -> float:
    """The paper's analytic effort estimate ``A·R + |S| + |C|·f/p``."""
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    return (
        accounts * requests_per_account_for_seeds
        + seed_count
        + core_size * (mean_friends / page_size)
    )
