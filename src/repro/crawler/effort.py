"""Measurement-effort accounting (paper, Section 4.5 and Table 3).

Anti-crawling defences make the number of HTTP GETs the attack's real
cost.  The paper decomposes effort as ``A·R + |S| + |C|·f/p``: requests
to gather seeds, requests for profile pages, and requests for paginated
friend lists.  :class:`EffortCounter` measures the same categories from
the live request stream, so Table 3 can be regenerated from observed
counts, and :func:`predicted_requests` implements the analytic formula
for cross-checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.telemetry.metrics import MetricsRegistry


#: Request categories matching Table 3's columns.
CATEGORY_SEEDS = "seeds"
CATEGORY_PROFILES = "profiles"
CATEGORY_FRIEND_LISTS = "friend_lists"
CATEGORY_OTHER = "other"

_CATEGORIES = (CATEGORY_SEEDS, CATEGORY_PROFILES, CATEGORY_FRIEND_LISTS, CATEGORY_OTHER)


@dataclass
class EffortReport:
    """A frozen summary of crawl effort, one row of Table 3."""

    accounts_used: int
    seed_requests: int
    profile_requests: int
    friend_list_requests: int
    other_requests: int = 0

    @property
    def total(self) -> int:
        return (
            self.seed_requests
            + self.profile_requests
            + self.friend_list_requests
            + self.other_requests
        )

    def __add__(self, other: "EffortReport") -> "EffortReport":
        return EffortReport(
            accounts_used=max(self.accounts_used, other.accounts_used),
            seed_requests=self.seed_requests + other.seed_requests,
            profile_requests=self.profile_requests + other.profile_requests,
            friend_list_requests=self.friend_list_requests + other.friend_list_requests,
            other_requests=self.other_requests + other.other_requests,
        )


class EffortCounter:
    """Counts HTTP GETs by category as the crawl proceeds.

    Implemented on the telemetry metrics model: the per-category and
    per-account tallies live in label-keyed counter families, so a
    crawl session that shares its :class:`MetricsRegistry` (via
    ``EffortCounter(registry=telemetry.registry)``) exposes Table 3
    through the same registry the rest of the pipeline reports into —
    one source of truth for the effort numbers.  Without a registry the
    counter owns a private one and behaves exactly as before.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter(
            "crawl_requests_total",
            "Successful crawl GETs by Table-3 category",
            labelnames=("category",),
        )
        self._account_requests = self.registry.counter(
            "crawl_account_requests_total",
            "Successful crawl GETs per crawl account",
            labelnames=("account",),
        )

    def record(self, category: str, account_id: int) -> None:
        if category not in _CATEGORIES:
            category = CATEGORY_OTHER
        self._requests.labels(category=category).inc()
        self._account_requests.labels(account=str(account_id)).inc()

    def count(self, category: str) -> int:
        return int(self._requests.labels(category=category).value)

    @property
    def total(self) -> int:
        return int(sum(self.count(c) for c in _CATEGORIES))

    def report(self) -> EffortReport:
        return EffortReport(
            accounts_used=self._account_requests.series_count(),
            seed_requests=self.count(CATEGORY_SEEDS),
            profile_requests=self.count(CATEGORY_PROFILES),
            friend_list_requests=self.count(CATEGORY_FRIEND_LISTS),
            other_requests=self.count(CATEGORY_OTHER),
        )


def predicted_requests(
    accounts: int,
    requests_per_account_for_seeds: float,
    seed_count: int,
    core_size: int,
    mean_friends: float,
    page_size: int = 20,
) -> float:
    """The paper's analytic effort estimate ``A·R + |S| + |C|·f/p``."""
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    return (
        accounts * requests_per_account_for_seeds
        + seed_count
        + core_size * (mean_friends / page_size)
    )
