"""Crawl pacing ("sleeping functions", paper Section 3.2).

The paper's crawlers deliberately slept between requests so as not to
perturb Facebook or trip its anti-crawling defences.  We reproduce the
behaviour against the simulated clock: a policy decides how long to
sleep before each request and how to back off when the site throttles.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.osn.clock import SimClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.telemetry.runtime import Telemetry

#: Legacy shared-jitter seed; still the default for a bare ``Pacer()``
#: so single-pacer tests stay draw-for-draw identical.
DEFAULT_PACER_SEED = 0xC0FFEE


def pacer_rng(seed: int, account_id: int) -> random.Random:
    """A per-account jitter RNG stream, derived deterministically.

    ``SeedSequence([seed, account_id])`` semantics without the numpy
    dependency: the pair is hashed through SHA-256 so streams for
    neighbouring account ids are statistically independent, and the
    derivation is stable across processes and ``PYTHONHASHSEED``
    (unlike ``hash()``-based schemes).  Multi-account runs stay
    deterministic because each account's draws depend only on
    ``(seed, account_id)``, never on request interleaving.
    """
    material = hashlib.sha256(
        b"repro.pacer:%d:%d" % (seed, account_id)
    ).digest()
    return random.Random(int.from_bytes(material[:8], "big"))


@dataclass(frozen=True)
class PolitenessPolicy:
    """How long to pause between requests.

    ``base_delay_seconds`` plus uniform jitter is slept before every
    GET; ``backoff_factor`` scales the penalty sleep after each
    rate-limit response; ``max_backoff_seconds`` caps it.
    """

    base_delay_seconds: float = 2.0
    jitter_seconds: float = 1.0
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 300.0

    def validate(self) -> None:
        if self.base_delay_seconds < 0 or self.jitter_seconds < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff_seconds < 0:
            raise ValueError(
                f"max_backoff_seconds must be non-negative, "
                f"got {self.max_backoff_seconds}"
            )
        if self.max_backoff_seconds < self.base_delay_seconds:
            raise ValueError(
                f"max_backoff_seconds ({self.max_backoff_seconds}) must not be "
                f"smaller than base_delay_seconds ({self.base_delay_seconds}); "
                "the backoff cap would undercut the polite inter-request delay"
            )


class Pacer:
    """Applies a :class:`PolitenessPolicy` against the simulated clock."""

    def __init__(
        self,
        clock: SimClock,
        policy: PolitenessPolicy | None = None,
        rng: random.Random | None = None,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self.clock = clock
        self.policy = policy or PolitenessPolicy()
        self.policy.validate()
        self.rng = rng or random.Random(DEFAULT_PACER_SEED)
        self._consecutive_throttles = 0
        self.total_slept = 0.0
        self.telemetry = telemetry
        if telemetry is not None:
            self._sleep_metric = telemetry.registry.histogram(
                "pacer_sleep_seconds",
                "Simulated seconds slept between requests, by reason",
                labelnames=("reason",),
            )

    def next_polite_delay(self) -> float:
        """Draw the next polite inter-request delay without sleeping it.

        Advances the jitter RNG; the async scheduler uses this to
        compute a wake-up instant instead of advancing the shared clock
        (which would double-count overlapping sessions' waits).
        """
        delay = self.policy.base_delay_seconds
        if self.policy.jitter_seconds > 0:
            delay += self.rng.uniform(0.0, self.policy.jitter_seconds)
        return delay

    def next_throttle_penalty(self, retry_after: float) -> float:
        """Advance the backoff streak and return the penalty, unslept."""
        self._consecutive_throttles += 1
        penalty = retry_after * (
            self.policy.backoff_factor ** (self._consecutive_throttles - 1)
        )
        return min(penalty, self.policy.max_backoff_seconds)

    def before_request(self) -> None:
        """Sleep the polite inter-request delay (simulated time)."""
        self._sleep(self.next_polite_delay(), "polite")

    def on_throttle(self, retry_after: float) -> float:
        """Back off after a rate-limit response, escalating geometrically.

        Returns the penalty actually slept (simulated seconds), so the
        caller can attribute the backoff cost on its telemetry events.
        """
        penalty = self.next_throttle_penalty(retry_after)
        self._sleep(penalty, "backoff")
        return penalty

    def on_success(self) -> None:
        self._consecutive_throttles = 0

    def note_slept(self, seconds: float, reason: str = "polite") -> None:
        """Account a sleep performed on the pacer's behalf.

        The concurrent scheduler advances the clock itself (overlapped
        across accounts); this keeps ``total_slept`` and the sleep
        histogram meaningful per account either way.
        """
        if seconds > 0:
            self.total_slept += seconds
            if self.telemetry is not None:
                self._sleep_metric.labels(reason=reason).observe(seconds)

    def _sleep(self, seconds: float, reason: str = "polite") -> None:
        if seconds > 0:
            self.clock.sleep(seconds)
            self.note_slept(seconds, reason)
