"""Static analysis enforcing this repo's three non-negotiables.

1. **The oracle boundary** (ORACLE001/ORACLE002 per file;
   FLOW001/FLOW002 whole-program): attacker code — the crawler and the
   profiling pipeline — may only learn what the OSN's stranger-facing
   interface exposes, never the simulator's ground truth.  The paper's
   result is vacuous without this.
2. **Determinism** (DET001): all randomness flows through explicitly
   seeded generators, so every experiment replays bit-for-bit.
3. **Sim-clock discipline** (CLOCK001): simulation and attack code tell
   time with the :class:`~repro.osn.clock.SimClock`; only telemetry may
   touch the wall clock.

Plus general hygiene (MUT001 mutable default arguments, DEAD001
unreferenced module-level definitions).  Run with
``python -m repro lint``; silence individual findings with
``# repro-lint: allow(RULE) -- justification`` (per-file rules only —
whole-program findings have no single owning line, use the baseline).
"""

from .baseline import Baseline
from .cache import DEFAULT_CACHE_PATH, LintCache, rule_signature
from .engine import (
    LintReport,
    PARSE_ERROR_RULE,
    iter_python_files,
    lint_paths,
    lint_source,
    module_name_for,
)
from .findings import Finding
from .reporting import render_json, render_text
from .rules import Rule, all_rules, register, rule_ids
from .sarif import render_sarif
from .suppressions import DIRECTIVE_RULE, parse_suppressions

__all__ = [
    "Baseline",
    "DEFAULT_CACHE_PATH",
    "DIRECTIVE_RULE",
    "Finding",
    "LintCache",
    "LintReport",
    "PARSE_ERROR_RULE",
    "Rule",
    "all_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "parse_suppressions",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "rule_signature",
]
