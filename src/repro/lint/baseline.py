"""Baseline files: grandfather existing findings without hiding new ones.

A baseline is a JSON document recording finding fingerprints
(rule + path + message, no line numbers) with multiplicities.  During a
run, each finding consumes one matching baseline slot; findings with no
slot left are *new* and fail the build.  The repo ships an empty
baseline — the goal is to keep it empty.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .findings import Finding

FORMAT_VERSION = 1

Fingerprint = Tuple[str, str, str]


@dataclass
class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    entries: "Counter[Fingerprint]" = field(default_factory=Counter)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        return cls(Counter(f.fingerprint for f in findings))

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if not isinstance(document, dict) or "findings" not in document:
            raise ValueError(f"{path!r} is not a repro-lint baseline file")
        version = document.get("version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path!r} has baseline format version {version!r}; "
                f"this checker reads version {FORMAT_VERSION}"
            )
        entries: "Counter[Fingerprint]" = Counter()
        for row in document["findings"]:
            fingerprint = (row["rule"], row["path"], row["message"])
            entries[fingerprint] += int(row.get("count", 1))
        return cls(entries)

    def save(self, path: str) -> None:
        rows = [
            {"rule": rule, "path": file_path, "message": message, "count": count}
            for (rule, file_path, message), count in sorted(self.entries.items())
        ]
        document = {"version": FORMAT_VERSION, "findings": rows}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def partition(self, findings: List[Finding]) -> Tuple[List[Finding], int]:
        """Split findings into (new, number baselined).

        Consumes baseline slots in order, so a file that *grows* more
        instances of a grandfathered finding still fails.
        """
        remaining: Dict[Fingerprint, int] = dict(self.entries)
        fresh: List[Finding] = []
        matched = 0
        for finding in findings:
            slots = remaining.get(finding.fingerprint, 0)
            if slots > 0:
                remaining[finding.fingerprint] = slots - 1
                matched += 1
            else:
                fresh.append(finding)
        return fresh, matched
