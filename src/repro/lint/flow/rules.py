"""FLOW001 / FLOW002 / DEAD001 — the whole-program rules.

These rules run after the per-file phase, over the
:class:`~repro.lint.flow.index.ProjectIndex` built from every linted
file.  They subclass :class:`WholeProgramRule`, whose per-file
``check`` is a no-op; the engine calls ``check_project`` once.

The catalogue (sources, sinks, sanitizers, approximations) is
documented in DESIGN.md §7.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Optional, Set, Tuple

from ..findings import Finding
from ..rules.base import FileContext, Rule, WholeProgramRule, register
from ..rules.oracle import (
    ATTACKER_VISIBLE_OSN,
    EVALUATION_MODULES,
    GROUND_TRUTH_ATTRIBUTES,
    is_attacker_module,
)
from .index import ProjectIndex
from .summary import AttrRead, CallInfo, ExprInfo, FunctionInfo, GATE_FUNCTIONS
from .taint import SourceKey, TaintDomain, TaintEngine


# ----------------------------------------------------------------------
# FLOW001 — ground truth must not reach attacker code off-seam
# ----------------------------------------------------------------------

#: Attribute reads that introduce ground-truth taint.
SOURCE_ATTRIBUTES: FrozenSet[str] = GROUND_TRUTH_ATTRIBUTES | {"real_birthday"}

#: The simulator's own packages: reading ground truth there is its job.
#: ``repro.colgen`` is the scale twin of ``repro.worldgen`` — the
#: encoder re-represents entire worlds and the serve path renders them,
#: so it sits on the oracle side of the boundary like the rest of the
#: simulator (and attacker layers may not import it, see ORACLE001).
SIMULATOR_PREFIXES: Tuple[str, ...] = ("repro.worldgen", "repro.osn", "repro.colgen")

#: Report emitters count as attacker-facing output alongside the
#: attacker packages proper.
REPORT_SINK_MODULES: FrozenSet[str] = frozenset({"repro.analysis.report"})


def _in_simulator(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in SIMULATOR_PREFIXES
    )


def _is_flow001_sink(module: str) -> bool:
    return is_attacker_module(module) or module in REPORT_SINK_MODULES


class _GroundTruthDomain(TaintDomain):
    """Seeds at ground-truth attribute reads outside the simulator."""

    def seed(self, module: str, function: str, read: AttrRead) -> Optional[str]:
        if read.attr not in SOURCE_ATTRIBUTES:
            return None
        if not module.startswith("repro."):
            return None  # tests/fixtures may inspect ground truth freely
        if _in_simulator(module) or module in EVALUATION_MODULES:
            return None
        return read.attr

    def is_sanitizer_module(self, module: str) -> bool:
        return module in EVALUATION_MODULES


def _witness(sources: FrozenSet[SourceKey]) -> str:
    attr, path, line, _col = min(sources)
    return f"'.{attr}' read at {path}:{line}"


@register
class GroundTruthFlowRule(WholeProgramRule):
    """Ground truth must not flow into attacker code, even laundered.

    Rationale: ORACLE001/002 catch *direct* reads; this taint pass
    catches the two-hop versions — a helper that returns
    ``world.population``, a module-level global carrying ground truth,
    a tainted argument handed into a crawler function.  Any of them
    silently inflates attack accuracy.

    Fix: move the access behind ``repro.core.oracle`` (the audited
    evaluation seam) or recompute the value from crawled pages.

    Suppression: ``# repro-lint: allow(FLOW001) -- <why>`` on the line
    of the flagged call/read/import.
    """

    rule_id = "FLOW001"
    summary = (
        "ground-truth taint must not reach attacker code "
        "(repro.crawler/repro.core/report emitters) except via the "
        "oracle seam"
    )
    category = "privacy-flow"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        result = TaintEngine(index, _GroundTruthDomain()).run()
        emitted: Set[Tuple[str, int, int, str]] = set()

        def emit(path: str, line: int, col: int, message: str) -> Iterator[Finding]:
            key = (path, line, col, message)
            if key not in emitted:
                emitted.add(key)
                yield Finding(path, line, col, self.rule_id, message)

        for record in result.calls:
            path = index.modules[record.module].path
            callee = record.call.callee or "<call>"
            if not _is_flow001_sink(record.module):
                # Case A: a tainted value is handed INTO attacker code.
                if not record.arg_sources:
                    continue
                hits_sink = any(
                    _is_flow001_sink(f.module) for f in record.resolution.functions
                )
                constructed = record.resolution.constructed_class
                if constructed is not None and _is_flow001_sink(constructed[0]):
                    hits_sink = True  # a sink-module constructor call
                if not hits_sink:
                    continue
                yield from emit(
                    path,
                    record.call.line,
                    record.call.col,
                    f"ground-truth value ({_witness(record.arg_sources)}) is "
                    f"passed into attacker-layer '{callee}'; route it through "
                    "the GroundTruthOracle seam (repro.core.oracle) instead",
                )
            else:
                # Case B: attacker code calls a helper that RETURNS taint
                # (the two-hop launder).
                for candidate, sources in record.candidate_sources:
                    if not sources or _is_flow001_sink(candidate.module):
                        continue
                    yield from emit(
                        path,
                        record.call.line,
                        record.call.col,
                        f"attacker-layer module '{record.module}' calls "
                        f"'{callee}' ({candidate.fqn}), whose return carries "
                        f"ground truth ({_witness(sources)}); consume it via "
                        "repro.core.oracle instead",
                    )

        # Case C: a direct ground-truth read inside a sink module.
        for seed in result.seeds:
            if not _is_flow001_sink(seed.module):
                continue
            attr, path, line, col = seed.key
            yield from emit(
                path,
                line,
                col,
                f"attacker-layer module '{seed.module}' reads ground-truth "
                f"attribute '.{attr}'; go through repro.core.oracle",
            )

        # Case D: a sink module imports a tainted module-level global.
        for module_name in sorted(index.modules):
            if not _is_flow001_sink(module_name):
                continue
            summary = index.modules[module_name]
            for binding, (target, line) in sorted(summary.imports.items()):
                located = _locate_global(index, target)
                if located is None:
                    continue
                sources = result.global_taint.get(located)
                if not sources:
                    continue
                yield from emit(
                    summary.path,
                    line,
                    0,
                    f"attacker-layer module '{module_name}' imports "
                    f"'{binding}' from {located[0]}, a module-level value "
                    f"carrying ground truth ({_witness(sources)})",
                )


def _locate_global(index: ProjectIndex, dotted: str) -> Optional[Tuple[str, str]]:
    """``(owner_module, global_name)`` for an imported dotted target."""
    parts = dotted.split(".")
    for length in range(len(parts) - 1, 0, -1):
        candidate = ".".join(parts[:length])
        if candidate in index.modules:
            rest = parts[length:]
            if len(rest) == 1:
                return candidate, rest[0]
            return None
    return None


# ----------------------------------------------------------------------
# FLOW002 — privacy-gated fields must stay behind the policy gate
# ----------------------------------------------------------------------

#: Raw profile fields whose visibility the policy engine decides.
SENSITIVE_PROFILE_FIELDS: FrozenSet[str] = frozenset(
    {
        "birthday",
        "contact_info",
        "current_city",
        "employer",
        "graduate_school",
        "high_schools",
        "hometown",
        "interested_in",
        "photo_count",
        "relationship_status",
        "wall_posts",
    }
)

#: Fields that must ALWAYS be gated no matter the receiver: they only
#: exist on the raw account, never on a filtered view.
ALWAYS_GATED_FIELDS: FrozenSet[str] = frozenset(
    {"real_birthday", "registered_birthday"}
)

#: The policy engine itself (and the settings model it reads).
POLICY_MODULES: FrozenSet[str] = frozenset(
    {"repro.osn.policy", "repro.osn.privacy"}
)


def _profile_receiver(recv: Optional[str]) -> bool:
    return recv is not None and "profile" in recv.split(".")


def _calls_in(expr: ExprInfo) -> Iterator[CallInfo]:
    for call in expr.calls:
        yield call
        for arg in call.args:
            yield from _calls_in(arg)
        for _name, arg in call.kwargs:
            yield from _calls_in(arg)


def _policy_aware_functions(index: ProjectIndex) -> FrozenSet[str]:
    """Functions that invoke the policy gate anywhere in their body.

    The ``read-then-gate-at-use`` idiom (``contact = p.contact_info``
    followed by ``contact.email if contact_visible else None``) gates
    the *use*, not the read; treating gate-invoking functions as
    policy-aware keeps that idiom clean without a path-sensitive
    analysis.
    """
    aware: Set[str] = set()
    for summary in index.modules.values():
        for qualname, fn in summary.functions.items():
            if _function_mentions_gate(fn):
                aware.add(f"{summary.module}:{qualname}")
    return frozenset(aware)


def _function_mentions_gate(fn: FunctionInfo) -> bool:
    for op in fn.ops:
        for call in _calls_in(op.expr):
            ref = call.callee
            if ref is not None and ref.rsplit(".", 1)[-1] in GATE_FUNCTIONS:
                return True
    return False


class _PrivacyGateDomain(TaintDomain):
    """Seeds at ungated sensitive-field reads on the simulator side."""

    def __init__(self, policy_aware: FrozenSet[str]) -> None:
        self._policy_aware = policy_aware

    def seed(self, module: str, function: str, read: AttrRead) -> Optional[str]:
        if read.gated:
            return None
        if not module.startswith("repro.osn"):
            return None
        if module in POLICY_MODULES:
            return None
        if f"{module}:{function}" in self._policy_aware:
            return None
        if read.attr in ALWAYS_GATED_FIELDS:
            return read.attr
        if read.attr in SENSITIVE_PROFILE_FIELDS and _profile_receiver(read.recv):
            return read.attr
        return None

    def is_sanitizer_module(self, module: str) -> bool:
        return module in POLICY_MODULES or module in EVALUATION_MODULES


@register
class PrivacyGateFlowRule(WholeProgramRule):
    """Sensitive profile fields stay behind the privacy-policy gate.

    Rationale: the reproduction's entire subject is what a stranger can
    see.  A raw ``profile.birthday`` read that reaches a
    crawler-visible return without consulting
    ``PrivacyPolicy.field_visible_to`` is a simulator bug that leaks
    data the modelled OSN would have hidden — corrupting the measured
    attack surface.

    Fix: gate the read (or the use) with the policy engine; the
    read-then-gate-at-use idiom is recognised when the function invokes
    a gate anywhere in its body.

    Suppression: ``# repro-lint: allow(FLOW002) -- <why>`` on the
    flagged return's line.
    """

    rule_id = "FLOW002"
    summary = (
        "privacy-gated profile fields must not flow into crawler-visible "
        "returns without passing the policy gate"
    )
    category = "privacy-flow"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        domain = _PrivacyGateDomain(_policy_aware_functions(index))
        result = TaintEngine(index, domain).run()
        emitted: Set[Tuple[str, int, int, str]] = set()
        for record in result.returns:
            if record.module not in ATTACKER_VISIBLE_OSN:
                continue
            path = index.modules[record.module].path
            message = (
                f"crawler-visible return in '{record.module}' carries a "
                f"profile field read without a policy gate "
                f"({_witness(record.sources)}); check "
                "PrivacyPolicy.field_visible_to before exposing it"
            )
            key = (path, record.line, record.col, message)
            if key in emitted:
                continue
            emitted.add(key)
            yield Finding(path, record.line, record.col, self.rule_id, message)


# ----------------------------------------------------------------------
# DEAD001 — module-level defs nothing references
# ----------------------------------------------------------------------

#: Name prefixes with framework-driven callers the index cannot see.
_DEAD_EXEMPT_PREFIXES: Tuple[str, ...] = ("test", "Test", "pytest_")
#: Conventional entry points (console scripts, ``python -m``).
_DEAD_EXEMPT_NAMES: FrozenSet[str] = frozenset({"main", "setup"})


@register
class DeadDefinitionRule(WholeProgramRule):
    """Module-level defs nothing in the project references are dead.

    Rationale: unreferenced top-level functions and classes are where
    stale experiment variants accumulate; they rot silently and mislead
    readers about what the pipeline actually runs.

    Fix: delete the definition, or export it via ``__all__`` if it is
    deliberate public API.  Tests, pytest hooks, ``main``/``setup``
    entry points and star-imported modules are exempt automatically.

    Suppression: ``# repro-lint: allow(DEAD001) -- <why>`` on the
    ``def``/``class`` line.
    """

    rule_id = "DEAD001"
    summary = (
        "module-level functions/classes referenced nowhere in the "
        "linted project are dead code"
    )
    category = "hygiene"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        used = index.used_names()
        star_targets = index.star_importers()
        for module_name in sorted(index.modules):
            summary = index.modules[module_name]
            if module_name in star_targets:
                continue  # star-imported: every top-level name escapes
            for candidate in summary.dead_candidates:
                if candidate.name.startswith(_DEAD_EXEMPT_PREFIXES):
                    continue
                if candidate.name in _DEAD_EXEMPT_NAMES:
                    continue
                if candidate.name in used:
                    continue
                yield Finding(
                    summary.path,
                    candidate.line,
                    candidate.col,
                    self.rule_id,
                    f"module-level {candidate.kind} '{candidate.name}' is "
                    "never referenced in the linted project; remove it or "
                    "export it via __all__",
                )
