"""Inter-procedural taint propagation over a :class:`ProjectIndex`.

The engine runs a classic context-insensitive summary fixpoint:

* each function gets a **summary** — the concrete sources its return
  value can carry plus the parameter indices that flow to its return;
* each call site maps argument taint onto callee parameters (worklist
  until stable), so taint entering a neutral helper's parameter is
  visible when that helper forwards it;
* module-level assignments feed a global-taint table so a tainted
  module constant is visible to its importers.

What counts as a *source* and which modules *sanitise* is delegated to
a :class:`TaintDomain` — FLOW001 and FLOW002 instantiate the same
engine with different domains.  Sanitiser modules (the
``GroundTruthOracle`` seam for FLOW001, the policy engine for FLOW002)
contribute nothing to taint: calls into them are allowed and their
results are clean by definition.

Approximations (also catalogued in DESIGN.md §7): flow-insensitive
within a function, no heap model (``self.x = taint`` is dropped),
unresolved calls propagate the union of their argument taint, implicit
flows through conditions are over-approximated (the condition's own
taint joins the expression), and lambda bodies are opaque.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from .index import ProjectIndex, Resolution, ResolvedFunction
from .summary import AttrRead, CallInfo, ExprInfo, FunctionInfo

#: (attribute, path, line, col) — one concrete ground-truth extraction.
SourceKey = Tuple[str, str, int, int]

_EMPTY_SOURCES: FrozenSet[SourceKey] = frozenset()
_EMPTY_PARAMS: FrozenSet[int] = frozenset()

#: Fixpoint bound; the call-graph depth of this repo is far below it.
_MAX_PASSES = 40
#: Per-function local-fixpoint bound.
_MAX_LOCAL_PASSES = 8
#: Keep witness sets small; one witness is enough to report a finding.
_MAX_WITNESSES = 6


class TaintDomain:
    """What a flow rule considers a source / a sanitiser.

    Subclasses override :meth:`seed` (return a witness label for an
    attribute read that introduces taint, or ``None``) and
    :meth:`is_sanitizer_module`.
    """

    #: Unresolved/external calls propagate the union of argument taint.
    propagate_unresolved = True

    def seed(self, module: str, function: str, read: AttrRead) -> Optional[str]:
        raise NotImplementedError

    def is_sanitizer_module(self, module: str) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class Taint:
    """Abstract value: concrete source witnesses + parameter dependence."""

    sources: FrozenSet[SourceKey] = _EMPTY_SOURCES
    params: FrozenSet[int] = _EMPTY_PARAMS

    @property
    def empty(self) -> bool:
        return not self.sources and not self.params

    def union(self, other: "Taint") -> "Taint":
        if other.empty:
            return self
        if self.empty:
            return other
        sources = self.sources | other.sources
        if len(sources) > _MAX_WITNESSES:
            sources = frozenset(sorted(sources)[:_MAX_WITNESSES])
        return Taint(sources, self.params | other.params)


_CLEAN = Taint()


@dataclass(frozen=True)
class Summary:
    """A function's effect on taint: what its return value carries."""

    sources: FrozenSet[SourceKey] = _EMPTY_SOURCES
    params: FrozenSet[int] = _EMPTY_PARAMS


@dataclass(frozen=True)
class CallRecord:
    """One call site with resolved taint facts (for the sink rules)."""

    module: str
    function: str
    call: CallInfo
    resolution: Resolution
    #: concrete source witnesses among the arguments
    arg_sources: FrozenSet[SourceKey]
    #: per-candidate: sources the callee itself (transitively) introduces
    candidate_sources: Tuple[Tuple[ResolvedFunction, FrozenSet[SourceKey]], ...]


@dataclass(frozen=True)
class ReturnRecord:
    """One return/yield with the concrete taint it carries."""

    module: str
    function: str
    line: int
    col: int
    sources: FrozenSet[SourceKey]


@dataclass(frozen=True)
class SeedRecord:
    """One source read, where it happened."""

    module: str
    function: str
    key: SourceKey


@dataclass
class TaintResult:
    """Everything the flow rules inspect after the fixpoint."""

    summaries: Dict[str, Summary] = field(default_factory=dict)
    global_taint: Dict[Tuple[str, str], FrozenSet[SourceKey]] = field(
        default_factory=dict
    )
    calls: List[CallRecord] = field(default_factory=list)
    returns: List[ReturnRecord] = field(default_factory=list)
    seeds: List[SeedRecord] = field(default_factory=list)


def _fqn(module: str, qualname: str) -> str:
    return f"{module}:{qualname}"


class TaintEngine:
    """Runs one domain's taint fixpoint over an index."""

    def __init__(self, index: ProjectIndex, domain: TaintDomain) -> None:
        self.index = index
        self.domain = domain
        self._summaries: Dict[str, Summary] = {}
        self._param_taint: Dict[Tuple[str, int], FrozenSet[SourceKey]] = {}
        self._global_taint: Dict[Tuple[str, str], FrozenSet[SourceKey]] = {}
        self._changed = False
        self._recording: Optional[TaintResult] = None

    # ------------------------------------------------------------------

    def run(self) -> TaintResult:
        for _ in range(_MAX_PASSES):
            self._changed = False
            self._one_pass()
            if not self._changed:
                break
        result = TaintResult(
            summaries=dict(self._summaries), global_taint=dict(self._global_taint)
        )
        self._recording = result
        self._one_pass()
        self._recording = None
        return result

    def _one_pass(self) -> None:
        for module_name in sorted(self.index.modules):
            summary = self.index.modules[module_name]
            for qualname in sorted(summary.functions):
                self._evaluate_function(module_name, summary.functions[qualname])

    # ------------------------------------------------------------------

    def _evaluate_function(self, module: str, fn: FunctionInfo) -> None:
        fqn = _fqn(module, fn.qualname)
        env: Dict[str, Taint] = {}
        for idx, param in enumerate(fn.params):
            env[param] = Taint(
                self._param_taint.get((fqn, idx), _EMPTY_SOURCES), frozenset({idx})
            )
        for _ in range(_MAX_LOCAL_PASSES):
            stable = True
            for op in fn.ops:
                if op.kind != "assign":
                    continue
                value = self._eval_expr(module, fn, env, op.expr)
                for target in op.targets:
                    merged = env.get(target, _CLEAN).union(value)
                    if merged != env.get(target, _CLEAN):
                        env[target] = merged
                        stable = False
            if stable:
                break
        # Summary from returns; module level ("") publishes globals instead.
        return_taint = _CLEAN
        for op in fn.ops:
            if op.kind != "return":
                continue
            taint = self._eval_expr(module, fn, env, op.expr)
            return_taint = return_taint.union(taint)
            if self._recording is not None and taint.sources:
                self._recording.returns.append(
                    ReturnRecord(module, fn.qualname, op.line, op.col, taint.sources)
                )
        if fn.qualname == "":
            for op in fn.ops:
                if op.kind != "assign":
                    continue
                value = self._eval_expr(module, fn, env, op.expr)
                for target in op.targets:
                    self._publish_global(module, target, value.sources)
        new_summary = Summary(return_taint.sources, return_taint.params)
        if self._summaries.get(fqn, Summary()) != new_summary:
            self._summaries[fqn] = new_summary
            self._changed = True
        # Sink bookkeeping needs every call site visited, including ones
        # inside non-assign ops; _eval_expr above already covered assign
        # and return expressions, so sweep the rest.
        for op in fn.ops:
            if op.kind == "expr":
                self._eval_expr(module, fn, env, op.expr)

    # ------------------------------------------------------------------

    def _eval_expr(
        self, module: str, fn: FunctionInfo, env: Dict[str, Taint], expr: ExprInfo
    ) -> Taint:
        taint = _CLEAN
        for name in expr.names:
            taint = taint.union(self._name_taint(module, env, name))
        for read in expr.reads:
            label = self.domain.seed(module, fn.qualname, read)
            if label is not None:
                key: SourceKey = (
                    label,
                    self.index.modules[module].path,
                    read.line,
                    read.col,
                )
                taint = taint.union(Taint(frozenset({key}), _EMPTY_PARAMS))
                if self._recording is not None:
                    self._recording.seeds.append(
                        SeedRecord(module, fn.qualname, key)
                    )
        for call in expr.calls:
            taint = taint.union(self._eval_call(module, fn, env, call))
        return taint

    def _name_taint(self, module: str, env: Dict[str, Taint], name: str) -> Taint:
        if name in env:
            return env[name]
        own = self._global_taint.get((module, name))
        if own:
            return Taint(own, _EMPTY_PARAMS)
        summary = self.index.modules[module]
        if name in summary.imports:
            target, _line = summary.imports[name]
            owner_and_rest = self._split_owner(target)
            if owner_and_rest is not None:
                owner, rest = owner_and_rest
                if rest and "." not in rest:
                    imported = self._global_taint.get((owner, rest))
                    if imported:
                        return Taint(imported, _EMPTY_PARAMS)
        return _CLEAN

    def _split_owner(self, dotted: str) -> Optional[Tuple[str, str]]:
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in self.index.modules:
                return candidate, ".".join(parts[length:])
        return None

    # ------------------------------------------------------------------

    def _eval_call(
        self, module: str, fn: FunctionInfo, env: Dict[str, Taint], call: CallInfo
    ) -> Taint:
        arg_taints: List[Taint] = [
            self._eval_expr(module, fn, env, arg) for arg in call.args
        ]
        kwarg_taints: List[Tuple[str, Taint]] = [
            (name, self._eval_expr(module, fn, env, value))
            for name, value in call.kwargs
        ]
        resolution = self.index.resolve_call(module, fn.qualname, call.callee)
        all_args = arg_taints + [t for _, t in kwarg_taints]
        arg_sources: FrozenSet[SourceKey] = frozenset().union(
            *(t.sources for t in all_args)
        ) if all_args else _EMPTY_SOURCES

        result = _CLEAN
        candidate_sources: List[Tuple[ResolvedFunction, FrozenSet[SourceKey]]] = []
        if resolution.module_obj is not None:
            pass  # a module reference is not a value flow
        elif resolution.constructed_class is not None:
            cls_module, _cls = resolution.constructed_class
            if not self.domain.is_sanitizer_module(cls_module):
                for taint in all_args:  # constructors carry their arguments
                    result = result.union(taint)
        elif resolution.functions:
            for candidate in resolution.functions:
                if self.domain.is_sanitizer_module(candidate.module):
                    continue  # the seam: clean result, no propagation inward
                callee_fn = self.index.function(candidate)
                callee_summary = self._summaries.get(candidate.fqn, Summary())
                candidate_sources.append((candidate, callee_summary.sources))
                contribution = Taint(callee_summary.sources, _EMPTY_PARAMS)
                mapped = self._map_args(callee_fn, arg_taints, kwarg_taints)
                for idx, taint in mapped:
                    self._propagate_param(candidate.fqn, idx, taint.sources)
                    if idx in callee_summary.params:
                        contribution = contribution.union(taint)
                result = result.union(contribution)
        elif self.domain.propagate_unresolved:
            for taint in all_args:
                result = result.union(taint)

        if self._recording is not None:
            self._recording.calls.append(
                CallRecord(
                    module=module,
                    function=fn.qualname,
                    call=call,
                    resolution=resolution,
                    arg_sources=arg_sources,
                    candidate_sources=tuple(candidate_sources),
                )
            )
        return result

    def _map_args(
        self,
        callee: Optional[FunctionInfo],
        arg_taints: List[Taint],
        kwarg_taints: List[Tuple[str, Taint]],
    ) -> List[Tuple[int, Taint]]:
        """Map call arguments onto callee parameter indices."""
        if callee is None:
            return []
        params = callee.params
        offset = 1 if params and params[0] in ("self", "cls") else 0
        mapped: List[Tuple[int, Taint]] = []
        for position, taint in enumerate(arg_taints):
            idx = position + offset
            if idx < len(params):
                mapped.append((idx, taint))
        by_name = {name: i for i, name in enumerate(params)}
        for name, taint in kwarg_taints:
            if name in by_name:
                mapped.append((by_name[name], taint))
        return mapped

    def _propagate_param(
        self, fqn: str, idx: int, sources: FrozenSet[SourceKey]
    ) -> None:
        if not sources:
            return
        current = self._param_taint.get((fqn, idx), _EMPTY_SOURCES)
        merged = current | sources
        if len(merged) > _MAX_WITNESSES:
            merged = frozenset(sorted(merged)[:_MAX_WITNESSES])
        if merged != current:
            self._param_taint[(fqn, idx)] = merged
            self._changed = True

    def _publish_global(
        self, module: str, name: str, sources: FrozenSet[SourceKey]
    ) -> None:
        if not sources:
            return
        current = self._global_taint.get((module, name), _EMPTY_SOURCES)
        merged = current | sources
        if merged != current:
            self._global_taint[(module, name)] = merged
            self._changed = True
