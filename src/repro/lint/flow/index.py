"""The whole-program view: module table, import graph, call resolution.

A :class:`ProjectIndex` is built from :class:`ModuleSummary` objects
(freshly extracted or loaded from the lint cache) and answers the two
questions the taint engine and DEAD001 ask:

* *what does this dotted reference resolve to?* — performed over module
  and class namespaces: a bare name resolves through nested defs, the
  module's own defs, then its import aliases (following re-export
  chains); a dotted chain roots at an import alias or falls back to
  method-name lookup across every indexed class.  The resolution is
  deliberately approximate (no type inference); DESIGN.md §7 records
  the approximations.
* *who references this name?* — the union of every summary's
  ``used_names``, which is what makes DEAD001 a whole-program rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .summary import FunctionInfo, ModuleSummary

#: Give up on method-name fallback when this many classes share a name
#: (an attribute that common is almost certainly a builtin protocol).
_METHOD_FALLBACK_LIMIT = 4

#: Method names that collide with builtin container/str/file protocols.
#: A dict's ``.get`` must never resolve to some indexed class's ``get``,
#: so the name-based fallback refuses these outright.
_PROTOCOL_METHOD_NAMES = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "decode",
        "discard", "encode", "extend", "format", "get", "index", "insert",
        "items", "join", "keys", "lower", "open", "pop", "popitem", "read",
        "remove", "replace", "setdefault", "sort", "split", "startswith",
        "strip", "update", "upper", "values", "write",
    }
)


@dataclass(frozen=True)
class ResolvedFunction:
    """One call-graph edge target: a function in an indexed module."""

    module: str
    qualname: str

    @property
    def fqn(self) -> str:
        return f"{self.module}:{self.qualname}"


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving one callee reference.

    ``functions`` lists candidate summaries (possibly several for a
    method-name fallback).  ``constructed_class`` is set when the ref
    names a class (a constructor call).  ``module_obj`` is set when the
    ref names a module itself.  All empty -> external/unresolved.
    """

    functions: Tuple[ResolvedFunction, ...] = ()
    constructed_class: Optional[Tuple[str, str]] = None  # (module, class)
    module_obj: Optional[str] = None

    @property
    def unresolved(self) -> bool:
        return (
            not self.functions
            and self.constructed_class is None
            and self.module_obj is None
        )


class ProjectIndex:
    """Summaries stitched into one queryable whole-program structure."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        # Distinct files can share a dotted name (tests/ and benchmarks/
        # both holding a test_foo.py).  First one in wins; the shadowed
        # file still contributes its *references* so DEAD001 never calls
        # a name dead that only the shadowed file uses.
        self._shadowed_used: Set[str] = set()
        for summary in summaries:
            if summary.module in self.modules:
                self._shadowed_used.update(summary.used_names)
                continue
            self.modules[summary.module] = summary
        # method name -> classes defining it, across every module
        self._methods: Dict[str, List[Tuple[str, str]]] = {}
        for summary in self.modules.values():
            for class_name, methods in summary.classes.items():
                for method in methods:
                    self._methods.setdefault(method, []).append(
                        (summary.module, class_name)
                    )
        self._all_used: Optional[FrozenSet[str]] = None

    # ------------------------------------------------------------------
    # Basic lookups
    # ------------------------------------------------------------------

    def function(self, resolved: ResolvedFunction) -> Optional[FunctionInfo]:
        summary = self.modules.get(resolved.module)
        if summary is None:
            return None
        return summary.functions.get(resolved.qualname)

    def import_graph(self) -> Dict[str, Set[str]]:
        """module -> indexed modules it imports (directly)."""
        graph: Dict[str, Set[str]] = {}
        for summary in self.modules.values():
            edges: Set[str] = set()
            for target, _line in summary.imports.values():
                owner = self._module_prefix(target)
                if owner is not None and owner != summary.module:
                    edges.add(owner)
            for star in summary.star_imports:
                if star in self.modules and star != summary.module:
                    edges.add(star)
            graph[summary.module] = edges
        return graph

    def used_names(self) -> FrozenSet[str]:
        """Every identifier referenced anywhere in the indexed project."""
        if self._all_used is None:
            combined: Set[str] = set(self._shadowed_used)
            for summary in self.modules.values():
                combined.update(summary.used_names)
            self._all_used = frozenset(combined)
        return self._all_used

    def star_importers(self) -> Set[str]:
        """Modules whose exports must be considered used (star-imported)."""
        targets: Set[str] = set()
        for summary in self.modules.values():
            targets.update(s for s in summary.star_imports if s in self.modules)
        return targets

    # ------------------------------------------------------------------
    # Reference resolution
    # ------------------------------------------------------------------

    def resolve_call(
        self, module: str, enclosing: str, ref: Optional[str]
    ) -> Resolution:
        """Resolve a callee reference written inside ``enclosing``.

        ``enclosing`` is the qualname of the function containing the
        call (``""`` for module level), used for nested-def and
        ``self.method`` resolution.
        """
        if ref is None:
            return Resolution()
        summary = self.modules.get(module)
        if summary is None:
            return Resolution()
        parts = ref.split(".")
        if len(parts) == 1:
            return self._resolve_bare(summary, enclosing, parts[0])
        if parts[0] == "self" and len(parts) == 2:
            class_name = enclosing.split(".", 1)[0] if enclosing else ""
            if class_name in summary.classes:
                qual = f"{class_name}.{parts[1]}"
                if qual in summary.functions:
                    return Resolution(functions=(ResolvedFunction(module, qual),))
        root = parts[0]
        if root in summary.imports:
            dotted = ".".join([summary.imports[root][0], *parts[1:]])
            return self._resolve_dotted(dotted)
        if root in summary.classes and len(parts) == 2:
            qual = ".".join(parts)  # ClassName.method(...) as a plain function
            if qual in summary.functions:
                return Resolution(functions=(ResolvedFunction(module, qual),))
        return self._method_fallback(parts[-1])

    def _resolve_bare(
        self, summary: ModuleSummary, enclosing: str, name: str
    ) -> Resolution:
        if enclosing:
            nested = f"{enclosing}.{name}"
            if nested in summary.functions:
                return Resolution(
                    functions=(ResolvedFunction(summary.module, nested),)
                )
        if name in summary.functions:
            return Resolution(functions=(ResolvedFunction(summary.module, name),))
        if name in summary.classes:
            return Resolution(constructed_class=(summary.module, name))
        if name in summary.imports:
            return self._resolve_dotted(summary.imports[name][0])
        return Resolution()

    def _resolve_dotted(self, dotted: str, depth: int = 0) -> Resolution:
        if depth > 8:  # re-export cycle guard
            return Resolution()
        owner = self._module_prefix(dotted)
        if owner is None:
            return Resolution()
        summary = self.modules[owner]
        rest = dotted[len(owner) :].lstrip(".")
        if not rest:
            return Resolution(module_obj=owner)
        if rest in summary.functions:
            return Resolution(functions=(ResolvedFunction(owner, rest),))
        head = rest.split(".", 1)[0]
        if head in summary.classes:
            if rest == head:
                return Resolution(constructed_class=(owner, head))
            if rest in summary.functions:  # Class.method
                return Resolution(functions=(ResolvedFunction(owner, rest),))
            return Resolution()
        if head in summary.imports:  # re-export: follow the chain
            tail = rest[len(head) :].lstrip(".")
            target = summary.imports[head][0]
            next_dotted = f"{target}.{tail}" if tail else target
            return self._resolve_dotted(next_dotted, depth + 1)
        return Resolution()

    def _method_fallback(self, method: str) -> Resolution:
        if method in _PROTOCOL_METHOD_NAMES:
            return Resolution()
        candidates = self._methods.get(method, [])
        if not candidates or len(candidates) > _METHOD_FALLBACK_LIMIT:
            return Resolution()
        functions = tuple(
            ResolvedFunction(mod, f"{cls}.{method}") for mod, cls in candidates
        )
        return Resolution(functions=functions)

    def _module_prefix(self, dotted: str) -> Optional[str]:
        """Longest indexed-module prefix of a dotted path."""
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in self.modules:
                return candidate
        return None
