"""Per-module flow summaries: the IR the whole-program phase runs on.

A :class:`ModuleSummary` is everything the inter-procedural taint
engine and the dead-code rule need to know about one file, extracted
in a single AST walk and serialisable to plain JSON (so the on-disk
lint cache can persist it and a warm run skips re-parsing entirely).

The representation is deliberately coarse — flow-insensitive inside a
function, no heap model — because the rules built on it only need an
*over*-approximation of where ground truth can travel:

* every function (methods keyed ``Class.method``, nested defs keyed
  ``outer.inner``, the module body keyed ``""``) becomes a list of
  operations: ``assign`` (targets + value expression), ``return``
  (covers ``yield`` too) and ``expr`` (everything else that can hold a
  call site);
* every expression is flattened to the local/global names it reads,
  the attribute reads it performs (with receiver chain, location and
  a *gated* bit — see below) and the calls it contains, each call
  carrying its argument expressions separately so taint can be tracked
  per-argument;
* an attribute read or call is marked **gated** when it sits under a
  conditional whose test mentions a privacy-gate predicate
  (``sees(...)``, ``PolicyEngine.field_visible_to`` and friends, or a
  boolean local derived from one).  FLOW002 treats gated reads as
  sanitised: the value only flows when the policy said it may;
* version 2 adds the facts the concurrency pass (:mod:`repro.lint.conc`)
  consumes: per-op **write paths** (``self.x = ...``, ``d[k] = ...``,
  mutator receivers come from the op's calls), **alias roots** of
  assigned values (call results count as fresh — the deliberate
  approximation that makes keyed-accessor indirection the sanctioned
  per-account ownership pattern), ``await`` and held-sync-lock bits,
  per-function ``async``/``global`` facts and dotted param/return
  annotations, class-body attribute names, and the line table of
  ``# repro-lint: shared(owner)`` annotations;
* version 3 adds what the scale-safety pass (:mod:`repro.lint.scale`)
  consumes: loop structure on ops — a ``For``/``While`` header op
  carries ``loop=True`` and every op records its enclosing-loop
  ``depth`` — plus the line table of ``# repro-lint: allow(RULE)``
  directives (``allow_lines``), so whole-program rules that opt into
  inline suppression can honour directives without re-reading sources.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Bump when the summary shape changes; invalidates cached summaries.
SUMMARY_VERSION = 3

#: Predicate names that gate profile-field visibility.  A conditional
#: whose test calls one of these (or reads a boolean derived from one)
#: marks the guarded reads as policy-checked.
GATE_FUNCTIONS = frozenset(
    {
        "audience_for",
        "effective_audience",
        "field_visible_to",
        "message_button_visible",
        "public_search_eligible",
        "satisfies",
        "sees",
        "_friend_list_visible",
        "_visible_in_friend_lists",
    }
)


@dataclass(frozen=True)
class AttrRead:
    """One ``value.attr`` read: the attr name, the receiver chain if it
    is a plain dotted chain (``account.profile`` -> ``"account.profile"``),
    the location, and whether a privacy-gate conditional guards it."""

    attr: str
    recv: Optional[str]
    line: int
    col: int
    gated: bool


@dataclass(frozen=True)
class CallInfo:
    """One call site: dotted callee ref when statically writable
    (``"f"``, ``"mod.f"``, ``"self.m"``), per-argument expressions, and
    location.  Keyword arguments keep their names for param mapping.

    When the call's receiver is itself produced by a call with a dotted
    callee (``self._limiter_for(a).charge()``), ``callee`` is None but
    ``recv_call``/``method`` record the accessor ref and the method name
    so the concurrency pass can resolve through accessor return types.
    """

    callee: Optional[str]
    args: Tuple["ExprInfo", ...]
    kwargs: Tuple[Tuple[str, "ExprInfo"], ...]
    line: int
    col: int
    gated: bool
    recv_call: Optional[str] = None
    method: Optional[str] = None


@dataclass(frozen=True)
class ExprInfo:
    """A flattened expression: root names read, attribute reads, calls."""

    names: Tuple[str, ...] = ()
    reads: Tuple[AttrRead, ...] = ()
    calls: Tuple[CallInfo, ...] = ()

    @property
    def empty(self) -> bool:
        return not (self.names or self.reads or self.calls)


#: An empty expression (e.g. a bare ``return``).
EMPTY_EXPR = ExprInfo()


@dataclass(frozen=True)
class Op:
    """One operation in a function body.

    ``writes`` lists the dotted paths this op mutates as ``(path, mode)``
    pairs: mode ``"bind"`` sets the final attribute on the object at the
    path's prefix (``self.x = v``); mode ``"mutate"`` mutates the object
    *at* the path itself (``self.xs[k] = v``, ``del self.xs[k]``).
    ``alias`` holds the dotted roots an assigned value may alias (call
    results are fresh by design).  ``awaited`` marks ops containing an
    ``await``; ``locks`` lists sync-``with`` lock refs held at the op.
    ``loop`` marks a ``for``/``while`` *header* op (its ``expr`` is the
    iterable / the test); ``depth`` counts the loops enclosing the op —
    a header op's own loop is not counted, so an inner loop header at
    ``depth >= 1`` sits inside at least one outer loop.
    """

    kind: str  # "assign" | "return" | "expr"
    targets: Tuple[str, ...]
    expr: ExprInfo
    line: int
    col: int
    writes: Tuple[Tuple[str, str], ...] = ()
    alias: Tuple[str, ...] = ()
    awaited: bool = False
    locks: Tuple[str, ...] = ()
    loop: bool = False
    depth: int = 0


@dataclass(frozen=True)
class FunctionInfo:
    """One function/method (or the module body, qualname ``""``).

    ``annotations`` are ``(param, dotted-ref)`` pairs for params whose
    annotation is a plain dotted name (``Optional[X]``/``X | None``
    unwrapped, string annotations parsed when identifier-shaped), plus a
    ``("return", ref)`` pair for the return annotation — the type facts
    the concurrency pass resolves accessor chains through.
    """

    qualname: str
    params: Tuple[str, ...]
    line: int
    ops: Tuple[Op, ...]
    nested: Tuple[str, ...] = ()  # qualnames of nested defs
    is_async: bool = False
    globals_declared: Tuple[str, ...] = ()
    annotations: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class DeadCandidate:
    """A module-level def DEAD001 may flag if nothing references it."""

    name: str
    kind: str  # "function" | "class"
    line: int
    col: int


@dataclass
class ModuleSummary:
    """Whole-program-relevant facts about one module."""

    module: str
    path: str
    #: local binding -> (absolute dotted target, line of the import)
    imports: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    star_imports: Tuple[str, ...] = ()
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> method names
    classes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: every identifier mentioned anywhere (names, attrs, import aliases,
    #: ``__all__`` strings) — the usage side of DEAD001
    used_names: FrozenSet[str] = frozenset()
    exports: Tuple[str, ...] = ()
    dead_candidates: Tuple[DeadCandidate, ...] = ()
    #: class name -> attribute names bound by plain assignments in the
    #: class body (the classic class-level-state idiom; dataclass field
    #: declarations are AnnAssigns and deliberately excluded)
    class_attrs: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: line -> owner from ``# repro-lint: shared(owner) -- why``
    shared_lines: Dict[int, str] = field(default_factory=dict)
    #: line -> rule ids waived by ``# repro-lint: allow(RULE) -- why``
    #: (statement-span expanded); whole-program rules that opt into
    #: inline suppression filter their findings through this table.
    allow_lines: Dict[int, Tuple[str, ...]] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "path": self.path,
            "imports": {k: [t, ln] for k, (t, ln) in self.imports.items()},
            "star_imports": list(self.star_imports),
            "functions": {q: _function_to_json(f) for q, f in self.functions.items()},
            "classes": {c: list(ms) for c, ms in self.classes.items()},
            "used_names": sorted(self.used_names),
            "exports": list(self.exports),
            "dead_candidates": [
                [d.name, d.kind, d.line, d.col] for d in self.dead_candidates
            ],
            "class_attrs": {c: list(ns) for c, ns in self.class_attrs.items()},
            "shared_lines": {str(ln): owner for ln, owner in self.shared_lines.items()},
            "allow_lines": {
                str(ln): sorted(rules) for ln, rules in self.allow_lines.items()
            },
        }

    @classmethod
    def from_json(cls, raw: Mapping[str, Any]) -> "ModuleSummary":
        if raw.get("version") != SUMMARY_VERSION:
            raise ValueError("summary version mismatch")
        return cls(
            module=str(raw["module"]),
            path=str(raw["path"]),
            imports={
                str(k): (str(v[0]), int(v[1])) for k, v in dict(raw["imports"]).items()
            },
            star_imports=tuple(str(s) for s in raw["star_imports"]),
            functions={
                str(q): _function_from_json(f)
                for q, f in dict(raw["functions"]).items()
            },
            classes={
                str(c): tuple(str(m) for m in ms)
                for c, ms in dict(raw["classes"]).items()
            },
            used_names=frozenset(str(n) for n in raw["used_names"]),
            exports=tuple(str(e) for e in raw["exports"]),
            dead_candidates=tuple(
                DeadCandidate(str(d[0]), str(d[1]), int(d[2]), int(d[3]))
                for d in raw["dead_candidates"]
            ),
            class_attrs={
                str(c): tuple(str(n) for n in ns)
                for c, ns in dict(raw["class_attrs"]).items()
            },
            shared_lines={
                int(ln): str(owner)
                for ln, owner in dict(raw["shared_lines"]).items()
            },
            allow_lines={
                int(ln): tuple(str(r) for r in rules)
                for ln, rules in dict(raw["allow_lines"]).items()
            },
        )


# ----------------------------------------------------------------------
# JSON helpers
# ----------------------------------------------------------------------

def _expr_to_json(expr: ExprInfo) -> Dict[str, Any]:
    return {
        "n": list(expr.names),
        "r": [[r.attr, r.recv, r.line, r.col, r.gated] for r in expr.reads],
        "c": [_call_to_json(c) for c in expr.calls],
    }


def _call_to_json(call: CallInfo) -> Dict[str, Any]:
    return {
        "f": call.callee,
        "a": [_expr_to_json(a) for a in call.args],
        "k": [[name, _expr_to_json(a)] for name, a in call.kwargs],
        "l": call.line,
        "o": call.col,
        "g": call.gated,
        "rc": call.recv_call,
        "m": call.method,
    }


def _expr_from_json(raw: Mapping[str, Any]) -> ExprInfo:
    return ExprInfo(
        names=tuple(str(n) for n in raw["n"]),
        reads=tuple(
            AttrRead(
                str(r[0]),
                None if r[1] is None else str(r[1]),
                int(r[2]),
                int(r[3]),
                bool(r[4]),
            )
            for r in raw["r"]
        ),
        calls=tuple(_call_from_json(c) for c in raw["c"]),
    )


def _call_from_json(raw: Mapping[str, Any]) -> CallInfo:
    return CallInfo(
        callee=None if raw["f"] is None else str(raw["f"]),
        args=tuple(_expr_from_json(a) for a in raw["a"]),
        kwargs=tuple((str(k[0]), _expr_from_json(k[1])) for k in raw["k"]),
        line=int(raw["l"]),
        col=int(raw["o"]),
        gated=bool(raw["g"]),
        recv_call=None if raw["rc"] is None else str(raw["rc"]),
        method=None if raw["m"] is None else str(raw["m"]),
    )


def _function_to_json(fn: FunctionInfo) -> Dict[str, Any]:
    return {
        "q": fn.qualname,
        "p": list(fn.params),
        "l": fn.line,
        "ops": [
            [
                op.kind,
                list(op.targets),
                _expr_to_json(op.expr),
                op.line,
                op.col,
                [[p, m] for p, m in op.writes],
                list(op.alias),
                op.awaited,
                list(op.locks),
                op.loop,
                op.depth,
            ]
            for op in fn.ops
        ],
        "nested": list(fn.nested),
        "async": fn.is_async,
        "globals": list(fn.globals_declared),
        "ann": [[n, r] for n, r in fn.annotations],
    }


def _function_from_json(raw: Mapping[str, Any]) -> FunctionInfo:
    return FunctionInfo(
        qualname=str(raw["q"]),
        params=tuple(str(p) for p in raw["p"]),
        line=int(raw["l"]),
        ops=tuple(
            Op(
                kind=str(op[0]),
                targets=tuple(str(t) for t in op[1]),
                expr=_expr_from_json(op[2]),
                line=int(op[3]),
                col=int(op[4]),
                writes=tuple((str(w[0]), str(w[1])) for w in op[5]),
                alias=tuple(str(a) for a in op[6]),
                awaited=bool(op[7]),
                locks=tuple(str(lk) for lk in op[8]),
                loop=bool(op[9]),
                depth=int(op[10]),
            )
            for op in raw["ops"]
        ),
        nested=tuple(str(n) for n in raw["nested"]),
        is_async=bool(raw["async"]),
        globals_declared=tuple(str(g) for g in raw["globals"]),
        annotations=tuple((str(a[0]), str(a[1])) for a in raw["ann"]),
    )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------

def dotted_ref(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class _ExprBuilder:
    """Accumulates one :class:`ExprInfo` from an AST expression."""

    def __init__(self, gate_vars: FrozenSet[str]) -> None:
        self._gate_vars = gate_vars
        self.names: List[str] = []
        self.reads: List[AttrRead] = []
        self.calls: List[CallInfo] = []
        self.yields: List[ast.expr] = []

    def build(self, node: Optional[ast.expr], gated: bool) -> None:
        if node is None:
            return
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                self.names.append(node.id)
            return
        if isinstance(node, ast.Attribute):
            self.reads.append(
                AttrRead(
                    attr=node.attr,
                    recv=dotted_ref(node.value),
                    line=node.lineno,
                    col=node.col_offset,
                    gated=gated,
                )
            )
            self.build(node.value, gated)
            return
        if isinstance(node, ast.Call):
            args: List[ExprInfo] = []
            for arg in node.args:
                target = arg.value if isinstance(arg, ast.Starred) else arg
                args.append(_build_expr(target, self._gate_vars, gated, self.yields))
            kwargs: List[Tuple[str, ExprInfo]] = []
            for kw in node.keywords:
                sub = _build_expr(kw.value, self._gate_vars, gated, self.yields)
                if kw.arg is None:  # **mapping: fold into positional args
                    args.append(sub)
                else:
                    kwargs.append((kw.arg, sub))
            recv_call: Optional[str] = None
            method: Optional[str] = None
            callee = dotted_ref(node.func)
            if (
                callee is None
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Call)
            ):
                recv_call = dotted_ref(node.func.value.func)
                if recv_call is not None:
                    method = node.func.attr
            self.calls.append(
                CallInfo(
                    callee=callee,
                    args=tuple(args),
                    kwargs=tuple(kwargs),
                    line=node.lineno,
                    col=node.col_offset,
                    gated=gated,
                    recv_call=recv_call,
                    method=method,
                )
            )
            self.build(node.func, gated)
            return
        if isinstance(node, ast.IfExp):
            branch_gated = gated or self._mentions_gate(node.test)
            self.build(node.test, gated)
            self.build(node.body, branch_gated)
            self.build(node.orelse, gated)
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self.yields.append(node.value)
                self.build(node.value, gated)
            return
        if isinstance(node, ast.Lambda):
            return  # bodies of lambdas are out of scope (documented)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.build(child, gated)
            elif isinstance(child, ast.comprehension):
                self.build(child.iter, gated)
                for cond in child.ifs:
                    self.build(cond, gated)

    def _mentions_gate(self, test: ast.expr) -> bool:
        return _mentions_gate(test, self._gate_vars)

    def finish(self) -> ExprInfo:
        return ExprInfo(
            names=tuple(self.names),
            reads=tuple(self.reads),
            calls=tuple(self.calls),
        )


def _build_expr(
    node: Optional[ast.expr],
    gate_vars: FrozenSet[str],
    gated: bool,
    yields: Optional[List[ast.expr]] = None,
) -> ExprInfo:
    builder = _ExprBuilder(gate_vars)
    builder.build(node, gated)
    if yields is not None:
        yields.extend(builder.yields)
    return builder.finish()


def _mentions_gate(test: ast.expr, gate_vars: FrozenSet[str]) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Call):
            ref = dotted_ref(node.func)
            if ref is not None and ref.rsplit(".", 1)[-1] in GATE_FUNCTIONS:
                return True
        elif isinstance(node, ast.Name) and node.id in gate_vars:
            return True
    return False


def _gate_vars_for(body: Sequence[ast.stmt]) -> FrozenSet[str]:
    """Locals assigned from expressions that mention a gate predicate.

    One fixpoint pass so chains (``a = sees(..); b = a and x``) resolve.
    """
    gate_vars: FrozenSet[str] = frozenset()
    for _ in range(4):
        found = set(gate_vars)
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(node, ast.Assign) and _mentions_gate_value(
                    node.value, gate_vars
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            found.add(target.id)
        if found == set(gate_vars):
            break
        gate_vars = frozenset(found)
    return gate_vars


def _mentions_gate_value(value: ast.expr, gate_vars: FrozenSet[str]) -> bool:
    return _mentions_gate(value, gate_vars)


def _flatten_targets(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_flatten_targets(element))
        return names
    if isinstance(target, ast.Starred):
        return _flatten_targets(target.value)
    return []  # attribute / subscript targets: recorded as writes instead


def _write_targets(target: ast.expr) -> List[Tuple[str, str]]:
    """``(path, mode)`` write records for attribute/subscript targets."""
    if isinstance(target, ast.Attribute):
        ref = dotted_ref(target)
        return [(ref, "bind")] if ref is not None else []
    if isinstance(target, ast.Subscript):
        ref = dotted_ref(target.value)
        return [(ref, "mutate")] if ref is not None else []
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[Tuple[str, str]] = []
        for element in target.elts:
            out.extend(_write_targets(element))
        return out
    if isinstance(target, ast.Starred):
        return _write_targets(target.value)
    return []


def _alias_refs(value: Optional[ast.expr]) -> Tuple[str, ...]:
    """Dotted roots an assigned value may alias.

    Call results (and awaited values) are deliberately *fresh*: an object
    handed out by an accessor is treated as owned by the accessor's
    return-type class, not by whatever the accessor read it from.
    """
    if value is None:
        return ()
    refs: List[str] = []

    def visit(node: ast.expr) -> None:
        if isinstance(node, ast.Name):
            refs.append(node.id)
        elif isinstance(node, ast.Attribute):
            ref = dotted_ref(node)
            if ref is not None:
                refs.append(ref)
        elif isinstance(node, ast.Subscript):
            ref = dotted_ref(node.value)
            if ref is not None:
                refs.append(ref)  # d[k] aliases into d's object graph
        elif isinstance(node, ast.IfExp):
            visit(node.body)
            visit(node.orelse)
        elif isinstance(node, ast.BoolOp):
            for sub in node.values:
                visit(sub)
        elif isinstance(node, ast.NamedExpr):
            visit(node.value)
        # Call / Await / literals: fresh

    visit(value)
    return tuple(dict.fromkeys(refs))


#: Receiver-name fragments that mark a ``with`` context as a sync lock.
_LOCKISH_LAST_COMPONENTS = ("lock", "mutex")


def _lock_ref(expr: ast.expr) -> Optional[str]:
    """The dotted ref of a lock-like ``with`` context expr, if any."""
    node = expr.func if isinstance(expr, ast.Call) else expr
    ref = dotted_ref(node)
    if ref is None:
        return None
    last = ref.rsplit(".", 1)[-1].lower()
    if any(fragment in last for fragment in _LOCKISH_LAST_COMPONENTS):
        return ref
    if last in ("semaphore", "condition"):
        return ref
    return None


def _contains_await(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    return any(isinstance(sub, ast.Await) for sub in ast.walk(node))


_IDENTIFIER_CHAIN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")


def _annotation_ref(node: Optional[ast.expr]) -> Optional[str]:
    """A plain dotted ref for an annotation, unwrapping Optional/None."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        if _IDENTIFIER_CHAIN_RE.fullmatch(text):
            return text
        return None
    if isinstance(node, ast.Subscript):
        base = dotted_ref(node.value)
        if base is not None and base.rsplit(".", 1)[-1] == "Optional":
            return _annotation_ref(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left_none = isinstance(node.left, ast.Constant) and node.left.value is None
        right_none = isinstance(node.right, ast.Constant) and node.right.value is None
        if right_none:
            return _annotation_ref(node.left)
        if left_none:
            return _annotation_ref(node.right)
        return None
    return dotted_ref(node)


def _annotations_of(node: ast.stmt) -> Tuple[Tuple[str, str], ...]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return ()
    pairs: List[Tuple[str, str]] = []
    arguments = node.args
    for arg in [*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs]:
        ref = _annotation_ref(arg.annotation)
        if ref is not None:
            pairs.append((arg.arg, ref))
    ret = _annotation_ref(node.returns)
    if ret is not None:
        pairs.append(("return", ret))
    return tuple(pairs)


def _collect_globals(body: Sequence[ast.stmt]) -> Tuple[str, ...]:
    """Names ``global``-declared in this body (nested defs excluded)."""
    found: Set[str] = set()
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Global):
            found.update(node.names)
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.stmt, ast.excepthandler)):
                stack.append(child)
    return tuple(sorted(found))


class _FunctionExtractor:
    """Turns one function body into a tuple of :class:`Op`."""

    def __init__(self, gate_vars: FrozenSet[str]) -> None:
        self._gate_vars = gate_vars
        self.ops: List[Op] = []
        self.nested_defs: List[ast.stmt] = []
        self._lock_stack: List[str] = []
        self._loop_depth = 0

    def run(self, body: Sequence[ast.stmt]) -> Tuple[Op, ...]:
        for stmt in body:
            self._statement(stmt, gated=False)
        return tuple(self.ops)

    # -- statement dispatch ------------------------------------------------

    def _statement(self, stmt: ast.stmt, gated: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested_defs.append(stmt)
            return
        if isinstance(stmt, ast.ClassDef):
            return  # classes nested in functions are out of scope
        if isinstance(stmt, ast.Assign):
            targets: List[str] = []
            writes: List[Tuple[str, str]] = []
            for target in stmt.targets:
                targets.extend(_flatten_targets(target))
                writes.extend(_write_targets(target))
            self._add(
                "assign",
                tuple(targets),
                stmt.value,
                stmt,
                gated,
                writes=tuple(writes),
                alias=_alias_refs(stmt.value),
            )
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._add(
                    "assign",
                    tuple(_flatten_targets(stmt.target)),
                    stmt.value,
                    stmt,
                    gated,
                    writes=tuple(_write_targets(stmt.target)),
                    alias=_alias_refs(stmt.value),
                )
            return
        if isinstance(stmt, ast.AugAssign):
            names = tuple(_flatten_targets(stmt.target))
            writes = tuple(_write_targets(stmt.target))
            expr = self._expr(stmt.value, gated)
            if names:
                # x += y reads x as well
                merged = ExprInfo(expr.names + names, expr.reads, expr.calls)
            else:
                # self.x += y: record the read side of the target too
                target_expr = _build_expr(stmt.target, self._gate_vars, gated)
                merged = ExprInfo(
                    expr.names + target_expr.names,
                    expr.reads + target_expr.reads,
                    expr.calls + target_expr.calls,
                )
            self.ops.append(
                Op(
                    "assign",
                    names,
                    merged,
                    stmt.lineno,
                    stmt.col_offset,
                    writes=writes,
                    awaited=_contains_await(stmt.value),
                    locks=tuple(self._lock_stack),
                    depth=self._loop_depth,
                )
            )
            return
        if isinstance(stmt, ast.Return):
            self._add("return", (), stmt.value, stmt, gated)
            return
        if isinstance(stmt, ast.Expr):
            self._add("expr", (), stmt.value, stmt, gated)
            return
        if isinstance(stmt, ast.If):
            branch_gated = gated or _mentions_gate(stmt.test, self._gate_vars)
            self._add("expr", (), stmt.test, stmt, gated)
            for sub in stmt.body:
                self._statement(sub, branch_gated)
            for sub in stmt.orelse:
                self._statement(sub, gated)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._add(
                "assign",
                tuple(_flatten_targets(stmt.target)),
                stmt.iter,
                stmt,
                gated,
                writes=tuple(_write_targets(stmt.target)),
                alias=_alias_refs(stmt.iter),
                loop=True,
            )
            self._loop_depth += 1
            for sub in stmt.body:
                self._statement(sub, gated)
            self._loop_depth -= 1
            for sub in stmt.orelse:
                self._statement(sub, gated)
            return
        if isinstance(stmt, ast.While):
            self._add("expr", (), stmt.test, stmt, gated, loop=True)
            self._loop_depth += 1
            for sub in stmt.body:
                self._statement(sub, gated)
            self._loop_depth -= 1
            for sub in stmt.orelse:
                self._statement(sub, gated)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._add(
                        "assign",
                        tuple(_flatten_targets(item.optional_vars)),
                        item.context_expr,
                        stmt,
                        gated,
                        writes=tuple(_write_targets(item.optional_vars)),
                        alias=_alias_refs(item.context_expr),
                    )
                else:
                    self._add("expr", (), item.context_expr, stmt, gated)
                if isinstance(stmt, ast.With):
                    lock = _lock_ref(item.context_expr)
                    if lock is not None:
                        self._lock_stack.append(lock)
                        pushed += 1
            for sub in stmt.body:
                self._statement(sub, gated)
            if pushed:
                del self._lock_stack[-pushed:]
            return
        if isinstance(stmt, ast.Try):
            for sub in stmt.body:
                self._statement(sub, gated)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._statement(sub, gated)
            for sub in stmt.orelse:
                self._statement(sub, gated)
            for sub in stmt.finalbody:
                self._statement(sub, gated)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._add("expr", (), stmt.exc, stmt, gated)
            return
        if isinstance(stmt, ast.Assert):
            self._add("expr", (), stmt.test, stmt, gated)
            return
        if isinstance(stmt, ast.Delete):
            writes: List[Tuple[str, str]] = []
            for target in stmt.targets:
                if isinstance(target, ast.Attribute):
                    writes.extend(_write_targets(target))
                elif isinstance(target, ast.Subscript):
                    writes.extend(_write_targets(target))
            if writes:
                self.ops.append(
                    Op(
                        "expr",
                        (),
                        EMPTY_EXPR,
                        stmt.lineno,
                        stmt.col_offset,
                        writes=tuple(writes),
                        locks=tuple(self._lock_stack),
                        depth=self._loop_depth,
                    )
                )
            return
        match_stmt = getattr(ast, "Match", None)  # absent on Python 3.9
        if match_stmt is not None and isinstance(stmt, match_stmt):
            self._add("expr", (), stmt.subject, stmt, gated)
            for case in stmt.cases:
                for sub in case.body:
                    self._statement(sub, gated)
            return
        # Pass / Break / Continue / Global / Nonlocal / Import: nothing
        # flow-relevant here (imports and global decls are collected
        # separately).

    # -- helpers -----------------------------------------------------------

    def _expr(self, node: Optional[ast.expr], gated: bool) -> ExprInfo:
        yields: List[ast.expr] = []
        expr = _build_expr(node, self._gate_vars, gated, yields)
        for value in yields:
            produced = _build_expr(value, self._gate_vars, gated)
            self.ops.append(
                Op(
                    "return",
                    (),
                    produced,
                    value.lineno,
                    value.col_offset,
                    depth=self._loop_depth,
                )
            )
        return expr

    def _add(
        self,
        kind: str,
        targets: Tuple[str, ...],
        node: Optional[ast.expr],
        stmt: ast.stmt,
        gated: bool,
        writes: Tuple[Tuple[str, str], ...] = (),
        alias: Tuple[str, ...] = (),
        loop: bool = False,
    ) -> None:
        expr = self._expr(node, gated) if node is not None else EMPTY_EXPR
        self.ops.append(
            Op(
                kind,
                targets,
                expr,
                stmt.lineno,
                stmt.col_offset,
                writes=writes,
                alias=alias,
                awaited=_contains_await(node),
                locks=tuple(self._lock_stack),
                loop=loop,
                depth=self._loop_depth,
            )
        )


def _extract_function(
    node: ast.stmt,
    qualname: str,
    params: Tuple[str, ...],
    body: Sequence[ast.stmt],
    out: Dict[str, FunctionInfo],
) -> None:
    gate_vars = _gate_vars_for(body)
    extractor = _FunctionExtractor(gate_vars)
    ops = extractor.run(body)
    nested: List[str] = []
    for sub in extractor.nested_defs:
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            sub_qual = f"{qualname}.{sub.name}" if qualname else sub.name
            nested.append(sub_qual)
            _extract_function(sub, sub_qual, _params_of(sub), sub.body, out)
    out[qualname] = FunctionInfo(
        qualname=qualname,
        params=params,
        line=getattr(node, "lineno", 1),
        ops=ops,
        nested=tuple(nested),
        is_async=isinstance(node, ast.AsyncFunctionDef),
        globals_declared=_collect_globals(body),
        annotations=_annotations_of(node),
    )


def _params_of(node: ast.stmt) -> Tuple[str, ...]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return ()
    arguments = node.args
    params = [a.arg for a in arguments.posonlyargs]
    params.extend(a.arg for a in arguments.args)
    if arguments.vararg is not None:
        params.append(arguments.vararg.arg)
    params.extend(a.arg for a in arguments.kwonlyargs)
    if arguments.kwarg is not None:
        params.append(arguments.kwarg.arg)
    return tuple(params)


def _collect_imports(
    tree: ast.Module, module: str, is_package: bool
) -> Tuple[Dict[str, Tuple[str, int]], Tuple[str, ...]]:
    imports: Dict[str, Tuple[str, int]] = {}
    stars: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = (alias.name, node.lineno)
                else:
                    root = alias.name.split(".", 1)[0]
                    imports[root] = (root, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from(node, module, is_package)
            for alias in node.names:
                if alias.name == "*":
                    stars.append(base)
                    continue
                bound = alias.asname or alias.name
                target = f"{base}.{alias.name}" if base else alias.name
                imports[bound] = (target, node.lineno)
    return imports, tuple(stars)


def _resolve_from(node: ast.ImportFrom, module: str, is_package: bool) -> str:
    if node.level == 0:
        return node.module or ""
    strip = node.level if not is_package else node.level - 1
    parts = module.split(".")
    base_parts = parts[: max(0, len(parts) - strip)]
    if node.module:
        base_parts.append(node.module)
    return ".".join(base_parts)


def _collect_used_names(tree: ast.Module) -> FrozenSet[str]:
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            used.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name != "*":
                    used.add(alias.name.split(".", 1)[0])
                    used.add(alias.name.rsplit(".", 1)[-1])
                if alias.asname is not None:
                    used.add(alias.asname)
    for export in _collect_exports(tree):
        used.add(export)
    return frozenset(used)


def _collect_exports(tree: ast.Module) -> Tuple[str, ...]:
    exports: List[str] = []
    for node in tree.body:
        if isinstance(node, ast.Assign):
            is_all = any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            )
            if is_all and isinstance(node.value, (ast.List, ast.Tuple)):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        exports.append(element.value)
    return tuple(exports)


def _collect_dead_candidates(tree: ast.Module) -> Tuple[DeadCandidate, ...]:
    candidates: List[DeadCandidate] = []
    for node in tree.body:  # strictly top level: conditional defs are exempt
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.decorator_list:
                continue  # decorators register/side-effect; assume live
            if node.name.startswith("__") and node.name.endswith("__"):
                continue
            candidates.append(
                DeadCandidate(
                    name=node.name,
                    kind="class" if isinstance(node, ast.ClassDef) else "function",
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
    return tuple(candidates)


def extract_summary(
    tree: ast.Module,
    module: str,
    path: str,
    is_package: bool = False,
    shared_lines: Optional[Mapping[int, str]] = None,
    allow_lines: Optional[Mapping[int, Iterable[str]]] = None,
) -> ModuleSummary:
    """One-pass extraction of the whole-program-relevant facts."""
    imports, stars = _collect_imports(tree, module, is_package)
    functions: Dict[str, FunctionInfo] = {}
    classes: Dict[str, Tuple[str, ...]] = {}
    class_attrs: Dict[str, Tuple[str, ...]] = {}
    toplevel: List[ast.stmt] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _extract_function(node, node.name, _params_of(node), node.body, functions)
        elif isinstance(node, ast.ClassDef):
            methods: List[str] = []
            attrs: List[str] = []
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(sub.name)
                    _extract_function(
                        sub, f"{node.name}.{sub.name}", _params_of(sub), sub.body, functions
                    )
                elif isinstance(sub, ast.Assign):
                    # Plain class-body assignments only: AnnAssign names are
                    # overwhelmingly dataclass fields (instance state), not
                    # class-level shared state.
                    for target in sub.targets:
                        if isinstance(target, ast.Name) and not target.id.startswith(
                            "__"
                        ):
                            attrs.append(target.id)
            classes[node.name] = tuple(methods)
            if attrs:
                class_attrs[node.name] = tuple(attrs)
        else:
            toplevel.append(node)
    _extract_function(tree, "", (), toplevel, functions)
    return ModuleSummary(
        module=module,
        path=path,
        imports=imports,
        star_imports=stars,
        functions=functions,
        classes=classes,
        used_names=_collect_used_names(tree),
        exports=_collect_exports(tree),
        dead_candidates=_collect_dead_candidates(tree),
        class_attrs=class_attrs,
        shared_lines=dict(shared_lines or {}),
        allow_lines={
            line: tuple(sorted(rules))
            for line, rules in (allow_lines or {}).items()
        },
    )
