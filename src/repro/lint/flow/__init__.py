"""Whole-program privacy-flow analysis.

The per-file rules in :mod:`repro.lint.rules` police one file at a
time; they cannot see a ground-truth value laundered through a helper
in a *different* module into attacker code.  This package closes that
gap:

* :mod:`~repro.lint.flow.summary` parses each module once into a
  compact, JSON-serialisable :class:`ModuleSummary` (imports, function
  bodies as assignment/return/call operations, attribute reads with
  privacy-gate annotations).  Summaries are what the on-disk lint
  cache stores, so a warm run rebuilds the whole-program view without
  re-parsing a single unchanged file.
* :mod:`~repro.lint.flow.index` stitches summaries into a
  :class:`ProjectIndex`: module table, import graph and an approximate
  call graph (name/attribute resolution over module and class
  namespaces).
* :mod:`~repro.lint.flow.taint` runs an inter-procedural taint
  fixpoint over the index: seeds at ground-truth sources, propagates
  through assignments, returns and call arguments, and sanitises at
  the :class:`~repro.core.oracle.GroundTruthOracle` evaluation seam.
* :mod:`~repro.lint.flow.rules` ships the whole-program rules
  ``FLOW001`` (ground-truth taint reaches attacker code without the
  oracle seam), ``FLOW002`` (privacy-gated profile field flows into a
  crawler-visible return) and ``DEAD001`` (module-level defs nothing
  references).
"""

from .index import ProjectIndex
from .summary import (
    SUMMARY_VERSION,
    AttrRead,
    CallInfo,
    ExprInfo,
    FunctionInfo,
    ModuleSummary,
    Op,
    extract_summary,
)
from .taint import CallRecord, ReturnRecord, SeedRecord, TaintDomain, TaintEngine
from . import rules as flow_rules  # noqa: F401  (rule registration)

__all__ = [
    "AttrRead",
    "CallInfo",
    "CallRecord",
    "ExprInfo",
    "FunctionInfo",
    "ModuleSummary",
    "Op",
    "ProjectIndex",
    "ReturnRecord",
    "SUMMARY_VERSION",
    "SeedRecord",
    "TaintDomain",
    "TaintEngine",
    "extract_summary",
    "flow_rules",
]
