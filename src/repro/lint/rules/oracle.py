"""ORACLE001/ORACLE002 — the attacker/oracle epistemic boundary.

The paper's claim is only meaningful if the attacker (crawler +
profiler) learns everything through the OSN's stranger-facing
interface.  These rules make that machine-checked:

* **ORACLE001** — modules under :data:`ATTACKER_PACKAGES` may not
  import ``repro.worldgen`` at all, nor ``repro.osn`` internals beyond
  the attacker-visible surface (:data:`ATTACKER_VISIBLE_OSN`).
  Imports under ``if TYPE_CHECKING:`` are permitted: they never run,
  so they cannot move data across the boundary.
* **ORACLE002** — the same modules may not touch ground-truth
  attributes (:data:`GROUND_TRUTH_ATTRIBUTES`) on *any* object; the
  simulator's internals must stay unreachable even when a ``World``
  flows through attacker code as an opaque handle.

Modules in :data:`EVALUATION_MODULES` are the explicitly-marked
evaluation seam (scoring *needs* ground truth) and are exempt from
both rules.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from ..findings import Finding
from .base import FileContext, Rule, register

#: Packages holding attacker-side code, subject to the boundary rules.
ATTACKER_PACKAGES: Tuple[str, ...] = ("repro.crawler", "repro.core")

#: The OSN modules a stranger-level attacker legitimately sees: the
#: HTML frontend, its parsed page/view projections, the shared value
#: vocabulary (`repro.osn.public`), errors and the simulated clock (a
#: real attacker knows the date and can read a wall clock).
ATTACKER_VISIBLE_OSN = frozenset(
    {
        "repro.osn.clock",
        "repro.osn.errors",
        "repro.osn.frontend",
        "repro.osn.pages",
        "repro.osn.public",
        "repro.osn.view",
    }
)

#: The evaluation seam: scoring code that *must* read ground truth,
#: exempt from both oracle rules.  Keep this list short and audited.
EVALUATION_MODULES = frozenset(
    {
        "repro.core.countermeasures",  # builds counterfactual worlds to compare defences
        "repro.core.evaluation",       # scores attack output against ground truth
        "repro.core.oracle",           # the narrow ground-truth window itself
    }
)

#: Attribute names that expose ground truth on worlds / networks /
#: populations.  Attacker code reading any of these is a leak.
GROUND_TRUTH_ATTRIBUTES = frozenset(
    {
        "account_index",
        "adult_registered_students",
        "all_student_uids",
        "birth_year_fraction",
        "ground_truth",
        "ground_truths",
        "is_registered_minor",
        "minimal_profile_students",
        "network",
        "person_for",
        "population",
        "registered_minor_students",
        "student_uids_by_year",
        "students_by_year",
        "user_for",
        "year_of_uid",
    }
)


def is_attacker_module(module: str) -> bool:
    """True for modules the boundary rules police."""
    if module in EVALUATION_MODULES:
        return False
    return any(
        module == package or module.startswith(package + ".")
        for package in ATTACKER_PACKAGES
    )


def forbidden_import(target: str) -> "str | None":
    """Why ``target`` may not be imported from attacker code (or None)."""
    if target == "repro.worldgen" or target.startswith("repro.worldgen."):
        return (
            f"imports simulator ground truth '{target}'; attacker code must go "
            "through repro.osn.frontend or the evaluation seam (repro.core.oracle)"
        )
    if target == "repro.colgen" or target.startswith("repro.colgen."):
        return (
            f"imports columnar simulator ground truth '{target}'; attacker code "
            "sees columnar worlds only through the HTML frontend they serve"
        )
    if target == "repro.osn" or target.startswith("repro.osn."):
        if target not in ATTACKER_VISIBLE_OSN:
            return (
                f"imports OSN internal '{target}'; attacker code may only use "
                "the attacker-visible surface "
                "(frontend, pages, view, public, errors, clock)"
            )
    return None


def import_targets(ctx: FileContext, node: ast.AST) -> List[str]:
    """The absolute dotted modules one import statement reaches for."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        module = ctx.resolve_relative(node)
        # ``from repro import worldgen`` / ``from repro.osn import view``
        # name *modules*; check each bound name as a submodule.
        if module in ("repro", "repro.osn", "repro.worldgen"):
            return [f"{module}.{alias.name}" for alias in node.names]
        return [module]
    return []


@register
class OracleImportRule(Rule):
    """Attacker layers must not import simulator internals.

    Rationale: the paper's threat model gives the attacker only what a
    real crawler sees — rendered pages.  An import of ``repro.worldgen``
    or a non-public ``repro.osn`` module lets attack code read ground
    truth it could never observe, silently inflating results.

    Fix: consume the crawler-visible vocabulary (``repro.osn.public``)
    or route the access through the evaluation seam
    (``repro.core.oracle``).

    Suppression: ``# repro-lint: allow(ORACLE001) -- <why>`` on the
    import line (evaluation-only helpers).
    """

    rule_id = "ORACLE001"
    summary = (
        "attacker layers (repro.crawler, repro.core) must not import "
        "repro.worldgen or non-public repro.osn internals"
    )
    category = "boundary"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not is_attacker_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if node in ctx.typing_only:
                continue
            for target in import_targets(ctx, node):
                reason = forbidden_import(target)
                if reason is not None:
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"attacker-layer module '{ctx.module}' {reason}",
                    )


@register
class OracleAttributeRule(Rule):
    """Attacker layers must not read ground-truth attributes.

    Rationale: even without a forbidden import, an attribute chain like
    ``world.population`` or ``frontend.network`` reaches state the
    attacker cannot see; results computed from it measure nothing.

    Fix: score through :class:`repro.core.oracle.GroundTruthOracle`
    (the one sanctioned evaluation seam) or parse it out of fetched
    pages like the crawler does.

    Suppression: ``# repro-lint: allow(ORACLE002) -- <why>`` on the
    reading line.
    """

    rule_id = "ORACLE002"
    summary = (
        "attacker layers must not read ground-truth attributes "
        "(world.population, .ground_truth, frontend.network, ...)"
    )
    category = "boundary"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not is_attacker_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in GROUND_TRUTH_ATTRIBUTES:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    f"attacker-layer module '{ctx.module}' reads ground-truth "
                    f"attribute '.{node.attr}'; route it through the evaluation "
                    "seam (repro.core.oracle) or the frontend",
                )
