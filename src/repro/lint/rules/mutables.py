"""MUT001 — no mutable default arguments.

A ``def f(xs=[])`` default is evaluated once and shared across calls;
state then leaks between invocations (and, here, between supposedly
independent simulation runs).  Use ``None`` and construct inside, or a
``dataclasses.field(default_factory=...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import FileContext, Rule, register

#: Call-expression constructors that produce fresh mutable containers.
MUTABLE_CONSTRUCTORS = frozenset(
    {"bytearray", "deque", "defaultdict", "dict", "list", "set"}
)

_MUTABLE_LITERALS = (
    ast.Dict,
    ast.DictComp,
    ast.List,
    ast.ListComp,
    ast.Set,
    ast.SetComp,
)

def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultRule(Rule):
    rule_id = "MUT001"
    summary = "no mutable default arguments (shared across calls)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            name = getattr(node, "name", "<lambda>")
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield ctx.finding(
                        default,
                        self.rule_id,
                        f"mutable default argument in '{name}'; default to "
                        "None and build the container inside the function",
                    )
