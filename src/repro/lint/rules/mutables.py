"""MUT001 — no mutable default arguments.

A ``def f(xs=[])`` default is evaluated once and shared across calls;
state then leaks between invocations (and, here, between supposedly
independent simulation runs).  Use ``None`` and construct inside, or a
``dataclasses.field(default_factory=...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import FileContext, Rule, register

#: Call-expression constructors that produce fresh mutable containers.
MUTABLE_CONSTRUCTORS = frozenset(
    {"bytearray", "deque", "defaultdict", "dict", "list", "set"}
)

_MUTABLE_LITERALS = (
    ast.Dict,
    ast.DictComp,
    ast.List,
    ast.ListComp,
    ast.Set,
    ast.SetComp,
)

def _constructor_name(func: ast.expr) -> "str | None":
    """Final identifier of a constructor expression.

    Handles both the bare form (``defaultdict(...)``) and the
    attribute-call form (``collections.defaultdict(...)``): only the
    last path component decides mutability.
    """
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        return _constructor_name(node.func) in MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultRule(Rule):
    """No mutable default arguments, literal or call-constructed.

    Rationale: a default is evaluated once at ``def`` time and shared
    by every call; mutating it leaks state between invocations — and
    here, between supposedly independent simulation runs.  Container
    constructors (``dict()``, ``collections.defaultdict(list)``) are
    exactly as dangerous as display literals.

    Fix: default to ``None`` and build the container inside the
    function, or use ``dataclasses.field(default_factory=...)``.

    Suppression: ``# repro-lint: allow(MUT001) -- <why>`` on the line
    (e.g. a deliberately shared sentinel that is never mutated).
    """

    rule_id = "MUT001"
    summary = "no mutable default arguments (shared across calls)"
    category = "hygiene"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            name = getattr(node, "name", "<lambda>")
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield ctx.finding(
                        default,
                        self.rule_id,
                        f"mutable default argument in '{name}'; default to "
                        "None and build the container inside the function",
                    )
