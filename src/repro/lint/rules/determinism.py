"""DET001 — all randomness must flow through a seeded generator.

Reproducibility (same seed → same world → same attack numbers) is a
load-bearing property of this repo.  Module-level ``random.*`` calls
draw from the interpreter-global Mersenne Twister, whose state any
import can perturb; ``random.Random()`` / ``numpy.random.default_rng()``
without a seed start from OS entropy.  Either silently breaks replay.

Flagged:

* calls through the global generator (``random.choice(...)`` etc.),
* importing those functions directly (``from random import choice``),
* unseeded constructors: ``random.Random()``, ``random.SystemRandom``,
  ``numpy.random.default_rng()`` / ``RandomState()`` with no arguments,
* legacy global numpy randomness (``np.random.seed``, ``np.random.rand``),
* module-level RNG *instances* (``RNG = np.random.default_rng(0)`` at
  module scope) — even seeded, a module-global generator is shared
  mutable state: any new caller perturbs every later draw, so adding an
  import can silently reorder someone else's stream.  repro.colgen's
  sharded generation depends on per-shard generators constructed inside
  functions; this check keeps that discipline mechanical.

Allowed: ``random.Random(seed)``, passing a ``random.Random`` around,
``np.random.default_rng(seed)`` and methods on generator *instances*
(constructed and owned inside a function or class), and module-level
``SeedSequence`` values (immutable seed material, not a generator).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from ..findings import Finding
from .base import FileContext, Rule, register

#: Functions on the module-global generator (and their direct imports).
GLOBAL_RNG_FUNCTIONS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: numpy.random names that are fine (explicitly seeded constructions).
NUMPY_SEEDED_OK = frozenset({"Generator", "SeedSequence", "BitGenerator", "PCG64"})

#: Constructors that produce a *stateful* generator.  Binding one at
#: module scope is flagged regardless of seeding; SeedSequence is absent
#: on purpose (immutable seed material is safe to share).
RNG_CONSTRUCTORS = frozenset(
    {"Random", "SystemRandom", "default_rng", "RandomState", "Generator", "PCG64"}
)


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure attribute chain over a Name, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Names bound to modules we care about: alias -> dotted module."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("random", "numpy", "numpy.random"):
                    aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        aliases[alias.asname or "random"] = "numpy.random"
    return aliases


@register
class SeededRandomnessRule(Rule):
    """No module-global randomness, seeded or not.

    Rationale: the reproduction's claims rest on bit-for-bit rerun
    equivalence.  Module-level RNG state (``random.random()``, a shared
    ``Random()`` instance, ``numpy.random.*`` free functions) couples
    unrelated call sites through hidden global draws, so any reordering
    changes results.

    Fix: construct an explicitly seeded ``random.Random(seed)`` /
    ``numpy.random.default_rng(seed)`` where it is used and pass it
    down.

    Suppression: ``# repro-lint: allow(DET001) -- <why>`` on the line.
    """

    rule_id = "DET001"
    summary = (
        "no module-global randomness; use an explicitly seeded "
        "random.Random / numpy default_rng instance"
    )
    category = "determinism"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, aliases)
        yield from self._check_module_level_rngs(ctx, aliases)

    def _check_module_level_rngs(
        self, ctx: FileContext, aliases: Dict[str, str]
    ) -> Iterator[Finding]:
        """Flag generator instances bound at module scope, seeded or not."""
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = stmt.value
            else:
                continue
            if not isinstance(value, ast.Call):
                continue
            ctor = self._rng_constructor_name(value.func, aliases)
            if ctor is not None:
                yield ctx.finding(
                    stmt,
                    self.rule_id,
                    f"module-level RNG instance ({ctor}); a module-global "
                    "generator is shared mutable state — construct it inside "
                    "the function that owns the stream and thread the seed "
                    "explicitly",
                )

    def _rng_constructor_name(
        self, func: ast.expr, aliases: Dict[str, str]
    ) -> Optional[str]:
        """Dotted name if ``func`` is an RNG constructor, else None."""
        name = dotted_name(func)
        if name is None:
            return None
        if "." not in name:
            return None
        head, rest = name.split(".", 1)
        module = aliases.get(head)
        if module == "random" and rest in RNG_CONSTRUCTORS:
            return f"random.{rest}"
        if module == "numpy" and rest.startswith("random."):
            rest = rest[len("random."):]
            module = "numpy.random"
        if module == "numpy.random" and rest in RNG_CONSTRUCTORS:
            return f"numpy.random.{rest}"
        return None

    def _check_import_from(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        if node.module not in ("random", "numpy.random"):
            return
        for alias in node.names:
            if alias.name == "*" or alias.name in GLOBAL_RNG_FUNCTIONS:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    f"imports global-RNG function "
                    f"'{node.module}.{alias.name}'; thread a seeded "
                    "random.Random through instead",
                )

    def _check_call(
        self, ctx: FileContext, node: ast.Call, aliases: Dict[str, str]
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None or "." not in name:
            return
        head, rest = name.split(".", 1)
        module = aliases.get(head)
        if module == "random":
            yield from self._check_stdlib(ctx, node, rest)
        elif module == "numpy" and rest.startswith("random."):
            yield from self._check_numpy(ctx, node, rest[len("random."):])
        elif module == "numpy.random":
            yield from self._check_numpy(ctx, node, rest)

    def _check_stdlib(
        self, ctx: FileContext, node: ast.Call, fn: str
    ) -> Iterator[Finding]:
        if fn in GLOBAL_RNG_FUNCTIONS:
            yield ctx.finding(
                node,
                self.rule_id,
                f"calls the module-global generator 'random.{fn}'; "
                "use a seeded random.Random instance",
            )
        elif fn == "SystemRandom":
            yield ctx.finding(
                node,
                self.rule_id,
                "random.SystemRandom is OS entropy and can never replay; "
                "use a seeded random.Random",
            )
        elif fn == "Random" and not node.args:
            yield ctx.finding(
                node,
                self.rule_id,
                "random.Random() without a seed starts from OS entropy; "
                "pass an explicit seed",
            )

    def _check_numpy(
        self, ctx: FileContext, node: ast.Call, fn: str
    ) -> Iterator[Finding]:
        if fn in NUMPY_SEEDED_OK or "." in fn:
            return
        if fn in ("default_rng", "RandomState"):
            if not node.args:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    f"numpy.random.{fn}() without a seed starts from OS "
                    "entropy; pass an explicit seed",
                )
        else:
            yield ctx.finding(
                node,
                self.rule_id,
                f"calls legacy global numpy randomness 'numpy.random.{fn}'; "
                "use numpy.random.default_rng(seed)",
            )
