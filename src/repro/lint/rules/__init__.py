"""Rule registry: importing this package registers every built-in rule."""

from .base import FileContext, Rule, all_rules, register, rule_ids
from . import clock, determinism, mutables, oracle  # noqa: F401  (registration)

__all__ = [
    "FileContext",
    "Rule",
    "all_rules",
    "clock",
    "determinism",
    "mutables",
    "oracle",
    "register",
    "rule_ids",
]
