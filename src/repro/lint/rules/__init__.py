"""Rule registry: importing this package registers every built-in rule."""

from .base import FileContext, Rule, all_rules, register, rule_ids
from . import clock, determinism, mutables, oracle  # noqa: F401  (registration)

# The whole-program rules (FLOW001/FLOW002/DEAD001) live in the flow
# package; importing it registers them.  Imported last so the base/oracle
# submodules it depends on are already initialised.
from .. import flow  # noqa: E402,F401  (registration)

__all__ = [
    "FileContext",
    "Rule",
    "all_rules",
    "clock",
    "determinism",
    "mutables",
    "oracle",
    "register",
    "rule_ids",
]
