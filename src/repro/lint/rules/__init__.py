"""Rule registry: importing this package registers every built-in rule."""

from .base import FileContext, Rule, all_rules, register, rule_ids
from . import clock, determinism, mutables, oracle  # noqa: F401  (registration)

# The whole-program rules live outside this package; importing them
# registers them.  flow (FLOW001/FLOW002/DEAD001) first — conc
# (PURE001/SHARE001/ASYNC001/ASYNC002) builds on its IR and base class.
from .. import flow  # noqa: E402,F401  (registration)
from .. import conc  # noqa: E402,F401  (registration)

# scale (SCALE001/SCALE002/SCALE003/DET002) rides both the flow IR and
# conc's effect summaries, so it registers last.
from .. import scale  # noqa: E402,F401  (registration)

__all__ = [
    "FileContext",
    "Rule",
    "all_rules",
    "clock",
    "determinism",
    "mutables",
    "oracle",
    "register",
    "rule_ids",
]
