"""CLOCK001 — simulation and attack code read the sim clock, not the wall.

The whole experiment runs on :class:`repro.osn.clock.SimClock`: rate
limits, politeness pacing, "current year" semantics.  A stray
``time.time()`` or ``datetime.now()`` ties results to the machine's
clock (non-reproducible) and a real ``time.sleep`` would make the
simulation actually wait.

Telemetry modules (``repro.telemetry.*``) are exempt: observability
*should* record real wall time.  Duration-only timers
(``time.perf_counter`` / ``time.monotonic``) are allowed everywhere —
they cannot leak calendar time into simulation semantics and are what
the frontend uses to measure serving cost.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from ..findings import Finding
from .base import FileContext, Rule, register
from .determinism import dotted_name

#: Module prefixes allowed to read the wall clock.
WALL_CLOCK_ALLOWLIST = ("repro.telemetry",)

#: ``time`` module attributes that read calendar time or really sleep.
FORBIDDEN_TIME_FUNCTIONS = frozenset(
    {"asctime", "ctime", "gmtime", "localtime", "sleep", "time", "time_ns"}
)

#: Calls through the ``datetime`` module (``datetime.datetime.now()``).
FORBIDDEN_DATETIME_CALLS = frozenset(
    {"datetime.now", "datetime.utcnow", "datetime.today", "date.today"}
)


def is_wall_clock_exempt(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in WALL_CLOCK_ALLOWLIST
    )


@register
class SimClockRule(Rule):
    """No wall-clock reads or real sleeps in simulation/attack code.

    Rationale: the simulation runs on :class:`repro.osn.clock.SimClock`;
    a stray ``time.time()`` / ``datetime.now()`` / ``time.sleep()``
    couples results to the machine's clock (breaking determinism) or
    stalls the run for real seconds.

    Fix: thread the SimClock through and use ``clock.seconds()`` /
    ``clock.sleep()``; wall-clock *measurement* belongs in
    ``repro.telemetry`` (exempt) or benchmarks.

    Suppression: ``# repro-lint: allow(CLOCK001) -- <why>`` on the line.
    """

    rule_id = "CLOCK001"
    summary = (
        "no wall-clock reads or real sleeps outside repro.telemetry; "
        "use the SimClock"
    )
    category = "sim-time"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if is_wall_clock_exempt(ctx.module):
            return
        module_aliases = self._module_aliases(ctx.tree)
        class_aliases = self._datetime_class_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, module_aliases, class_aliases)

    def _module_aliases(self, tree: ast.Module) -> Dict[str, str]:
        """Names bound to the time/datetime modules: alias -> module."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("time", "datetime"):
                        aliases[alias.asname or alias.name] = alias.name
        return aliases

    def _datetime_class_aliases(self, tree: ast.Module) -> Dict[str, str]:
        """Names bound to the datetime/date classes: alias -> class."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.level == 0
                and node.module == "datetime"
            ):
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        aliases[alias.asname or alias.name] = alias.name
        return aliases

    def _check_import_from(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        if node.module != "time":
            return
        for alias in node.names:
            if alias.name == "*" or alias.name in FORBIDDEN_TIME_FUNCTIONS:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    f"imports wall-clock function 'time.{alias.name}'; "
                    "sim/attack code must use the SimClock "
                    "(repro.osn.clock)",
                )

    def _check_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        module_aliases: Dict[str, str],
        class_aliases: Dict[str, str],
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None or "." not in name:
            return
        head, rest = name.split(".", 1)
        module = module_aliases.get(head)
        if module == "time" and rest in FORBIDDEN_TIME_FUNCTIONS:
            hint = (
                "advance the SimClock with clock.sleep(...)"
                if rest == "sleep"
                else "read the SimClock (repro.osn.clock) instead"
            )
            yield ctx.finding(
                node,
                self.rule_id,
                f"wall-clock call 'time.{rest}' outside telemetry; {hint}",
            )
        elif module == "datetime" and rest in FORBIDDEN_DATETIME_CALLS:
            yield ctx.finding(
                node,
                self.rule_id,
                f"wall-clock call 'datetime.{rest}' outside telemetry; "
                "the simulation date lives on the SimClock",
            )
        elif head in class_aliases:
            qualified = f"{class_aliases[head]}.{rest}"
            if qualified in FORBIDDEN_DATETIME_CALLS:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    f"wall-clock call '{qualified}' outside telemetry; "
                    "the simulation date lives on the SimClock",
                )
