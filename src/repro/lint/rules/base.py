"""Rule protocol, registry and the per-file context rules inspect.

A rule is a class with a ``rule_id``, a one-line ``summary`` and a
``check(ctx)`` generator over :class:`~repro.lint.findings.Finding`.
Registration happens at import time via :func:`register`; the engine
asks :func:`all_rules` for one instance of everything registered.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Set, Type

from ..findings import Finding

if TYPE_CHECKING:  # runtime import would be circular (flow imports base)
    from ..flow.index import ProjectIndex

_REGISTRY: Dict[str, Type["Rule"]] = {}


@dataclass
class FileContext:
    """Everything a rule may look at for one file.

    The tree is parsed once and shared by every rule; ``typing_only``
    holds the import nodes that live under ``if TYPE_CHECKING:`` — those
    never execute, so boundary rules treat them as annotations, not as
    runtime data access.
    """

    path: str
    module: str
    source: str
    tree: ast.Module
    is_package: bool = False
    typing_only: Set[ast.AST] = field(default_factory=set)

    @classmethod
    def build(
        cls,
        path: str,
        module: str,
        source: str,
        tree: ast.Module,
        is_package: bool = False,
    ) -> "FileContext":
        return cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            is_package=is_package,
            typing_only=_typing_only_imports(tree),
        )

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )

    def resolve_relative(self, node: ast.ImportFrom) -> str:
        """Absolute dotted module a ``from``-import refers to."""
        if node.level == 0:
            return node.module or ""
        # Level 1 is the containing package: the module's parent for a
        # plain file, the module itself for a package __init__.
        strip = node.level if not self.is_package else node.level - 1
        parts = self.module.split(".")
        base_parts = parts[: len(parts) - strip]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)


class Rule:
    """Base class for all lint rules."""

    rule_id: str = ""
    summary: str = ""
    #: SARIF code-scanning category (rendered into rule properties).
    category: str = "general"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


class WholeProgramRule(Rule):
    """A rule that needs the whole project, not one file at a time.

    The engine runs ``check_project`` once over the
    :class:`~repro.lint.flow.index.ProjectIndex` after the per-file
    phase; ``check`` contributes nothing.  Whole-program findings
    honour the baseline; inline ``allow()`` suppressions apply only to
    rules that set :attr:`honors_inline_suppressions` — those anchor
    each finding at the site that must change (so a directive on that
    line is meaningful), whereas flow/concurrency findings span files
    and have no single owning line.
    """

    #: When True, the engine filters this rule's project findings
    #: through each summary's ``allow_lines`` table (the scale rules
    #: anchor findings at the offending statement, so the directive
    #: sits where the fix belongs).
    honors_inline_suppressions: bool = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())  # whole-program rules contribute nothing per file

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        raise NotImplementedError


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """One instance of every registered rule, ordered by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    return sorted(_REGISTRY)


def _typing_only_imports(tree: ast.Module) -> Set[ast.AST]:
    collected: Set[ast.AST] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            for child in node.body:
                for sub in ast.walk(child):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        collected.add(sub)
    return collected


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False
