"""SCALE001 / SCALE002 / SCALE003 — whole-program scale-safety rules.

The crawl engine serves city-tier (1M-account) worlds off columns; the
paper's experiments only reach that scale if nothing on a hot path
materialises per-person objects, sweeps the population inside another
population sweep, or accumulates unboundedly per fetched page.  These
rules make "scale-safe" machine-checked *before* the attack pipeline's
columnar port (ROADMAP item 2 follow-up): every finding is a function
the port must rewrite, witnessed by the call path that reaches it from
a serve/crawl/attack entry point.

All three ride the :class:`~repro.lint.conc.effects.EffectAnalysis`
call graph and the typed catalogue in :mod:`repro.lint.scale.catalog`.
Setup code is exempt by construction: ``__init__`` methods (the
sanctioned eager-index seam — build the index once at construction,
serve reads after) and the worldgen/encode modules (sweeping the
population once, before serving, is their job).

Unlike the flow/concurrency passes, these rules anchor each finding at
the offending statement in the offending file, so they opt into inline
``# repro-lint: allow(SCALE00x) -- why`` suppression
(``honors_inline_suppressions``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..conc.effects import EffectAnalysis, analysis_for
from ..findings import Finding
from ..flow.index import ProjectIndex
from ..flow.summary import FunctionInfo, Op
from ..rules.base import WholeProgramRule, register
from .catalog import (
    COLLECTOR_BUILTINS,
    BUDGET_TOKENS,
    GROWTH_METHODS,
    MATERIALIZING_CLASSES,
    MATERIALIZING_FUNCTIONS,
    STREAM_HANDLER_TOKENS,
    graph_evidence,
    in_setup_module,
    mentions_token,
    population_evidence,
)
from .entries import Entry, scale_entries, serve_entries


def _render_chain(chain: List[str]) -> str:
    return " -> ".join(fqn.split(":", 1)[1] or fqn for fqn in chain)


def _exempt(fqn: str) -> bool:
    """Setup seams the scale rules must not flag."""
    module, _, qualname = fqn.partition(":")
    if in_setup_module(module):
        return True
    return qualname.endswith("__init__")


def _reached(
    analysis: EffectAnalysis, entries: Sequence[Entry]
) -> Tuple[Dict[str, List[str]], Dict[str, List[str]]]:
    """fqn -> entry labels reaching it, and fqn -> witness chain."""
    reached_by: Dict[str, List[str]] = {}
    chains: Dict[str, List[str]] = {}
    for label, entry in entries:
        parents = analysis.reachable_from([entry])
        for fqn in parents:
            reached_by.setdefault(fqn, []).append(label)
            if fqn not in chains:
                chains[fqn] = analysis.chain(parents, fqn)
    return reached_by, chains


def _loop_stack_walk(fn: FunctionInfo) -> Iterator[Tuple[Op, List[Op]]]:
    """Yield ``(op, enclosing loop headers)`` in statement order.

    Reconstructed from the flat op list: a header op at depth ``d`` has
    ``d`` enclosing loops (stack becomes ``d + 1`` deep for its body);
    a non-header op at depth ``d`` sits under the first ``d`` headers.
    """
    stack: List[Op] = []
    for op in fn.ops:
        del stack[op.depth :]
        yield op, list(stack)
        if op.loop:
            stack.append(op)


@register
class MaterializationRule(WholeProgramRule):
    """No per-person object materialisation on city-tier paths.

    Rationale: the columnar world holds a million accounts in flat
    arrays; one ``list(world.people)``, ``person_view`` decode loop or
    per-account dict build on a serve/crawl/attack path turns that into
    a million heap objects and reintroduces exactly the footprint the
    columns removed.  The catalogue names the decoders
    (``person_view``, ``PopulationView``) and the population
    containers; collector builtins over either are flagged, as are
    container mutations performed inside a population-scale loop.

    Fix: stay columnar — read the needed columns directly (ndarray
    slices / interned-id comparisons), or hoist the materialisation
    into a construction-time index (``__init__`` is exempt as the
    sanctioned setup seam).

    Suppression: ``# repro-lint: allow(SCALE001) -- <why this path
    never runs at city tier>`` on the flagged statement; pipeline-wide
    debts belong in ``lint-baseline.json`` with a justification.
    """

    rule_id = "SCALE001"
    summary = "per-person object materialisation reachable from a scale entry"
    category = "scale"
    honors_inline_suppressions = True

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        analysis = analysis_for(index)
        entries = scale_entries(index)
        if not entries:
            return
        materializers = _materializer_fqns(index)
        reached_by, chains = _reached(analysis, entries)
        seen: Set[Tuple[str, int, int, str]] = set()
        for fqn in sorted(reached_by):
            if _exempt(fqn):
                continue
            module, _, qualname = fqn.partition(":")
            summary = index.modules.get(module)
            fn = analysis.functions.get(fqn)
            if summary is None or fn is None:
                continue
            path = summary.path
            chain = _render_chain(chains[fqn])
            for op, loops in _loop_stack_walk(fn):
                for what, line, col in self._op_sites(
                    index, module, qualname, op, loops, materializers
                ):
                    key = (module, line, col, what)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield Finding(
                        path=path,
                        line=line,
                        col=col,
                        rule=self.rule_id,
                        message=(
                            f"{what} on a city-tier path "
                            f"(reached via {chain}); stay columnar or hoist "
                            "into a construction-time index"
                        ),
                    )

    def _op_sites(
        self,
        index: ProjectIndex,
        module: str,
        qualname: str,
        op: Op,
        loops: List[Op],
        materializers: Set[str],
    ) -> Iterator[Tuple[str, int, int]]:
        for call in op.expr.calls:
            if call.callee is None:
                continue
            # (a) catalogued per-person decoders, wherever they resolve from
            resolution = index.resolve_call(module, qualname, call.callee)
            for resolved in resolution.functions:
                if resolved.fqn in materializers:
                    yield (
                        f"per-person decode '{call.callee}'",
                        call.line,
                        call.col,
                    )
            if resolution.constructed_class is not None:
                key = ":".join(resolution.constructed_class)
                if key in materializers:
                    yield (
                        f"object-view construction '{call.callee}'",
                        call.line,
                        call.col,
                    )
            # (b) collector builtins over a population-scale iterable
            if call.callee in COLLECTOR_BUILTINS:
                for arg in call.args:
                    label = population_evidence(arg)
                    if label is not None:
                        yield (
                            f"'{call.callee}({label})' materialises the "
                            "population",
                            call.line,
                            call.col,
                        )
                        break
        # (c) per-account container builds inside a population-scale loop
        pop_loop = next(
            (
                label
                for header in loops
                for label in [population_evidence(header.expr)]
                if label is not None
            ),
            None,
        )
        if pop_loop is None:
            return
        for path_written, mode in op.writes:
            if mode == "mutate":
                yield (
                    f"per-account build of '{path_written}' inside the "
                    f"population loop over {pop_loop}",
                    op.line,
                    op.col,
                )
                return
        for call in op.expr.calls:
            if call.callee is None:
                continue
            parts = call.callee.split(".")
            if len(parts) >= 2 and parts[-1] in GROWTH_METHODS:
                yield (
                    f"per-account build of '{'.'.join(parts[:-1])}' inside "
                    f"the population loop over {pop_loop}",
                    call.line,
                    call.col,
                )
                return


@register
class QuadraticLoopRule(WholeProgramRule):
    """No population-quadratic nested loops on city-tier paths.

    Rationale: an inner loop over a population-scale iterable (the
    typed catalogue: people/account containers, ``range(n_accounts)``
    row sweeps, CSR adjacency arrays) inside an outer population loop
    is O(N²) / O(N·E) — seconds at school tier, days at city tier.
    The classic shape is a linear scan used as a lookup; at a million
    rows every such scan needs an index.

    Fix: build the lookup once at construction time (eager index in
    ``__init__`` — exempt as the setup seam) or restructure to a
    single sorted/merged sweep.

    Suppression: ``# repro-lint: allow(SCALE002) -- <why the inner
    iterable is actually bounded>`` on the inner loop header.
    """

    rule_id = "SCALE002"
    summary = "population-quadratic nested loop reachable from a scale entry"
    category = "scale"
    honors_inline_suppressions = True

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        analysis = analysis_for(index)
        entries = scale_entries(index)
        if not entries:
            return
        reached_by, chains = _reached(analysis, entries)
        seen: Set[Tuple[str, int, int]] = set()
        for fqn in sorted(reached_by):
            if _exempt(fqn):
                continue
            module, _, _qualname = fqn.partition(":")
            summary = index.modules.get(module)
            fn = analysis.functions.get(fqn)
            if summary is None or fn is None:
                continue
            chain = _render_chain(chains[fqn])
            for op, loops in _loop_stack_walk(fn):
                if not op.loop or not loops:
                    continue
                inner = population_evidence(op.expr) or graph_evidence(op.expr)
                if inner is None:
                    continue
                outer = next(
                    (
                        label
                        for header in loops
                        for label in [population_evidence(header.expr)]
                        if label is not None
                    ),
                    None,
                )
                if outer is None:
                    continue
                key = (module, op.line, op.col)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    path=summary.path,
                    line=op.line,
                    col=op.col,
                    rule=self.rule_id,
                    message=(
                        f"population-quadratic loop: iterates {inner} inside "
                        f"the population loop over {outer} (reached via "
                        f"{chain}); build an index at construction time "
                        "instead of scanning per row"
                    ),
                )


@register
class UnboundedAccumulationRule(WholeProgramRule):
    """Streaming handlers must accumulate under a budget.

    Rationale: per-page / per-fetch callables run once per crawled
    page — unbounded at city tier.  A handler that appends to a
    container without any budget/cap in scope grows memory linearly
    with pages fetched, which is exactly how a week-long crawl dies at
    hour forty.  The crawl engine's own handlers thread
    ``plan.budget`` / ``remaining`` counters; this rule makes that
    discipline mechanical.

    Fix: thread the crawl budget (or an explicit cap) into the handler
    and stop accumulating when it is spent, or spill to the store
    instead of growing in-memory state.

    Suppression: ``# repro-lint: allow(SCALE003) -- <why growth is
    bounded>`` on the handler's ``def`` line (covers decorators).
    """

    rule_id = "SCALE003"
    summary = "streaming handler accumulates without a budget or cap in scope"
    category = "scale"
    honors_inline_suppressions = True

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        analysis = analysis_for(index)
        entries = serve_entries(index)
        if not entries:
            return
        reached_by, chains = _reached(analysis, entries)
        for fqn in sorted(reached_by):
            if _exempt(fqn):
                continue
            module, _, qualname = fqn.partition(":")
            name = qualname.rsplit(".", 1)[-1]
            if not mentions_token(name, STREAM_HANDLER_TOKENS):
                continue
            summary = index.modules.get(module)
            fn = analysis.functions.get(fqn)
            if summary is None or fn is None:
                continue
            growth = self._growth_targets(fn)
            if not growth or self._budget_in_scope(fn):
                continue
            chain = _render_chain(chains[fqn])
            targets = ", ".join(sorted(growth))
            yield Finding(
                path=summary.path,
                line=fn.line,
                col=0,
                rule=self.rule_id,
                message=(
                    f"streaming handler '{qualname}' grows {targets} with no "
                    f"budget or cap in scope (reached via {chain}); thread "
                    "the crawl budget or spill to the store"
                ),
            )

    @staticmethod
    def _growth_targets(fn: FunctionInfo) -> Set[str]:
        """Containers this handler grows: ``self.*``/global mutate writes
        and growth-method calls on non-local receivers."""
        locals_bound = {name for op in fn.ops for name in op.targets}
        growth: Set[str] = set()
        for op in fn.ops:
            for path, mode in op.writes:
                root = path.split(".", 1)[0]
                if mode == "mutate" and (
                    root == "self" or root not in locals_bound
                ):
                    growth.add(path)
            for call in op.expr.calls:
                if call.callee is None:
                    continue
                parts = call.callee.split(".")
                if len(parts) < 2 or parts[-1] not in GROWTH_METHODS:
                    continue
                receiver = ".".join(parts[:-1])
                root = parts[0]
                if root == "self" or root not in locals_bound:
                    growth.add(receiver)
        return growth

    @staticmethod
    def _budget_in_scope(fn: FunctionInfo) -> bool:
        for param in fn.params:
            if mentions_token(param, BUDGET_TOKENS):
                return True
        for op in fn.ops:
            for name in (*op.targets, *op.expr.names):
                if mentions_token(name, BUDGET_TOKENS):
                    return True
            for read in op.expr.reads:
                if mentions_token(read.attr, BUDGET_TOKENS):
                    return True
            for call in op.expr.calls:
                if call.callee is not None and mentions_token(
                    call.callee, BUDGET_TOKENS
                ):
                    return True
        return False


def _materializer_fqns(index: ProjectIndex) -> Set[str]:
    """Resolved identities of the catalogued per-person materialisers."""
    out: Set[str] = set()
    for module, name in MATERIALIZING_FUNCTIONS:
        summary = index.modules.get(module)
        if summary is not None and name in summary.functions:
            out.add(f"{module}:{name}")
    for module, name in MATERIALIZING_CLASSES:
        summary = index.modules.get(module)
        if summary is not None and name in summary.classes:
            out.add(f"{module}:{name}")
            out.add(f"{module}:{name}.__init__")
    return out
