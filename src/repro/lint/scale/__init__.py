"""repro.lint.scale — scale-safety & RNG-provenance analysis.

Four rules plus one report, all riding the flow IR / ProjectIndex /
effect-summary infrastructure the flow and concurrency passes built:

* **SCALE001** — per-person object materialisation reachable from a
  city-tier entry point (serve/crawl/attack);
* **SCALE002** — population-quadratic nested loops on those paths;
* **SCALE003** — streaming handlers accumulating without a budget;
* **DET002** — RNG stream provenance: sharded generators must descend
  from a per-shard ``SeedSequence`` lineage;
* ``--scale-report`` — the ranked columnar-port worklist: every
  function binding the attack pipeline to the object ``World``, with
  call-path witnesses.

Importing this package registers the rules (mirrors how
``repro.lint.rules`` pulls in the flow and conc passes).
"""

from . import provenance, rules  # noqa: F401  (registration side effect)
from .report import ScaleReport, WorklistItem, build_scale_report, render_text

__all__ = [
    "ScaleReport",
    "WorklistItem",
    "build_scale_report",
    "render_text",
]
