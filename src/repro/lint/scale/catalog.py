"""Typed catalogues of population-scale APIs and scale-relevant tokens.

The scale rules are catalogue-driven on purpose: "population-scale"
cannot be inferred from an AST (a ``for`` over three attacker accounts
and a ``for`` over a million-row column look identical), so the pass
names the APIs that are *known* to scale with the population — the
object world's people/account containers, the columnar world's row
counts and CSR arrays, and the view helpers that decode full per-person
objects.  Everything outside the catalogue is assumed small, which is
the documented false-negative shape (DESIGN.md §7): a new
population-sized container is invisible until it is catalogued here.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from ..flow.summary import CallInfo, ExprInfo

#: Attribute names whose read yields a population-scale container
#: (``world.people``, ``network.accounts``, ``self.users``).  A bare
#: receiver is required — a local called ``people`` is not evidence.
POPULATION_ATTRS: FrozenSet[str] = frozenset({"people", "accounts", "users"})

#: Row-count attributes: ``range(world.n_accounts)`` iterates every row.
POPULATION_SIZE_ATTRS: FrozenSet[str] = frozenset({"n_people", "n_accounts"})

#: CSR adjacency arrays: loops indexing these sweep the edge set.
GRAPH_ARRAY_ATTRS: FrozenSet[str] = frozenset({"indptr", "indices"})

#: Builtins that materialise their argument in full.  ``list(world.people)``
#: is the canonical SCALE001 shape: one call, a million objects.
COLLECTOR_BUILTINS: FrozenSet[str] = frozenset(
    {"list", "dict", "set", "frozenset", "tuple", "sorted"}
)

#: Catalogued per-person materialisers: (module, name, is_class).
#: Calls resolving here decode full object rows from the columns.
MATERIALIZING_FUNCTIONS: Tuple[Tuple[str, str], ...] = (
    ("repro.colgen.views", "person_view"),
)
MATERIALIZING_CLASSES: Tuple[Tuple[str, str], ...] = (
    ("repro.colgen.views", "PopulationView"),
)

#: Container-growth methods for SCALE003's accumulation detection.
GROWTH_METHODS: FrozenSet[str] = frozenset(
    {"add", "append", "appendleft", "extend", "insert", "setdefault", "update"}
)

#: A streaming handler with any of these tokens in scope is considered
#: budgeted.  Substring match against param names, local names and
#: attribute reads.
BUDGET_TOKENS: Tuple[str, ...] = (
    "budget",
    "cap",
    "limit",
    "max",
    "quota",
    "remaining",
    "truncat",
)

#: Function-name tokens that mark a per-page / per-fetch streaming
#: handler (SCALE003's scope).
STREAM_HANDLER_TOKENS: Tuple[str, ...] = (
    "drain",
    "fetch",
    "harvest",
    "page",
    "poll",
    "stream",
)

#: Parameter / loop-variable tokens that mark sharded (per-worker)
#: code for DET002's provenance requirements.
SHARD_TOKENS: Tuple[str, ...] = ("shard", "stream", "worker", "block")

#: Modules that are *supposed* to sweep the population: world
#: generation and the object->columns encoding run once, before any
#: serving, so their O(population) loops are the point, not a bug.
SETUP_MODULE_PREFIXES: Tuple[str, ...] = (
    "repro.worldgen",
    "repro.colgen.generate",
    "repro.colgen.encode",
    "repro.colgen.columns",
    "repro.colgen.csr",
    "repro.colgen.tiers",
    "repro.colgen.bench",
)


def in_setup_module(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in SETUP_MODULE_PREFIXES
    )


def mentions_token(text: str, tokens: Tuple[str, ...]) -> bool:
    lowered = text.lower()
    return any(token in lowered for token in tokens)


def _range_evidence(call: CallInfo) -> Optional[str]:
    """Population evidence inside a ``range(...)`` call's arguments."""
    if call.callee != "range":
        return None
    for arg in call.args:
        for read in arg.reads:
            if read.attr in POPULATION_SIZE_ATTRS and read.recv is not None:
                return f"range({read.recv}.{read.attr})"
    return None


def population_evidence(expr: ExprInfo) -> Optional[str]:
    """A human-readable label when ``expr`` yields a population-scale
    iterable, else None.

    Matches the typed catalogue only: population-container attribute
    reads (``world.people``), dict-view calls over them
    (``self.users.values()``), and full-row ranges
    (``range(world.n_accounts)``).
    """
    for call in expr.calls:
        label = _range_evidence(call)
        if label is not None:
            return label
        if call.callee is not None:
            parts = call.callee.split(".")
            if (
                len(parts) >= 3
                and parts[-1] in ("values", "items", "keys")
                and parts[-2] in POPULATION_ATTRS
            ):
                return f"{call.callee}()"
    for read in expr.reads:
        if read.attr in POPULATION_ATTRS and read.recv is not None:
            return f"{read.recv}.{read.attr}"
    return None


def graph_evidence(expr: ExprInfo) -> Optional[str]:
    """Evidence that ``expr`` iterates CSR adjacency (edge-scale)."""
    for read in expr.reads:
        if read.attr in GRAPH_ARRAY_ATTRS and read.recv is not None:
            return f"{read.recv}.{read.attr}"
    for name in expr.names:
        if name in GRAPH_ARRAY_ATTRS:
            return name
    return None
