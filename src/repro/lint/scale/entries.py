"""Entry-point discovery for the scale pass.

Two root sets, discovered from the :class:`ProjectIndex` (so fixture
projects exercise the rules by defining same-shaped modules, exactly
like the concurrency pass):

* **serve/crawl entries** — code that runs *per request or per crawl
  turn* against a city/metro-tier world: the crawl CLI command, every
  public :class:`CrawlScheduler` method, every public
  :class:`ColumnarNetwork` method, and the public serve-path helpers in
  ``repro.colgen.serve``.
* **attack entries** — the attack pipeline's importable surface: the
  ``repro.core.api`` conveniences, ``HighSchoolProfiler``'s public
  methods, the attack-driving CLI commands, plus every public
  ``repro.core`` function that itself binds a ``world`` parameter
  (each is an importable pipeline entry in its own right, which is what
  guarantees the scale report covers every world-reading function even
  when no indexed caller reaches it).

The union gates SCALE001/002/003; the attack set alone roots the
``--scale-report`` worklist.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..flow.index import ProjectIndex
from ..flow.summary import ModuleSummary

#: (module, class) whose public methods are serve/crawl entries.
SERVE_ENTRY_CLASSES: Tuple[Tuple[str, str], ...] = (
    ("repro.crawler.engine", "CrawlScheduler"),
    ("repro.colgen.serve", "ColumnarNetwork"),
)

#: Modules whose public top-level functions are serve/crawl entries.
SERVE_ENTRY_MODULES: Tuple[str, ...] = ("repro.colgen.serve",)

#: (module, function) serve/crawl entries named individually.
SERVE_ENTRY_FUNCTIONS: Tuple[Tuple[str, str], ...] = (
    ("repro.cli", "cmd_crawl"),
)

#: (module, class) whose public methods are attack entries.
ATTACK_ENTRY_CLASSES: Tuple[Tuple[str, str], ...] = (
    ("repro.core.profiler", "HighSchoolProfiler"),
)

#: Modules whose public top-level functions are attack entries.
ATTACK_ENTRY_MODULES: Tuple[str, ...] = ("repro.core.api",)

#: Attack-driving CLI commands (each wires worldgen output into the
#: pipeline and the evaluation seams).
ATTACK_ENTRY_FUNCTIONS: Tuple[Tuple[str, str], ...] = (
    ("repro.cli", "cmd_attack"),
    ("repro.cli", "cmd_sweep"),
    ("repro.cli", "cmd_tables"),
    ("repro.cli", "cmd_coppaless"),
    ("repro.cli", "cmd_countermeasure"),
    ("repro.cli", "cmd_defences"),
    ("repro.cli", "cmd_robustness"),
)

#: Module prefix whose world-binding public functions self-root the
#: attack entry set.
ATTACK_PACKAGE_PREFIX = "repro.core"

Entry = Tuple[str, str]  # (display label, fqn)


def _public_methods(
    index: ProjectIndex, module: str, class_name: str
) -> List[Entry]:
    summary = index.modules.get(module)
    if summary is None:
        return []
    return [
        (f"{class_name}.{method}", f"{module}:{class_name}.{method}")
        for method in summary.classes.get(class_name, ())
        if not method.startswith("_")
    ]


def _public_functions(index: ProjectIndex, module: str) -> List[Entry]:
    summary = index.modules.get(module)
    if summary is None:
        return []
    return [
        (qualname, f"{module}:{qualname}")
        for qualname in sorted(summary.functions)
        if qualname and "." not in qualname and not qualname.startswith("_")
    ]


def _named_functions(
    index: ProjectIndex, specs: Tuple[Tuple[str, str], ...]
) -> List[Entry]:
    out: List[Entry] = []
    for module, name in specs:
        summary = index.modules.get(module)
        if summary is not None and name in summary.functions:
            out.append((name, f"{module}:{name}"))
    return out


def binds_world(summary: ModuleSummary, qualname: str) -> bool:
    """True when the function's own signature binds the object world:
    a parameter named ``world`` or annotated ``World``/``WorldLike``."""
    fn = summary.functions.get(qualname)
    if fn is None:
        return False
    if "world" in fn.params:
        return True
    for param, ref in fn.annotations:
        if param == "return":
            continue
        if ref.rsplit(".", 1)[-1] in ("World", "WorldLike"):
            return True
    return False


def serve_entries(index: ProjectIndex) -> List[Entry]:
    entries: List[Entry] = []
    entries.extend(_named_functions(index, SERVE_ENTRY_FUNCTIONS))
    for module, class_name in SERVE_ENTRY_CLASSES:
        entries.extend(_public_methods(index, module, class_name))
    for module in SERVE_ENTRY_MODULES:
        entries.extend(_public_functions(index, module))
    return _dedupe(entries)


def attack_entries(index: ProjectIndex) -> List[Entry]:
    entries: List[Entry] = []
    entries.extend(_named_functions(index, ATTACK_ENTRY_FUNCTIONS))
    for module, class_name in ATTACK_ENTRY_CLASSES:
        entries.extend(_public_methods(index, module, class_name))
    for module in ATTACK_ENTRY_MODULES:
        entries.extend(_public_functions(index, module))
    prefix = ATTACK_PACKAGE_PREFIX
    for module in sorted(index.modules):
        if not (module == prefix or module.startswith(prefix + ".")):
            continue
        summary = index.modules[module]
        for qualname in sorted(summary.functions):
            if not qualname or "." in qualname or qualname.startswith("_"):
                continue
            if binds_world(summary, qualname):
                entries.append((qualname, f"{module}:{qualname}"))
    return _dedupe(entries)


def scale_entries(index: ProjectIndex) -> List[Entry]:
    """The union gating SCALE001/002/003."""
    return _dedupe(serve_entries(index) + attack_entries(index))


def _dedupe(entries: List[Entry]) -> List[Entry]:
    seen: Dict[str, str] = {}
    for label, fqn in entries:
        if fqn not in seen:
            seen[fqn] = label
    return sorted(
        ((label, fqn) for fqn, label in seen.items()), key=lambda e: e[1]
    )
