"""DET002 — RNG *stream* provenance in sharded code.

DET001 guarantees every generator is seeded; it cannot see whether two
shards of a sharded computation were seeded with the *same* material.
The columnar worldgen runs per-(stream, shard) workers, and its
determinism contract ("same seed → same million-row city, any worker
count, any interleaving") holds only because every generator descends
from ``SeedSequence([seed, stream, shard])`` — distinct spawn keys per
shard, so streams never collide and never depend on scheduling order.

DET002 makes that lineage mechanical, inside *sharded contexts* only
(a function whose parameters mention a shard/stream/worker token, or
the body of a loop over shard-ish variables):

* ``default_rng(x)`` where ``x`` is not a ``SeedSequence(...)`` —
  no provenance: two shards fed the same ``x`` silently share a
  stream;
* ``default_rng(SeedSequence([...]))`` whose entropy list mentions no
  shard-ish variable — the lineage exists but is constant across
  shards, i.e. stream reuse;
* a generator constructed *outside* a shard loop but drawn from
  *inside* it — one stream shared across workers, so results depend
  on which worker draws first.

Outside sharded contexts a plain ``default_rng(seed)`` stays legal
(that is DET001's jurisdiction).  ``getrandbits``-derived child seeds
(the friendship sampler's ``default_rng(rng.getrandbits(64))``) are
fine for the same reason: one generator, no shards.

Suppression: ``# repro-lint: allow(DET002) -- <why the streams cannot
collide>`` on the flagged line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Union

from ..findings import Finding
from ..rules.base import FileContext, Rule, register
from ..rules.determinism import dotted_name, module_aliases
from .catalog import SHARD_TOKENS, mentions_token

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_shard_name(name: str) -> bool:
    return mentions_token(name, SHARD_TOKENS)


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _param_names(node: _FunctionNode) -> List[str]:
    arguments = node.args
    params = [a.arg for a in arguments.posonlyargs]
    params.extend(a.arg for a in arguments.args)
    params.extend(a.arg for a in arguments.kwonlyargs)
    return params


class _Resolver:
    """Maps call expressions to ``default_rng`` / ``SeedSequence``."""

    _NAMES = ("default_rng", "SeedSequence")

    def __init__(self, tree: ast.Module) -> None:
        self._aliases = module_aliases(tree)
        self._direct: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module != "numpy.random":
                    continue
                for alias in node.names:
                    if alias.name in self._NAMES:
                        self._direct[alias.asname or alias.name] = alias.name

    def kind(self, func: ast.expr) -> Optional[str]:
        name = dotted_name(func)
        if name is None:
            return None
        if "." not in name:
            return self._direct.get(name)
        head, rest = name.split(".", 1)
        module = self._aliases.get(head)
        if module == "numpy" and rest.startswith("random."):
            rest = rest[len("random."):]
            module = "numpy.random"
        if module == "numpy.random" and rest in self._NAMES:
            return rest
        return None


@register
class RngProvenanceRule(Rule):
    """Sharded generators must descend from a per-shard SeedSequence.

    Rationale, approximations and the allowed shapes are documented in
    the module docstring and DESIGN.md §7; in short, "sharded context"
    is token-based (shard/stream/worker/block in a parameter or loop
    variable), lineage is checked syntactically (a ``SeedSequence``
    call or a local bound to one in the same function), and anything
    outside sharded contexts is DET001's business, not ours.
    """

    rule_id = "DET002"
    summary = (
        "sharded default_rng must trace to a per-shard "
        "SeedSequence([seed, stream, shard]) lineage"
    )
    category = "determinism"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        resolver = _Resolver(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._scan(
                    ctx, resolver, node.body, _param_names(node)
                )
        yield from self._scan(ctx, resolver, ctx.tree.body, [])

    # -- one function (or the module body) ----------------------------

    def _scan(
        self,
        ctx: FileContext,
        resolver: _Resolver,
        body: Sequence[ast.stmt],
        params: Sequence[str],
    ) -> Iterator[Finding]:
        fn_sharded = any(_is_shard_name(p) for p in params)
        seedseq_locals: Dict[str, ast.Call] = {}
        outside_generators: Dict[str, int] = {}
        findings: List[Finding] = []

        def visit(node: ast.AST, shard_depth: int) -> None:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return  # nested defs are scanned as their own function
            if isinstance(node, (ast.For, ast.AsyncFor)):
                visit(node.iter, shard_depth)
                is_shard_loop = any(
                    _is_shard_name(name)
                    for name in _target_names(node.target)
                )
                inner = shard_depth + (1 if is_shard_loop else 0)
                for sub in node.body:
                    visit(sub, inner)
                for sub in node.orelse:
                    visit(sub, shard_depth)
                return
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                kind = resolver.kind(node.value.func)
                names = [
                    name
                    for target in node.targets
                    for name in _target_names(target)
                ]
                if kind == "SeedSequence":
                    for name in names:
                        seedseq_locals[name] = node.value
                elif kind == "default_rng" and shard_depth == 0:
                    for name in names:
                        outside_generators[name] = node.lineno
            if isinstance(node, ast.Call):
                if resolver.kind(node.func) == "default_rng":
                    self._check_rng_call(
                        ctx,
                        resolver,
                        node,
                        fn_sharded or shard_depth > 0,
                        seedseq_locals,
                        findings,
                    )
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and shard_depth > 0
                and node.id in outside_generators
            ):
                born = outside_generators.pop(node.id)
                findings.append(
                    ctx.finding(
                        node,
                        self.rule_id,
                        f"generator '{node.id}' (constructed at line "
                        f"{born}, outside the shard loop) is drawn from "
                        "inside it: one stream shared across workers makes "
                        "results depend on draw order; construct a "
                        "per-shard generator from "
                        "SeedSequence([seed, stream, shard]) inside the "
                        "loop",
                    )
                )
            for child in ast.iter_child_nodes(node):
                visit(child, shard_depth)

        for stmt in body:
            visit(stmt, 0)
        yield from findings

    def _check_rng_call(
        self,
        ctx: FileContext,
        resolver: _Resolver,
        call: ast.Call,
        sharded: bool,
        seedseq_locals: Dict[str, ast.Call],
        findings: List[Finding],
    ) -> None:
        if not call.args:
            return  # unseeded: DET001's finding, not a provenance one
        seed_arg = call.args[0]
        sequence: Optional[ast.Call] = None
        if (
            isinstance(seed_arg, ast.Call)
            and resolver.kind(seed_arg.func) == "SeedSequence"
        ):
            sequence = seed_arg
        elif isinstance(seed_arg, ast.Name):
            sequence = seedseq_locals.get(seed_arg.id)
        if not sharded:
            return  # plain seeded default_rng outside sharded code: fine
        if sequence is None:
            findings.append(
                ctx.finding(
                    call,
                    self.rule_id,
                    "default_rng in sharded code without a SeedSequence "
                    "lineage: two shards fed the same seed silently share "
                    "a stream; seed from "
                    "SeedSequence([seed, stream, shard])",
                )
            )
            return
        if not self._mentions_shard(sequence):
            findings.append(
                ctx.finding(
                    call,
                    self.rule_id,
                    "SeedSequence lineage is constant across shards (no "
                    "shard/stream/worker variable in its entropy): every "
                    "shard reuses the same stream; include the shard "
                    "index in the spawn key",
                )
            )

    @staticmethod
    def _mentions_shard(sequence: ast.Call) -> bool:
        for arg in [*sequence.args, *[kw.value for kw in sequence.keywords]]:
            for node in ast.walk(arg):
                if isinstance(node, ast.Name) and _is_shard_name(node.id):
                    return True
                if isinstance(node, ast.Attribute) and _is_shard_name(
                    node.attr
                ):
                    return True
        return False
