"""The columnar-port worklist: who binds the attack pipeline to `World`.

ROADMAP item: the attack pipeline still runs against the object
``World`` while worldgen and the crawl path went columnar.  The port
is a migration, and migrations need a worklist — so this module walks
the call graph from every attack-pipeline entry point and emits, ranked,
the functions that bind the pipeline to the object world: each one
either takes a ``world`` parameter outright or touches ``world`` state
in its body, and each comes with the call-path witness that proves an
entry reaches it.

Ranking: functions reached from the most entry points first (porting
them unblocks the most of the pipeline), world-site count second (how
much rewriting each needs), name third (stable output for diffing two
reports across commits).

This is a *report*, not a rule: it has no pass/fail semantics and no
baseline; ``python -m repro lint --scale-report`` prints it and exits
zero so CI can archive the artifact while the port is in flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ..conc.effects import analysis_for
from ..flow.summary import ExprInfo, FunctionInfo, ModuleSummary
from ..flow.index import ProjectIndex
from .catalog import in_setup_module
from .entries import attack_entries, binds_world


@dataclass(frozen=True)
class WorklistItem:
    """One function the columnar port must rewrite."""

    fqn: str  # "module:qualname"
    path: str
    line: int
    binds: bool  # takes the object world in its own signature
    world_sites: int  # ops in its body touching `world`
    reached_from: List[str]  # entry labels that reach it
    witness: List[str]  # entry-to-function call chain (fqns)

    def to_json(self) -> Dict[str, Any]:
        return {
            "function": self.fqn,
            "path": self.path,
            "line": self.line,
            "binds_world": self.binds,
            "world_sites": self.world_sites,
            "reached_from": list(self.reached_from),
            "witness": list(self.witness),
        }


@dataclass
class ScaleReport:
    """The ranked worklist plus the entry set it was walked from."""

    entries: List[str]  # entry labels, sorted
    items: List[WorklistItem]

    def to_json(self) -> Dict[str, Any]:
        return {
            "entries": list(self.entries),
            "items": [item.to_json() for item in self.items],
        }


def _expr_mentions_world(expr: ExprInfo) -> bool:
    if "world" in expr.names:
        return True
    for read in expr.reads:
        if read.attr == "world":
            return True
        if read.recv is not None and read.recv.split(".", 1)[0] == "world":
            return True
    for call in expr.calls:
        if call.callee is not None and call.callee.split(".", 1)[0] == "world":
            return True
        for arg in call.args:
            if _expr_mentions_world(arg):
                return True
        for _name, arg in call.kwargs:
            if _expr_mentions_world(arg):
                return True
    return False


def _world_sites(fn: FunctionInfo) -> int:
    return sum(1 for op in fn.ops if _expr_mentions_world(op.expr))


def _holds_foreign_world(summary: ModuleSummary, qualname: str) -> bool:
    """True when the enclosing class's ``world`` attribute is *not* the
    object world (``ColumnarNetwork.__init__(world: ColumnarWorld)``):
    its methods read ``self.world`` constantly but are already ported,
    so counting those sites would fill the worklist with done work."""
    if "." not in qualname:
        return False
    class_name = qualname.split(".", 1)[0]
    init = summary.functions.get(f"{class_name}.__init__")
    if init is None:
        return False
    ref = dict(init.annotations).get("world")
    if ref is None:
        return False
    return ref.rsplit(".", 1)[-1] not in ("World", "WorldLike")


def build_scale_report(index: ProjectIndex) -> ScaleReport:
    """Walk the call graph from the attack entries; rank world-binders.

    The entry set self-roots every public ``repro.core`` function whose
    signature binds a world (see :mod:`.entries`), so the report covers
    every attack-pipeline world-reader even when no indexed caller
    reaches it yet.  Setup modules (worldgen, the columnar encoders) are
    excluded: they *produce* worlds and are not part of the port.
    """
    analysis = analysis_for(index)
    entries = attack_entries(index)
    reached_by: Dict[str, List[str]] = {}
    chains: Dict[str, List[str]] = {}
    for label, entry in entries:
        parents = analysis.reachable_from([entry])
        for fqn in parents:
            reached_by.setdefault(fqn, []).append(label)
            if fqn not in chains:
                chains[fqn] = analysis.chain(parents, fqn)
    items: List[WorklistItem] = []
    for fqn in sorted(reached_by):
        module, _, qualname = fqn.partition(":")
        if not qualname or in_setup_module(module):
            continue
        summary = index.modules.get(module)
        fn = analysis.functions.get(fqn)
        if summary is None or fn is None:
            continue
        binds = binds_world(summary, qualname)
        sites = _world_sites(fn)
        if not binds and sites == 0:
            continue
        if (
            not binds
            and "world" not in fn.params
            and _holds_foreign_world(summary, qualname)
        ):
            continue
        items.append(
            WorklistItem(
                fqn=fqn,
                path=summary.path,
                line=fn.line,
                binds=binds,
                world_sites=sites,
                reached_from=sorted(set(reached_by[fqn])),
                witness=chains[fqn],
            )
        )
    items.sort(key=lambda i: (-len(i.reached_from), -i.world_sites, i.fqn))
    return ScaleReport(
        entries=sorted({label for label, _fqn in entries}), items=items
    )


def render_text(report: ScaleReport) -> str:
    """Human-readable worklist (the ``--format text`` rendering)."""
    lines = [
        "columnar-port worklist: functions binding the attack pipeline "
        "to the object World",
        f"walked from {len(report.entries)} attack-pipeline entry points; "
        f"{len(report.items)} functions to port",
        "",
    ]
    for rank, item in enumerate(report.items, start=1):
        binds = "binds world" if item.binds else "touches world"
        lines.append(
            f"{rank:3d}. {item.fqn}  ({binds}, {item.world_sites} world "
            f"sites, reached from {len(item.reached_from)} entries)"
        )
        lines.append(f"     {item.path}:{item.line}")
        lines.append(
            "     via " + " -> ".join(
                fqn.partition(":")[2] or fqn for fqn in item.witness
            )
        )
    if not report.items:
        lines.append("(nothing binds the pipeline to the object World)")
    lines.append("")
    return "\n".join(lines)
