"""Render a :class:`~repro.lint.engine.LintReport` as text or JSON."""

from __future__ import annotations

import json

from .engine import LintReport


def render_text(report: LintReport) -> str:
    lines = [finding.render() for finding in report.findings]
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(
        f"{len(report.findings)} {noun} "
        f"({report.suppressed} suppressed, {report.baselined} baselined) "
        f"in {report.files_checked} file(s); "
        f"{report.files_reparsed} parsed, {report.cache_hits} cached"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    document = {
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in report.findings
        ],
        "summary": {
            "findings": len(report.findings),
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "files_checked": report.files_checked,
            "files_reparsed": report.files_reparsed,
            "cache_hits": report.cache_hits,
            "infrastructure_errors": report.infrastructure_errors,
            "ok": report.ok,
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)
