"""Inline suppression directives.

A finding can be silenced on its own line with::

    risky_call()  # repro-lint: allow(ORACLE001) -- evaluation-only scoring helper

The justification after ``--`` is mandatory: the directive exists to
force a human to write down *why* the boundary may be crossed here, so
an empty justification is itself a finding (``LINT001``) and the
suppression is ignored.  Several rules may be listed, comma-separated.

Shared mutable state (SHARE001) uses a dedicated form that also names
the *owner* of the state, so the annotation documents who is allowed
to coordinate writers::

    self._states[account] = state  # repro-lint: shared(RateLimiter) -- keyed per account

Directives are recognised only in real comment tokens (via
:mod:`tokenize`), never inside string literals.  When the module AST is
supplied, a directive on any physical line of a multi-line *simple*
statement covers the whole statement, a directive on a compound
statement's header lines covers the header, and a directive on a
decorated ``def``/``class`` covers the decorators plus the signature —
so black-style reflowing never silently detaches a suppression from
its finding.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .findings import Finding

#: Rule id for malformed / unjustified suppression directives.
DIRECTIVE_RULE = "LINT001"

#: Safety valve: never let one directive blanket more lines than this.
_MAX_SPAN = 50

_DIRECTIVE_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>.*)$")
_ALLOW_RE = re.compile(
    r"^allow\(\s*(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)\s*\)"
    r"(?:\s*--\s*(?P<why>.*))?$"
)
_SHARED_RE = re.compile(
    r"^shared\(\s*(?P<owner>[A-Za-z_][A-Za-z0-9_.]*)\s*\)"
    r"(?:\s*--\s*(?P<why>.*))?$"
)

_COMPOUND_STMTS = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


@dataclass
class SuppressionTable:
    """Per-line suppressions plus the findings the parse itself produced."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)
    #: line -> declared owner for ``shared(owner)`` annotations (SHARE001).
    shared_by_line: Dict[int, str] = field(default_factory=dict)

    def suppresses(self, line: int, rule: str) -> bool:
        # Directive problems are never self-suppressible.
        if rule == DIRECTIVE_RULE:
            return False
        return rule in self.by_line.get(line, ())


def parse_suppressions(
    source: str, path: str, tree: Optional[ast.Module] = None
) -> SuppressionTable:
    """Extract every ``# repro-lint:`` directive from ``source``.

    Assumes the source already parsed as Python (the engine only calls
    this after a successful ``ast.parse``, which also supplies ``tree``
    for statement-span expansion), so tokenization succeeds.
    """
    table = SuppressionTable()
    spans = _statement_spans(tree) if tree is not None else []
    for token in tokenize.generate_tokens(io.StringIO(source).readline):
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE_RE.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        rules, owner, problem = _parse_body(match.group("body").strip())
        if problem is not None:
            table.findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=token.start[1],
                    rule=DIRECTIVE_RULE,
                    message=problem,
                )
            )
            continue
        for covered in _covered_lines(line, spans):
            if rules:
                table.by_line.setdefault(covered, set()).update(rules)
            if owner is not None:
                table.shared_by_line[covered] = owner
    return table


def _parse_body(body: str) -> Tuple[Set[str], Optional[str], Optional[str]]:
    """Return (allow rules, shared owner, problem); one side is meaningful."""
    match = _ALLOW_RE.match(body)
    if match is not None:
        why = match.group("why")
        if why is None or not why.strip():
            return set(), None, (
                "suppression is missing its justification; write "
                "'allow(RULE) -- <why this boundary crossing is sound>'"
            )
        rules = {part.strip() for part in match.group("rules").split(",")}
        return rules, None, None
    shared = _SHARED_RE.match(body)
    if shared is not None:
        why = shared.group("why")
        if why is None or not why.strip():
            return set(), None, (
                "shared-state annotation is missing its justification; write "
                "'shared(Owner) -- <why concurrent writers are coordinated>'"
            )
        return set(), shared.group("owner"), None
    return set(), None, (
        "malformed repro-lint directive; expected "
        "'# repro-lint: allow(RULE[, RULE]) -- justification' or "
        "'# repro-lint: shared(Owner) -- justification'"
    )


def _statement_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """(start, end) line spans a directive anywhere inside should cover.

    Simple statements contribute their full physical extent; compound
    statements contribute only their *header* (keyword line through the
    line before the first body statement) so an ``allow`` on an ``if``
    condition does not blanket the suite.  Decorated definitions extend
    back to the first decorator line.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        if isinstance(node, _COMPOUND_STMTS):
            start = node.lineno
            decorators = getattr(node, "decorator_list", None)
            if decorators:
                start = min(start, decorators[0].lineno)
            body = getattr(node, "body", None)
            header_end = body[0].lineno - 1 if body else end
            span = (start, max(start, header_end))
        else:
            span = (node.lineno, end)
        if span[1] > span[0] and span[1] - span[0] < _MAX_SPAN:
            spans.append(span)
    return spans


def _covered_lines(line: int, spans: List[Tuple[int, int]]) -> Iterable[int]:
    covered = {line}
    for start, end in spans:
        if start <= line <= end:
            covered.update(range(start, end + 1))
    return sorted(covered)
