"""Inline suppression directives.

A finding can be silenced on its own line with::

    risky_call()  # repro-lint: allow(ORACLE001) -- evaluation-only scoring helper

The justification after ``--`` is mandatory: the directive exists to
force a human to write down *why* the boundary may be crossed here, so
an empty justification is itself a finding (``LINT001``) and the
suppression is ignored.  Several rules may be listed, comma-separated.

Directives are recognised only in real comment tokens (via
:mod:`tokenize`), never inside string literals.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .findings import Finding

#: Rule id for malformed / unjustified suppression directives.
DIRECTIVE_RULE = "LINT001"

_DIRECTIVE_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>.*)$")
_ALLOW_RE = re.compile(
    r"^allow\(\s*(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)\s*\)"
    r"(?:\s*--\s*(?P<why>.*))?$"
)


@dataclass
class SuppressionTable:
    """Per-line suppressions plus the findings the parse itself produced."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    def suppresses(self, line: int, rule: str) -> bool:
        # Directive problems are never self-suppressible.
        if rule == DIRECTIVE_RULE:
            return False
        return rule in self.by_line.get(line, ())


def parse_suppressions(source: str, path: str) -> SuppressionTable:
    """Extract every ``# repro-lint:`` directive from ``source``.

    Assumes the source already parsed as Python (the engine only calls
    this after a successful ``ast.parse``), so tokenization succeeds.
    """
    table = SuppressionTable()
    for token in tokenize.generate_tokens(io.StringIO(source).readline):
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE_RE.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        rules, problem = _parse_body(match.group("body").strip())
        if problem is not None:
            table.findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=token.start[1],
                    rule=DIRECTIVE_RULE,
                    message=problem,
                )
            )
            continue
        table.by_line.setdefault(line, set()).update(rules)
    return table


def _parse_body(body: str) -> Tuple[Set[str], "str | None"]:
    """Return (rule ids, problem message); exactly one side is meaningful."""
    match = _ALLOW_RE.match(body)
    if match is None:
        return set(), (
            "malformed repro-lint directive; expected "
            "'# repro-lint: allow(RULE[, RULE]) -- justification'"
        )
    why = match.group("why")
    if why is None or not why.strip():
        return set(), (
            "suppression is missing its justification; write "
            "'allow(RULE) -- <why this boundary crossing is sound>'"
        )
    rules = {part.strip() for part in match.group("rules").split(",")}
    return rules, None
