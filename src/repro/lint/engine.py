"""The lint pipeline: per-file phase, whole-program phase, filtering.

For each ``.py`` file the engine parses one AST, derives the dotted
module name (rules scope themselves by it), runs the selected per-file
rules and extracts a :class:`~repro.lint.flow.summary.ModuleSummary`.
Results are memoised in an optional content-hash keyed on-disk cache
(:mod:`repro.lint.cache`), so a warm run re-parses nothing; cache
misses can be fanned out over a multiprocessing pool (``jobs``) with
output deterministically merged in input order.

After the per-file phase, summaries are stitched into a
:class:`~repro.lint.flow.index.ProjectIndex` and the whole-program
rules (flow, concurrency, scale) run over it.  Whole-program findings
honour the baseline; inline ``# repro-lint: allow`` directives apply
only to rules that opt in via ``honors_inline_suppressions`` (the
scale rules, which anchor findings at the statement to change — a
cross-file flow has no single owning line; see DESIGN.md §7).

Files that fail to parse produce a ``LINT002`` finding instead of
crashing the run, and so does any per-file worker that dies with an
unexpected exception — the child traceback rides in the finding
message instead of surfacing as a raw multiprocessing crash.  The CLI
reports both as infrastructure failures (exit 2), distinct from
policy findings (exit 1).
"""

from __future__ import annotations

import ast
import multiprocessing
import os
import traceback
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .baseline import Baseline
from .cache import CacheEntry, LintCache, content_hash
from .findings import Finding
from .flow.index import ProjectIndex
from .rules.base import WholeProgramRule
from .flow.summary import ModuleSummary, extract_summary
from .rules import FileContext, Rule, all_rules
from .suppressions import parse_suppressions

#: Rule id for files the parser rejects.
PARSE_ERROR_RULE = "LINT002"

#: Bumped when engine behaviour changes in cache-visible ways.
ENGINE_VERSION = 4


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)  # new, actionable
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0
    #: files whose results came from the on-disk cache
    cache_hits: int = 0
    #: files actually read + parsed this run (0 on a fully warm cache)
    files_reparsed: int = 0
    #: the stitched project index, retained when ``keep_index=True``
    index: Optional["ProjectIndex"] = None

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def infrastructure_errors(self) -> int:
        """Findings that signal tool failure, not policy violations."""
        return sum(1 for f in self.findings if f.rule == PARSE_ERROR_RULE)


def module_name_for(path: str) -> str:
    """Dotted module for a file path, anchored at the ``repro`` package.

    Falls back to the bare stem for files outside the package — scoped
    rules then simply don't apply to them.
    """
    parts = list(os.path.normpath(os.path.abspath(path)).split(os.sep))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:]) or "repro"
    return parts[-1] if parts else "<unknown>"


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Every ``.py`` file under ``paths``, deterministically ordered.

    Deduplicates on ``os.path.realpath`` so overlapping arguments
    (``src/repro src/repro/lint``) or symlinked directories never lint
    the same file twice and double-count its findings.
    """
    seen: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(files):
                    if name.endswith(".py"):
                        candidate = os.path.join(root, name)
                        real = os.path.realpath(candidate)
                        if real not in seen:
                            seen.add(real)
                            yield candidate
        else:
            real = os.path.realpath(path)
            if real not in seen:
                seen.add(real)
                yield path


def split_rules(rules: Sequence[Rule]) -> Tuple[List[Rule], List[WholeProgramRule]]:
    """Partition into (per-file rules, whole-program rules)."""
    per_file: List[Rule] = []
    project: List[WholeProgramRule] = []
    for rule in rules:
        if isinstance(rule, WholeProgramRule):
            project.append(rule)
        else:
            per_file.append(rule)
    return per_file, project


def lint_source(
    source: str,
    module: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string (the test fixtures' entry point).

    Runs the per-file phase only: whole-program rules need a project.
    Returns the findings that survive inline suppressions, sorted by
    location; baseline filtering is the caller's concern.
    """
    active = list(rules) if rules is not None else all_rules()
    per_file, _project = split_rules(active)
    findings, _suppressed, _summary = _analyze_one(source, module, path, per_file)
    return findings


#: A unit of per-file work: (display path, module, is_package, source,
#: per-file rule ids).  Everything is picklable so a multiprocessing
#: pool can execute it in a worker process.
_Task = Tuple[str, str, bool, str, Tuple[str, ...]]
#: Its result: (display path, findings, suppressed, summary or None).
_TaskResult = Tuple[str, List[Finding], int, Optional[ModuleSummary]]


def _run_task(task: _Task) -> _TaskResult:
    """Execute one per-file unit (top level: must pickle under spawn).

    A rule that raises must not kill the whole run (under ``--jobs`` it
    would surface as a raw multiprocessing traceback and lose every
    sibling file's results): the crash becomes a LINT002 infrastructure
    finding carrying the child traceback.  Both the serial and the pool
    path go through here, so merged output stays byte-identical across
    ``jobs`` values for the files that do not crash.
    """
    path, module, is_package, source, rule_id_selection = task
    try:
        selected = [r for r in all_rules() if r.rule_id in rule_id_selection]
        findings, suppressed, summary = _analyze_one(
            source, module, path, selected, is_package=is_package
        )
    except Exception as exc:  # noqa: BLE001 - the point is to contain rule crashes
        detail = traceback.format_exc().rstrip()
        return (
            path,
            [
                Finding(
                    path,
                    1,
                    0,
                    PARSE_ERROR_RULE,
                    f"lint worker crashed on this file: {exc!r}\n{detail}",
                )
            ],
            0,
            None,
        )
    return path, findings, suppressed, summary


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    *,
    cache: Optional[LintCache] = None,
    jobs: int = 1,
    keep_index: bool = False,
) -> LintReport:
    """Lint files/directories and fold in suppressions plus baseline.

    ``cache`` memoises per-file results keyed on content hash; ``jobs``
    fans cache misses out over a process pool.  Output is byte-identical
    for any ``jobs`` value: results are merged in input order and sorted.
    ``keep_index`` retains the stitched :class:`ProjectIndex` on the
    report (the ``--scale-report`` mode reuses it instead of re-walking).
    """
    active = list(rules) if rules is not None else all_rules()
    per_file, project = split_rules(active)
    per_file_ids = tuple(sorted(r.rule_id for r in per_file))

    report = LintReport()
    ordered_paths: List[str] = []
    results: Dict[str, _TaskResult] = {}
    tasks: List[_Task] = []

    for file_path in iter_python_files(paths):
        report.files_checked += 1
        ordered_paths.append(file_path)
        try:
            with open(file_path, "rb") as handle:
                data = handle.read()
            source = data.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            results[file_path] = (
                file_path,
                [Finding(file_path, 1, 0, PARSE_ERROR_RULE, f"cannot read file: {exc}")],
                0,
                None,
            )
            continue
        real = os.path.realpath(file_path)
        sha = content_hash(data)
        if cache is not None:
            entry = cache.get(real, sha)
            if entry is not None:
                report.cache_hits += 1
                results[file_path] = _rehydrate(entry, file_path)
                continue
        report.files_reparsed += 1
        tasks.append(
            (
                file_path,
                module_name_for(file_path),
                os.path.basename(file_path) == "__init__.py",
                source,
                per_file_ids,
            )
        )

    if jobs > 1 and len(tasks) > 1:
        with multiprocessing.Pool(processes=jobs) as pool:
            task_results = pool.map(_run_task, tasks)
    else:
        task_results = [_run_task(task) for task in tasks]

    for task, outcome in zip(tasks, task_results):
        results[task[0]] = outcome
    if cache is not None:
        for task, outcome in zip(tasks, task_results):
            file_path, _module, _is_pkg, source, _ids = task
            _path, findings_, suppressed_, summary_ = outcome
            cache.put(
                os.path.realpath(file_path),
                CacheEntry(
                    sha256=content_hash(source.encode("utf-8")),
                    path=file_path,
                    findings=findings_,
                    suppressed=suppressed_,
                    summary=summary_,
                ),
            )

    collected: List[Finding] = []
    summaries: List[ModuleSummary] = []
    for file_path in ordered_paths:
        _path, findings_, suppressed_, summary_ = results[file_path]
        collected.extend(findings_)
        report.suppressed += suppressed_
        if summary_ is not None:
            summaries.append(summary_)

    if project and summaries:
        index = ProjectIndex(summaries)
        if keep_index:
            report.index = index
        allow_map: Dict[str, Dict[int, Tuple[str, ...]]] = {
            summary.path: summary.allow_lines
            for summary in summaries
            if summary.allow_lines
        }
        for rule in project:
            produced = list(rule.check_project(index))
            if rule.honors_inline_suppressions and allow_map:
                kept: List[Finding] = []
                for finding in produced:
                    allowed = allow_map.get(finding.path, {}).get(finding.line, ())
                    if finding.rule in allowed:
                        report.suppressed += 1
                    else:
                        kept.append(finding)
                produced = kept
            collected.extend(produced)
    elif keep_index and summaries:
        report.index = ProjectIndex(summaries)

    collected.sort()
    if baseline is not None:
        collected, report.baselined = baseline.partition(collected)
    report.findings = collected

    if cache is not None:
        cache.save()
    return report


def _rehydrate(entry: CacheEntry, file_path: str) -> _TaskResult:
    """A cached entry, re-labelled with this invocation's path spelling."""
    if entry.path == file_path:
        return file_path, list(entry.findings), entry.suppressed, entry.summary
    findings = [replace(f, path=file_path) for f in entry.findings]
    summary = entry.summary
    if summary is not None:
        summary = replace(summary, path=file_path)
    return file_path, findings, entry.suppressed, summary


def _analyze_one(
    source: str,
    module: str,
    path: str,
    rules: Sequence[Rule],
    is_package: bool = False,
) -> Tuple[List[Finding], int, Optional[ModuleSummary]]:
    """Per-file phase for one file: findings, suppressed count, summary."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path,
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    PARSE_ERROR_RULE,
                    f"file does not parse: {exc.msg}",
                )
            ],
            0,
            None,
        )
    ctx = FileContext.build(path, module, source, tree, is_package=is_package)
    table = parse_suppressions(source, path, tree)
    raw: List[Finding] = list(table.findings)
    for rule in rules:
        raw.extend(rule.check(ctx))
    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        if table.suppresses(finding.line, finding.rule):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort()
    summary = extract_summary(
        tree,
        module,
        path,
        is_package=is_package,
        shared_lines=table.shared_by_line,
        allow_lines=table.by_line,
    )
    return kept, suppressed, summary
