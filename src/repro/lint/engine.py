"""The per-file lint pipeline: parse once, run every rule, filter.

For each ``.py`` file the engine parses one AST, derives the dotted
module name (rules scope themselves by it), runs the selected rules,
then applies inline suppressions and the baseline.  Files that fail to
parse produce a ``LINT002`` finding instead of crashing the run.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .baseline import Baseline
from .findings import Finding
from .rules import FileContext, Rule, all_rules
from .suppressions import parse_suppressions

#: Rule id for files the parser rejects.
PARSE_ERROR_RULE = "LINT002"


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)  # new, actionable
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def module_name_for(path: str) -> str:
    """Dotted module for a file path, anchored at the ``repro`` package.

    Falls back to the bare stem for files outside the package — scoped
    rules then simply don't apply to them.
    """
    parts = list(os.path.normpath(os.path.abspath(path)).split(os.sep))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:]) or "repro"
    return parts[-1] if parts else "<unknown>"


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Every ``.py`` file under ``paths``, deterministically ordered."""
    seen = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(files):
                    if name.endswith(".py"):
                        candidate = os.path.join(root, name)
                        if candidate not in seen:
                            seen.add(candidate)
                            yield candidate
        elif path not in seen:
            seen.add(path)
            yield path


def lint_source(
    source: str,
    module: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string (the test fixtures' entry point).

    Returns the findings that survive inline suppressions, sorted by
    location; baseline filtering is the caller's concern.
    """
    active = list(rules) if rules is not None else all_rules()
    findings, _ = _lint_one(source, module, path, active)
    return findings


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint files/directories and fold in suppressions plus baseline."""
    active = list(rules) if rules is not None else all_rules()
    report = LintReport()
    collected: List[Finding] = []
    for file_path in iter_python_files(paths):
        report.files_checked += 1
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            collected.append(
                Finding(file_path, 1, 0, PARSE_ERROR_RULE, f"cannot read file: {exc}")
            )
            continue
        findings, suppressed = _lint_one(
            source,
            module_name_for(file_path),
            file_path,
            active,
            is_package=os.path.basename(file_path) == "__init__.py",
        )
        collected.extend(findings)
        report.suppressed += suppressed
    collected.sort()
    if baseline is not None:
        collected, report.baselined = baseline.partition(collected)
    report.findings = collected
    return report


def _lint_one(
    source: str,
    module: str,
    path: str,
    rules: Sequence[Rule],
    is_package: bool = False,
) -> Tuple[List[Finding], int]:
    """All post-suppression findings for one file, plus suppressed count."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path,
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    PARSE_ERROR_RULE,
                    f"file does not parse: {exc.msg}",
                )
            ],
            0,
        )
    ctx = FileContext.build(path, module, source, tree, is_package=is_package)
    table = parse_suppressions(source, path)
    raw: List[Finding] = list(table.findings)
    for rule in rules:
        raw.extend(rule.check(ctx))
    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        if table.suppresses(finding.line, finding.rule):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort()
    return kept, suppressed
