"""SARIF 2.1.0 output: findings as GitHub code-scanning annotations.

One run, one tool (``repro-lint``), one result per finding.  The rule
catalogue embeds every rule that *ran* plus synthetic entries for the
infrastructure ids (LINT001/LINT002) so ``ruleIndex`` always resolves.
Column/line numbers are converted to SARIF's 1-based convention.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .engine import ENGINE_VERSION, LintReport
from .findings import normalize_path
from .rules import Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Diagnostics the engine itself can emit without a registered rule.
_BUILTIN_DESCRIPTIONS = {
    "LINT001": "malformed or unjustified suppression directive",
    "LINT002": "file could not be read or parsed",
}

#: Category shown for engine diagnostics and unregistered rule ids.
_FALLBACK_CATEGORY = "lint-infra"


def render_sarif(report: LintReport, rules: Sequence[Rule]) -> str:
    """The report as a SARIF 2.1.0 JSON document (deterministic)."""
    catalogue: List[Dict[str, Any]] = []
    index_of: Dict[str, int] = {}

    def add_rule(rule_id: str, description: str, category: str) -> None:
        if rule_id in index_of:
            return
        index_of[rule_id] = len(catalogue)
        catalogue.append(
            {
                "id": rule_id,
                "shortDescription": {"text": description},
                "defaultConfiguration": {"level": "error"},
                "properties": {"category": category},
            }
        )

    for rule in sorted(rules, key=lambda r: r.rule_id):
        add_rule(rule.rule_id, rule.summary, rule.category)
    for rule_id, description in sorted(_BUILTIN_DESCRIPTIONS.items()):
        add_rule(rule_id, description, _FALLBACK_CATEGORY)
    for finding in report.findings:  # never emit a dangling ruleIndex
        add_rule(finding.rule, "(unregistered rule)", _FALLBACK_CATEGORY)

    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": index_of[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": normalize_path(finding.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]

    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": f"{ENGINE_VERSION}.0.0",
                        "informationUri": (
                            "https://github.com/paper-repro/profiling-minors-risk"
                        ),
                        "rules": catalogue,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
