"""``python -m repro lint`` — the checker's command-line face.

Exit codes: 0 clean (or baseline written), 1 new policy findings,
2 infrastructure failures — usage errors, unreadable baselines, or
files that could not be read/parsed (LINT002).
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
from typing import List, Optional, Sequence

from .baseline import Baseline
from .cache import DEFAULT_CACHE_PATH, LintCache, rule_signature
from .engine import lint_paths
from .reporting import render_json, render_text
from .rules import Rule, all_rules, rule_ids
from .sarif import render_sarif

#: Linted when no paths are given; members that don't exist are skipped.
DEFAULT_TARGETS = ("src/repro", "tests", "benchmarks", "examples")

#: Diagnostics the engine emits itself, with no Rule class to document.
_BUILTIN_EXPLANATIONS = {
    "LINT001": (
        "LINT001 [lint-infra]  malformed repro-lint comment\n"
        "\n"
        "Rationale: a suppression that does not parse silences nothing and\n"
        "reads as if it did; flagging it keeps the suppression inventory\n"
        "honest.  Every suppression must carry a justification after `--`.\n"
        "\n"
        "Fix: use `# repro-lint: allow(RULE001[, RULE002]) -- <why>` to\n"
        "waive findings on the statement, or\n"
        "`# repro-lint: shared(Owner) -- <why>` to declare a deliberate\n"
        "shared-state write for SHARE001.  The `-- <why>` part is\n"
        "mandatory in both forms.\n"
        "\n"
        "Suppression: not suppressible — fix or delete the comment."
    ),
    "LINT002": (
        "LINT002 [lint-infra]  file could not be read or parsed\n"
        "\n"
        "Rationale: an unreadable or syntactically invalid file cannot be\n"
        "checked at all, so every rule is silently skipped for it; that is\n"
        "an infrastructure failure (exit 2), not a clean pass.\n"
        "\n"
        "Fix: repair the syntax error or file permissions, or exclude the\n"
        "path from the linted targets if it is not Python.\n"
        "\n"
        "Suppression: not suppressible — the file must parse first."
    ),
}


def explain_rule(rule_id: str) -> int:
    """Print one rule's rationale/fix/suppression contract from its docstring."""
    wanted = rule_id.strip().upper()
    text = _BUILTIN_EXPLANATIONS.get(wanted)
    if text is None:
        for rule in all_rules():
            if rule.rule_id == wanted:
                doc = inspect.getdoc(type(rule)) or "(no documentation)"
                text = f"{rule.rule_id} [{rule.category}]  {rule.summary}\n\n{doc}"
                break
    if text is None:
        known = ", ".join(list(rule_ids()) + sorted(_BUILTIN_EXPLANATIONS))
        print(f"error: unknown rule id {rule_id!r} (known: {known})", file=sys.stderr)
        return 2
    print(text)
    return 0


def default_paths() -> List[str]:
    return [path for path in DEFAULT_TARGETS if os.path.exists(path)]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=(
            "files or directories to check "
            f"(default: {' '.join(DEFAULT_TARGETS)}, where present)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="JSON baseline of grandfathered findings",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="processes for the per-file phase (default: 1)",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        default=DEFAULT_CACHE_PATH,
        help=f"on-disk result cache (default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk cache for this run",
    )
    parser.add_argument(
        "--scale-report",
        action="store_true",
        help=(
            "emit the columnar-port worklist (attack-pipeline functions "
            "bound to the object World, with call-path witnesses) instead "
            "of findings"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        default=None,
        help="print one rule's rationale, fix and suppression form, then exit",
    )


def run_scale_report(
    paths: Sequence[str],
    rules: List[Rule],
    cache: Optional[LintCache],
    args: argparse.Namespace,
) -> int:
    """``--scale-report``: print the columnar-port worklist, exit 0.

    The report is an artifact, not a gate — findings still come from
    the normal lint run; only unreadable files (LINT002) make this
    mode fail, since an unparsed module would silently vanish from the
    worklist.
    """
    from .scale import build_scale_report, render_text as render_report

    if args.format == "sarif":
        print("error: --scale-report supports text and json only", file=sys.stderr)
        return 2
    report = lint_paths(
        paths, rules=rules, cache=cache, jobs=args.jobs, keep_index=True
    )
    if report.index is None:
        print("error: no Python modules found to index", file=sys.stderr)
        return 2
    worklist = build_scale_report(report.index)
    if args.format == "json":
        print(json.dumps(worklist.to_json(), indent=2, sort_keys=True))
    else:
        print(render_report(worklist))
    if report.infrastructure_errors:
        for finding in report.findings:
            if finding.rule == "LINT002":
                print(f"error: {finding.path}: {finding.message}", file=sys.stderr)
        return 2
    return 0


def run_lint(args: argparse.Namespace) -> int:
    if args.explain:
        return explain_rule(args.explain)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  [{rule.category}]  {rule.summary}")
        return 0

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    rules = all_rules()
    if args.select:
        wanted = {part.strip() for part in args.select.split(",") if part.strip()}
        unknown = wanted - set(rule_ids())
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(rule_ids())})",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.rule_id in wanted]

    paths = args.paths if args.paths else default_paths()
    cache = None
    if not args.no_cache:
        cache = LintCache(
            args.cache, rule_signature([rule.rule_id for rule in rules])
        )

    if args.scale_report:
        return run_scale_report(paths, rules, cache, args)

    if args.write_baseline:
        if not args.baseline:
            print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        report = lint_paths(paths, rules=rules, cache=cache, jobs=args.jobs)
        Baseline.from_findings(report.findings).save(args.baseline)
        print(f"wrote {len(report.findings)} finding(s) to {args.baseline}")
        return 0

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except FileNotFoundError:
            print(f"error: baseline {args.baseline!r} not found", file=sys.stderr)
            return 2
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: cannot load baseline {args.baseline!r}: {exc}", file=sys.stderr)
            return 2

    report = lint_paths(
        paths, rules=rules, baseline=baseline, cache=cache, jobs=args.jobs
    )
    if args.format == "sarif":
        print(render_sarif(report, rules))
    elif args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    if report.infrastructure_errors:
        return 2
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based oracle-boundary, determinism, sim-clock and "
            "privacy-flow checker."
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via `python -m repro lint`
    sys.exit(main())
