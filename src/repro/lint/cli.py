"""``python -m repro lint`` — the checker's command-line face.

Exit codes: 0 clean (or baseline written), 1 new findings, 2 usage or
baseline-file errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .baseline import Baseline
from .engine import lint_paths
from .reporting import render_json, render_text
from .rules import all_rules, rule_ids


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="JSON baseline of grandfathered findings",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    rules = all_rules()
    if args.select:
        wanted = {part.strip() for part in args.select.split(",") if part.strip()}
        unknown = wanted - set(rule_ids())
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(rule_ids())})",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.rule_id in wanted]

    if args.write_baseline:
        if not args.baseline:
            print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        report = lint_paths(args.paths, rules=rules)
        Baseline.from_findings(report.findings).save(args.baseline)
        print(f"wrote {len(report.findings)} finding(s) to {args.baseline}")
        return 0

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except FileNotFoundError:
            print(f"error: baseline {args.baseline!r} not found", file=sys.stderr)
            return 2
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: cannot load baseline {args.baseline!r}: {exc}", file=sys.stderr)
            return 2

    report = lint_paths(args.paths, rules=rules, baseline=baseline)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(report))
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based oracle-boundary, determinism and sim-clock checker.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via `python -m repro lint`
    sys.exit(main())
