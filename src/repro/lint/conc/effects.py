"""Per-function effect summaries for the concurrency-safety pass.

Built on the :mod:`repro.lint.flow` IR: every function's ops already
carry ``(path, mode)`` write records, alias roots, ``await`` markers and
held-lock sets, so this module only has to *classify* each write
(mutates-self / mutates-param / mutates-global / mutates-class-attr),
spot blocking calls, and stitch the per-function facts into a call
graph.  Interprocedural propagation is then plain breadth-first
reachability with parent links — no fixpoint is needed because effect
*sites* stay attributed to the function that performs them; rules
combine "site in f" with "f reachable from entry" and render the call
chain as the witness.

Approximations (documented in DESIGN.md §7):

* Aliasing is two-pass and local: ``x = self.graph`` makes writes
  through ``x`` count against ``self.graph``, but call results are
  fresh — the keyed-accessor idiom (``self._limiter_for(a).charge()``)
  is deliberately invisible, which is exactly what makes per-account
  state extraction the sanctioned fix for SHARE001.
* Attribute types come from ``__init__`` only: constructor calls,
  annotated parameters stored on ``self``, and locally constructed
  objects later bound to ``self`` attributes.
* Mutator-method detection is name-based (:data:`MUTATOR_METHODS`);
  telemetry verbs (``inc``/``observe``/``set``/``labels``/``emit``)
  are deliberately absent so metric updates stay invisible.
"""

from __future__ import annotations

import weakref
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..flow.index import ProjectIndex, Resolution, ResolvedFunction
from ..flow.summary import CallInfo, FunctionInfo, ModuleSummary, Op

#: Method names that mutate their receiver.  Telemetry verbs are
#: deliberately excluded so counter/gauge updates stay invisible.
MUTATOR_METHODS: FrozenSet[str] = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
        "write",
        "writelines",
    }
)

#: Dotted callables that block the event loop (wall-clock waits,
#: synchronous I/O).  Matched after resolving the first component
#: through the module's import aliases.
BLOCKING_CALLS: FrozenSet[str] = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.wait",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
        "socket.create_connection",
        "requests.get",
        "requests.post",
        "requests.request",
    }
)

#: Bare builtins that block (console reads, synchronous file opens).
BLOCKING_BARE: FrozenSet[str] = frozenset({"input", "open"})

#: Receiver components that mark a wait as SimClock-mediated: the
#: simulation's cooperative clock, allowlisted by ASYNC001.
_SIMCLOCK_RECEIVERS: FrozenSet[str] = frozenset({"clock", "_clock", "sim_clock"})

#: Alias-resolution passes (a second pass catches x = y; y = self.z).
_ALIAS_PASSES = 2


@dataclass(frozen=True)
class MutationSite:
    """One classified write: *what kind* of state, *where*."""

    kind: str  # "self" | "param" | "global" | "classattr"
    target: str  # dotted path of the mutated object (alias-resolved)
    module: str
    function: str  # qualname within the module
    line: int
    col: int

    @property
    def fqn(self) -> str:
        return f"{self.module}:{self.function}"


@dataclass(frozen=True)
class BlockingSite:
    """One blocking call (wall-clock wait / sync I/O)."""

    callee: str
    module: str
    function: str
    line: int
    col: int

    @property
    def fqn(self) -> str:
        return f"{self.module}:{self.function}"


@dataclass(frozen=True)
class FunctionEffects:
    """Direct (non-transitive) effects of one function."""

    mutations: Tuple[MutationSite, ...] = ()
    blocking: Tuple[BlockingSite, ...] = ()


ClassKey = Tuple[str, str]  # (module, class name)


class EffectAnalysis:
    """Effect summaries + call graph over one :class:`ProjectIndex`.

    Construction walks every indexed function once; rules then combine
    :attr:`effects` with :meth:`reachable_from` / :meth:`shared_classes`.
    """

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: (module, class) -> attr -> (module, class) from __init__.
        self.attr_types: Dict[ClassKey, Dict[str, ClassKey]] = {}
        #: fqn -> direct effects.
        self.effects: Dict[str, FunctionEffects] = {}
        #: fqn -> sorted callee fqns.
        self.edges: Dict[str, Tuple[str, ...]] = {}
        #: fqn -> FunctionInfo (only indexed, non-shadowed functions).
        self.functions: Dict[str, FunctionInfo] = {}
        self._build()

    # -- construction --------------------------------------------------

    def _build(self) -> None:
        for module in sorted(self.index.modules):
            summary = self.index.modules[module]
            self._collect_attr_types(summary)
        for module in sorted(self.index.modules):
            summary = self.index.modules[module]
            module_globals = _module_globals(summary)
            for qualname in sorted(summary.functions):
                fn = summary.functions[qualname]
                fqn = f"{module}:{qualname}"
                self.functions[fqn] = fn
                self.effects[fqn] = self._function_effects(
                    summary, fn, module_globals
                )
                self.edges[fqn] = self._function_edges(summary, fn)

    def _collect_attr_types(self, summary: ModuleSummary) -> None:
        for class_name in sorted(summary.classes):
            init = summary.functions.get(f"{class_name}.__init__")
            if init is None:
                continue
            param_types = self._param_types(summary, init)
            local_classes: Dict[str, ClassKey] = {}
            attrs: Dict[str, ClassKey] = {}
            for op in init.ops:
                constructed = self._constructed_class(summary, init, op)
                for path, mode in op.writes:
                    parts = path.split(".")
                    if mode != "bind" or len(parts) != 2 or parts[0] != "self":
                        continue
                    value_type: Optional[ClassKey] = None
                    if len(op.alias) == 1:
                        alias = op.alias[0]
                        value_type = local_classes.get(alias) or param_types.get(
                            alias
                        )
                    elif not op.alias:
                        value_type = constructed
                    if value_type is not None:
                        attrs[parts[1]] = value_type
                if constructed is not None and not op.alias:
                    for name in op.targets:
                        local_classes[name] = constructed
            if attrs:
                self.attr_types[(summary.module, class_name)] = attrs

    def _param_types(
        self, summary: ModuleSummary, fn: FunctionInfo
    ) -> Dict[str, ClassKey]:
        out: Dict[str, ClassKey] = {}
        for param, ref in fn.annotations:
            if param == "return":
                continue
            resolved = self.index.resolve_call(summary.module, "", ref)
            if resolved.constructed_class is not None:
                out[param] = resolved.constructed_class
        return out

    def _constructed_class(
        self, summary: ModuleSummary, fn: FunctionInfo, op: Op
    ) -> Optional[ClassKey]:
        for call in op.expr.calls:
            if call.callee is None:
                continue
            resolved = self.index.resolve_call(
                summary.module, fn.qualname, call.callee
            )
            if resolved.constructed_class is not None:
                return resolved.constructed_class
        return None

    # -- per-function facts --------------------------------------------

    def _function_effects(
        self,
        summary: ModuleSummary,
        fn: FunctionInfo,
        module_globals: FrozenSet[str],
    ) -> FunctionEffects:
        own_class = _own_class(summary, fn)
        params = frozenset(p for p in fn.params if p != "self")
        locals_bound = frozenset(
            name for op in fn.ops for name in op.targets
        )
        aliases = _alias_map(fn)
        mutations: List[MutationSite] = []
        blocking: List[BlockingSite] = []

        def classify(path: str, mode: str, line: int, col: int) -> None:
            for resolved in _resolve_alias(path, aliases):
                site = self._classify_write(
                    summary,
                    fn,
                    own_class,
                    params,
                    locals_bound,
                    module_globals,
                    resolved,
                    mode,
                    line,
                    col,
                )
                if site is not None:
                    mutations.append(site)

        for op in fn.ops:
            for path, mode in op.writes:
                classify(path, mode, op.line, op.col)
            # Rebinding a declared-global name has no dotted write path
            # but mutates the module namespace all the same.
            for name in op.targets:
                if name in fn.globals_declared:
                    mutations.append(
                        MutationSite(
                            "global",
                            name,
                            summary.module,
                            fn.qualname,
                            op.line,
                            op.col,
                        )
                    )
            for call in op.expr.calls:
                self._call_effects(
                    summary, fn, call, classify, blocking
                )
        return FunctionEffects(tuple(mutations), tuple(blocking))

    def _call_effects(
        self,
        summary: ModuleSummary,
        fn: FunctionInfo,
        call: CallInfo,
        classify: Callable[[str, str, int, int], None],
        blocking: List[BlockingSite],
    ) -> None:
        if call.callee is None:
            # Accessor-receiver calls (``self._limiter_for(a).charge()``):
            # the receiver is a fresh call result, never a shared path.
            return
        parts = call.callee.split(".")
        if len(parts) >= 2 and parts[-1] in MUTATOR_METHODS:
            receiver = ".".join(parts[:-1])
            classify(receiver, "mutate", call.line, call.col)
        site = self._blocking_site(summary, fn, call, parts)
        if site is not None:
            blocking.append(site)

    def _blocking_site(
        self,
        summary: ModuleSummary,
        fn: FunctionInfo,
        call: CallInfo,
        parts: Sequence[str],
    ) -> Optional[BlockingSite]:
        callee = ".".join(parts)
        if len(parts) == 1:
            if parts[0] in BLOCKING_BARE and parts[0] not in summary.imports:
                if parts[0] not in summary.functions:
                    return BlockingSite(
                        callee, summary.module, fn.qualname, call.line, call.col
                    )
            if parts[0] in summary.imports:
                absolute = summary.imports[parts[0]][0]
                if absolute in BLOCKING_CALLS:
                    return BlockingSite(
                        absolute, summary.module, fn.qualname, call.line, call.col
                    )
            return None
        # SimClock-mediated waits are cooperative, not blocking.
        if parts[-1] == "sleep" and parts[-2] in _SIMCLOCK_RECEIVERS:
            return None
        root = parts[0]
        if root in summary.imports:
            absolute = ".".join([summary.imports[root][0], *parts[1:]])
            if absolute in BLOCKING_CALLS:
                return BlockingSite(
                    absolute, summary.module, fn.qualname, call.line, call.col
                )
        return None

    def _classify_write(
        self,
        summary: ModuleSummary,
        fn: FunctionInfo,
        own_class: Optional[str],
        params: FrozenSet[str],
        locals_bound: FrozenSet[str],
        module_globals: FrozenSet[str],
        path: str,
        mode: str,
        line: int,
        col: int,
    ) -> Optional[MutationSite]:
        parts = path.split(".")
        root = parts[0]
        # The mutated *object*: for a bind the path's prefix object gets
        # a new attribute; for a mutate the object at the path itself.
        target = ".".join(parts[:-1]) if mode == "bind" else path
        if not target:
            return None  # plain local rebind
        if root == "self":
            if own_class is None:
                return None
            kind = "self"
            if (
                len(parts) >= 2
                and mode != "bind"
                and parts[1] in summary.class_attrs.get(own_class, ())
            ):
                kind = "classattr"
            return MutationSite(
                kind, target, summary.module, fn.qualname, line, col
            )
        if root in params:
            return MutationSite(
                "param", target, summary.module, fn.qualname, line, col
            )
        if root in summary.classes:
            return MutationSite(
                "classattr", target, summary.module, fn.qualname, line, col
            )
        if root in fn.globals_declared or (
            root in module_globals and root not in locals_bound
        ):
            return MutationSite(
                "global", target, summary.module, fn.qualname, line, col
            )
        return None

    def _function_edges(
        self, summary: ModuleSummary, fn: FunctionInfo
    ) -> Tuple[str, ...]:
        edges: List[str] = []
        for op in fn.ops:
            for call in op.expr.calls:
                edges.extend(self._call_edges(summary, fn, call))
        for nested in fn.nested:
            edges.append(f"{summary.module}:{nested}")
        return tuple(sorted(dict.fromkeys(edges)))

    def _call_edges(
        self, summary: ModuleSummary, fn: FunctionInfo, call: CallInfo
    ) -> Iterator[str]:
        if call.callee is not None:
            typed = self._typed_self_edge(summary, fn, call.callee)
            if typed is not None:
                yield typed
                return
            resolution = self.index.resolve_call(
                summary.module, fn.qualname, call.callee
            )
            yield from self._resolution_edges(resolution)
            return
        if call.recv_call is not None and call.method is not None:
            yield from self._accessor_edges(summary, fn, call)

    def _typed_self_edge(
        self, summary: ModuleSummary, fn: FunctionInfo, callee: str
    ) -> Optional[str]:
        """``self.attr.method()`` through the __init__-derived attr type."""
        parts = callee.split(".")
        if len(parts) != 3 or parts[0] != "self":
            return None
        own_class = _own_class(summary, fn)
        if own_class is None:
            return None
        attr_type = self.attr_types.get((summary.module, own_class), {}).get(
            parts[1]
        )
        if attr_type is None:
            return None
        type_module, type_class = attr_type
        type_summary = self.index.modules.get(type_module)
        if type_summary is None:
            return None
        if parts[2] in type_summary.classes.get(type_class, ()):
            return f"{type_module}:{type_class}.{parts[2]}"
        return None

    def _accessor_edges(
        self, summary: ModuleSummary, fn: FunctionInfo, call: CallInfo
    ) -> Iterator[str]:
        """``self._accessor(a).method()`` through the return annotation."""
        resolution = self.index.resolve_call(
            summary.module, fn.qualname, call.recv_call
        )
        for resolved in resolution.functions:
            accessor = self.index.function(resolved)
            if accessor is None:
                continue
            ret = dict(accessor.annotations).get("return")
            if ret is None:
                continue
            ret_resolution = self.index.resolve_call(resolved.module, "", ret)
            if ret_resolution.constructed_class is None:
                continue
            type_module, type_class = ret_resolution.constructed_class
            type_summary = self.index.modules.get(type_module)
            if type_summary is None:
                continue
            if call.method in type_summary.classes.get(type_class, ()):
                yield f"{type_module}:{type_class}.{call.method}"

    def _resolution_edges(self, resolution: Resolution) -> Iterator[str]:
        for resolved in resolution.functions:
            yield resolved.fqn
        if resolution.constructed_class is not None:
            module, class_name = resolution.constructed_class
            summary = self.index.modules.get(module)
            if summary is not None and "__init__" in summary.classes.get(
                class_name, ()
            ):
                yield f"{module}:{class_name}.__init__"

    # -- interprocedural queries ---------------------------------------

    def reachable_from(self, roots: Iterable[str]) -> Dict[str, Optional[str]]:
        """BFS over the call graph: fqn -> parent fqn (roots map to None)."""
        parents: Dict[str, Optional[str]] = {}
        frontier: "deque[str]" = deque()
        for root in sorted(dict.fromkeys(roots)):
            if root in self.functions and root not in parents:
                parents[root] = None
                frontier.append(root)
        while frontier:
            current = frontier.popleft()
            for callee in self.edges.get(current, ()):
                if callee in parents or callee not in self.functions:
                    continue
                parents[callee] = current
                frontier.append(callee)
        return parents

    def chain(self, parents: Mapping[str, Optional[str]], fqn: str) -> List[str]:
        """Entry-to-target call chain for witness messages."""
        chain: List[str] = []
        cursor: Optional[str] = fqn
        while cursor is not None and len(chain) <= len(parents):
            chain.append(cursor)
            cursor = parents.get(cursor)
        chain.reverse()
        return chain

    def shared_classes(self, seeds: Iterable[ClassKey]) -> FrozenSet[ClassKey]:
        """Seeds plus every class reachable through attr types."""
        closure: Set[ClassKey] = set()
        frontier: List[ClassKey] = sorted(dict.fromkeys(seeds))
        while frontier:
            key = frontier.pop()
            if key in closure:
                continue
            closure.add(key)
            for attr_type in self.attr_types.get(key, {}).values():
                if attr_type not in closure:
                    frontier.append(attr_type)
        return frozenset(closure)

    def own_class_of(self, fqn: str) -> Optional[ClassKey]:
        module, _, qualname = fqn.partition(":")
        summary = self.index.modules.get(module)
        if summary is None:
            return None
        fn = summary.functions.get(qualname)
        if fn is None:
            return None
        own = _own_class(summary, fn)
        return (module, own) if own is not None else None


# ----------------------------------------------------------------------
# Module-level helpers
# ----------------------------------------------------------------------


def _own_class(summary: ModuleSummary, fn: FunctionInfo) -> Optional[str]:
    head = fn.qualname.split(".", 1)[0]
    if "." in fn.qualname and head in summary.classes:
        return head
    return None


def _module_globals(summary: ModuleSummary) -> FrozenSet[str]:
    body = summary.functions.get("")
    if body is None:
        return frozenset()
    return frozenset(
        name for op in body.ops if op.kind == "assign" for name in op.targets
    )


def _alias_map(fn: FunctionInfo) -> Dict[str, Tuple[str, ...]]:
    """Local name -> dotted roots it may alias (two propagation passes)."""
    aliases: Dict[str, Tuple[str, ...]] = {}
    for _ in range(_ALIAS_PASSES):
        for op in fn.ops:
            if op.kind != "assign" or not op.alias:
                continue
            resolved: List[str] = []
            for ref in op.alias:
                resolved.extend(_resolve_alias(ref, aliases))
            deduped = tuple(dict.fromkeys(resolved))
            for name in op.targets:
                existing = aliases.get(name, ())
                aliases[name] = tuple(dict.fromkeys(existing + deduped))
    return aliases


def _resolve_alias(
    path: str, aliases: Mapping[str, Tuple[str, ...]]
) -> Tuple[str, ...]:
    parts = path.split(".")
    root, rest = parts[0], parts[1:]
    targets = aliases.get(root)
    if not targets:
        return (path,)
    suffix = "." + ".".join(rest) if rest else ""
    resolved = tuple(
        dict.fromkeys(target + suffix for target in targets if target != path)
    )
    return resolved or (path,)


_ANALYSES: "MutableMapping[ProjectIndex, EffectAnalysis]" = (
    weakref.WeakKeyDictionary()
)


def analysis_for(index: ProjectIndex) -> EffectAnalysis:
    """One shared :class:`EffectAnalysis` per project index (memoised so
    the four concurrency rules build the call graph once, not four
    times)."""
    cached = _ANALYSES.get(index)
    if cached is None:
        cached = EffectAnalysis(index)
        _ANALYSES[index] = cached
    return cached
