"""Concurrency-safety analysis (PURE001/SHARE001/ASYNC001/ASYNC002).

Layered on :mod:`repro.lint.flow`: per-function effect summaries
(mutates-self / mutates-param / mutates-global / mutates-class-attr /
performs-blocking-call) propagated over the whole-program call graph,
proving the serve path is read-only and shared state is explicitly
owned before the async crawl engine lands.
"""

from .effects import (
    BLOCKING_CALLS,
    MUTATOR_METHODS,
    BlockingSite,
    EffectAnalysis,
    FunctionEffects,
    MutationSite,
    analysis_for,
)
from .rules import (
    AsyncBlockingRule,
    AwaitInterleavingRule,
    ServePathPurityRule,
    SharedStateRule,
)

__all__ = [
    "BLOCKING_CALLS",
    "MUTATOR_METHODS",
    "BlockingSite",
    "EffectAnalysis",
    "FunctionEffects",
    "MutationSite",
    "analysis_for",
    "AsyncBlockingRule",
    "AwaitInterleavingRule",
    "ServePathPurityRule",
    "SharedStateRule",
]
