"""PURE001 / SHARE001 / ASYNC001 / ASYNC002 — concurrency-safety rules.

These whole-program rules gate the invariants the async crawl engine
(ROADMAP item 2) will rely on: the serve path must be read-only over
world state, cross-session shared state must be explicitly owned, and
async code must neither block the loop nor mutate shared structures
across ``await`` points.  They run over the
:class:`~repro.lint.conc.effects.EffectAnalysis` built from the flow
IR; DESIGN.md §7 documents the semantics and approximations.

Entry points are discovered from the index rather than hard-coded
objects, so fixture projects exercising the rules only need to define
``repro.osn.frontend.HtmlFrontend`` / ``repro.crawler.client.CrawlClient``
shaped modules.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..flow.index import ProjectIndex
from ..flow.summary import Op
from ..rules.base import WholeProgramRule, register
from .effects import MUTATOR_METHODS, EffectAnalysis, MutationSite, analysis_for

#: Modules holding simulated-world state: the serve path must never
#: mutate these (PURE001), and writes here are the write-path's job so
#: SHARE001 leaves them to PURE001's jurisdiction.
WORLD_MODULE_PREFIXES: Tuple[str, ...] = (
    "repro.osn.network",
    "repro.osn.graph",
    "repro.osn.messaging",
    "repro.osn.profile",
    "repro.osn.user",
    "repro.osn.privacy",
    "repro.osn.policy",
    "repro.worldgen",
    "repro.colgen",
)

#: Observability is allowed to aggregate from anywhere.
EXEMPT_MODULE_PREFIXES: Tuple[str, ...] = ("repro.telemetry",)

#: The request-serving surface: (module, class, read methods, write methods).
FRONTEND_MODULE = "repro.osn.frontend"
FRONTEND_CLASS = "HtmlFrontend"
READ_METHODS: Tuple[str, ...] = ("get",)
WRITE_METHODS: Tuple[str, ...] = ("post",)

#: The crawl-session surface: every public CrawlClient method is a
#: session entry point.
CRAWLER_MODULE = "repro.crawler.client"
CRAWLER_CLASS = "CrawlClient"


def _in_prefixes(module: str, prefixes: Tuple[str, ...]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _is_world_module(module: str) -> bool:
    return _in_prefixes(module, WORLD_MODULE_PREFIXES)


def _is_exempt_module(module: str) -> bool:
    return _in_prefixes(module, EXEMPT_MODULE_PREFIXES)


def _class_entries(
    index: ProjectIndex, module: str, class_name: str, methods: Tuple[str, ...]
) -> List[Tuple[str, str]]:
    """(label, fqn) pairs for the named methods that actually exist."""
    summary = index.modules.get(module)
    if summary is None:
        return []
    defined = summary.classes.get(class_name, ())
    return [
        (f"{class_name}.{method}", f"{module}:{class_name}.{method}")
        for method in methods
        if method in defined
    ]


def _read_entries(index: ProjectIndex) -> List[Tuple[str, str]]:
    return _class_entries(index, FRONTEND_MODULE, FRONTEND_CLASS, READ_METHODS)


def _write_entries(index: ProjectIndex) -> List[Tuple[str, str]]:
    return _class_entries(index, FRONTEND_MODULE, FRONTEND_CLASS, WRITE_METHODS)


def _crawl_entries(index: ProjectIndex) -> List[Tuple[str, str]]:
    summary = index.modules.get(CRAWLER_MODULE)
    if summary is None:
        return []
    public = tuple(
        method
        for method in summary.classes.get(CRAWLER_CLASS, ())
        if not method.startswith("_")
    )
    return _class_entries(index, CRAWLER_MODULE, CRAWLER_CLASS, public)


def _session_entries(index: ProjectIndex) -> List[Tuple[str, str]]:
    return _read_entries(index) + _write_entries(index) + _crawl_entries(index)


def _entry_classes(index: ProjectIndex) -> List[Tuple[str, str]]:
    seeds: List[Tuple[str, str]] = []
    for module, class_name in (
        (FRONTEND_MODULE, FRONTEND_CLASS),
        (CRAWLER_MODULE, CRAWLER_CLASS),
    ):
        summary = index.modules.get(module)
        if summary is not None and class_name in summary.classes:
            seeds.append((module, class_name))
    return seeds


def _site_path(index: ProjectIndex, site_module: str) -> str:
    summary = index.modules.get(site_module)
    return summary.path if summary is not None else site_module


def _render_chain(chain: List[str]) -> str:
    return " -> ".join(fqn.split(":", 1)[1] or fqn for fqn in chain)


# ----------------------------------------------------------------------
# PURE001 — the serve path is read-only over world state
# ----------------------------------------------------------------------


@register
class ServePathPurityRule(WholeProgramRule):
    """The request-serving path must not mutate world state.

    Rationale: the async crawl engine serves many concurrent sessions
    off one shared world.  That is only safe because serving is
    read-only — any mutation reachable from ``HtmlFrontend.get``
    (lazy index rebuilds, caches, counters on world objects) is a data
    race the moment two sessions interleave.

    Fix: hoist the mutation behind an explicit setup seam (do the work
    eagerly at registration/build time, or move it onto the write
    path), so serving only ever reads.

    Suppression: none inline — PURE001 is a hard invariant.  A finding
    you cannot fix immediately belongs in ``lint-baseline.json``.
    """

    rule_id = "PURE001"
    summary = "no world mutation reachable from the serve path"
    category = "concurrency"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        analysis = analysis_for(index)
        for label, entry in _read_entries(index):
            parents = analysis.reachable_from([entry])
            for fqn in sorted(parents):
                for site in analysis.effects[fqn].mutations:
                    if not _is_world_module(site.module):
                        continue
                    chain = _render_chain(analysis.chain(parents, fqn))
                    yield Finding(
                        path=_site_path(index, site.module),
                        line=site.line,
                        col=site.col,
                        rule=self.rule_id,
                        message=(
                            f"world state '{site.target}' is mutated on the "
                            f"serve path: {label} reaches it via {chain}; "
                            "hoist the mutation behind a setup seam so "
                            "serving stays read-only"
                        ),
                    )


# ----------------------------------------------------------------------
# SHARE001 — shared mutable state must declare an owner
# ----------------------------------------------------------------------


@register
class SharedStateRule(WholeProgramRule):
    """Cross-session shared mutable state needs an explicit owner.

    Rationale: state written by code reachable from more than one
    crawl-session entry point (frontend ``get``/``post``, any public
    ``CrawlClient`` method) is shared between concurrent sessions.
    Unannotated shared writes are exactly where per-account state leaks
    into cross-account state — e.g. one rate-limit window throttling
    every account.

    Fix: key the state per account (the ``self._limiter_for(a)``
    accessor pattern keeps per-account objects invisible to this rule),
    or — when sharing is intended — annotate the write with its
    coordinating owner.

    Suppression: ``# repro-lint: shared(Owner) -- <why writers are
    coordinated>`` on the writing statement.  The owner names the class
    responsible for coordinating concurrent writers.
    """

    rule_id = "SHARE001"
    summary = "shared mutable state written without a shared(owner) annotation"
    category = "concurrency"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        analysis = analysis_for(index)
        entries = _session_entries(index)
        if len(entries) < 2:
            return
        reached_by: Dict[str, List[str]] = {}
        chains: Dict[str, List[str]] = {}
        for label, entry in entries:
            parents = analysis.reachable_from([entry])
            for fqn in parents:
                reached_by.setdefault(fqn, []).append(label)
                if fqn not in chains:
                    chains[fqn] = analysis.chain(parents, fqn)
        shared = analysis.shared_classes(_entry_classes(index))
        for fqn in sorted(reached_by):
            labels = reached_by[fqn]
            if len(labels) < 2:
                continue
            for site in analysis.effects[fqn].mutations:
                if not self._is_shared_site(analysis, fqn, site, shared):
                    continue
                summary = index.modules.get(site.module)
                if summary is not None and site.line in summary.shared_lines:
                    continue  # annotated: ownership is declared
                preview = ", ".join(labels[:3])
                if len(labels) > 3:
                    preview += ", ..."
                chain = _render_chain(chains[fqn])
                yield Finding(
                    path=_site_path(index, site.module),
                    line=site.line,
                    col=site.col,
                    rule=self.rule_id,
                    message=(
                        f"'{site.target}' is mutated by code reachable from "
                        f"{len(labels)} session entry points ({preview}) "
                        f"via {chain}; key it per account or annotate "
                        "\"# repro-lint: shared(Owner) -- why\""
                    ),
                )

    @staticmethod
    def _is_shared_site(
        analysis: EffectAnalysis,
        fqn: str,
        site: MutationSite,
        shared: "frozenset[Tuple[str, str]]",
    ) -> bool:
        if _is_world_module(site.module) or _is_exempt_module(site.module):
            return False  # world writes are PURE001's jurisdiction
        if site.kind in ("global", "classattr"):
            return True
        if site.kind == "self":
            own = analysis.own_class_of(fqn)
            return own is not None and own in shared
        return False  # param sites: callers own the object


# ----------------------------------------------------------------------
# ASYNC001 — no blocking calls on async paths
# ----------------------------------------------------------------------


@register
class AsyncBlockingRule(WholeProgramRule):
    """No blocking calls inside or reachable from ``async def``.

    Rationale: one ``time.sleep`` / synchronous I/O call inside the
    event loop stalls *every* crawl session, not just the offender —
    the scheduler's politeness math silently degrades to serial.

    Fix: await the SimClock-mediated equivalent (``clock.sleep`` is
    allowlisted as cooperative), or move the blocking work behind an
    executor boundary.  Calls into synchronous helpers are followed
    interprocedurally, so the fix may belong in a callee.

    Suppression: ``# repro-lint: allow(ASYNC001) -- <why>`` on the
    blocking call line (rarely right; prefer fixing the callee).
    """

    rule_id = "ASYNC001"
    summary = "blocking call inside or reachable from async code"
    category = "concurrency"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        analysis = analysis_for(index)
        for root in sorted(analysis.functions):
            if not analysis.functions[root].is_async:
                continue
            parents = self._sync_reachable(analysis, root)
            seen: Set[Tuple[str, int, int]] = set()
            for fqn in sorted(parents):
                for site in analysis.effects[fqn].blocking:
                    key = (site.module, site.line, site.col)
                    if key in seen:
                        continue
                    seen.add(key)
                    chain = _render_chain(analysis.chain(parents, fqn))
                    yield Finding(
                        path=_site_path(index, site.module),
                        line=site.line,
                        col=site.col,
                        rule=self.rule_id,
                        message=(
                            f"blocking call '{site.callee}' reachable from "
                            f"async '{root.split(':', 1)[1]}' via {chain}; "
                            "use the SimClock / an executor instead"
                        ),
                    )

    @staticmethod
    def _sync_reachable(
        analysis: EffectAnalysis, root: str
    ) -> Dict[str, Optional[str]]:
        """BFS that stops at async callees (they are checked on their
        own; awaiting them is the cooperative thing to do)."""
        parents: Dict[str, Optional[str]] = {root: None}
        frontier = [root]
        while frontier:
            current = frontier.pop()
            for callee in analysis.edges.get(current, ()):
                if callee in parents or callee not in analysis.functions:
                    continue
                if analysis.functions[callee].is_async:
                    continue
                parents[callee] = current
                frontier.append(callee)
        return parents


# ----------------------------------------------------------------------
# ASYNC002 — no awaiting across held locks / shared mutation across awaits
# ----------------------------------------------------------------------


@register
class AwaitInterleavingRule(WholeProgramRule):
    """No awaiting while holding a lock, no shared mutation across awaits.

    Rationale: an ``await`` is a scheduling point — every other task
    may run before control returns.  Awaiting with a lock held invites
    deadlock (another task needs the lock to progress); touching
    ``self``/module state before an await and mutating it after is the
    classic check-then-act interleaving race.

    Fix: release the lock before awaiting (narrow the ``with`` block),
    or re-read shared state after each await instead of carrying
    pre-await observations across the boundary.

    Suppression: ``# repro-lint: allow(ASYNC002) -- <why>`` on the
    mutation/await line when the interleaving is provably benign.
    """

    rule_id = "ASYNC002"
    summary = "await while holding a lock / shared mutation across an await"
    category = "concurrency"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        analysis = analysis_for(index)
        for fqn in sorted(analysis.functions):
            fn = analysis.functions[fqn]
            if not fn.is_async:
                continue
            module, _, qualname = fqn.partition(":")
            summary = index.modules.get(module)
            if summary is None:
                continue
            path = summary.path
            globals_known = frozenset(fn.globals_declared)
            pending: Set[str] = set()
            crossed: Set[str] = set()
            flagged: Set[str] = set()
            for op in fn.ops:
                if op.awaited and op.locks:
                    locks = ", ".join(sorted(set(op.locks)))
                    yield Finding(
                        path=path,
                        line=op.line,
                        col=op.col,
                        rule=self.rule_id,
                        message=(
                            f"'{qualname}' awaits while holding lock(s) "
                            f"{locks}; release before awaiting"
                        ),
                    )
                reads, writes = _op_tokens(op, globals_known)
                if op.awaited:
                    crossed |= pending
                for token in sorted(writes):
                    if token in crossed and token not in flagged:
                        flagged.add(token)
                        yield Finding(
                            path=path,
                            line=op.line,
                            col=op.col,
                            rule=self.rule_id,
                            message=(
                                f"'{token}' is touched before an await in "
                                f"'{qualname}' and mutated after it; other "
                                "tasks interleave at the await — re-read "
                                "or restructure"
                            ),
                        )
                pending |= reads | writes


def _op_tokens(
    op: Op, globals_known: "frozenset[str]"
) -> Tuple[Set[str], Set[str]]:
    """(read tokens, write tokens) of shared state touched by one op.

    Tokens are ``self.<attr>`` (first attribute only) and declared
    global names; locals are task-private and ignored.
    """
    reads: Set[str] = set()
    writes: Set[str] = set()

    def token_of(path: str) -> Optional[str]:
        parts = path.split(".")
        if parts[0] == "self" and len(parts) >= 2:
            return f"self.{parts[1]}"
        if parts[0] in globals_known:
            return parts[0]
        return None

    for path, _mode in op.writes:
        token = token_of(path)
        if token is not None:
            writes.add(token)
    for read in op.expr.reads:
        if read.recv is not None:
            token = token_of(f"{read.recv}.{read.attr}")
            if token is not None:
                reads.add(token)
    for name in op.expr.names:
        if name in globals_known:
            reads.add(name)
    for call in op.expr.calls:
        if call.callee is None:
            continue
        parts = call.callee.split(".")
        if len(parts) >= 2 and parts[-1] in MUTATOR_METHODS:
            token = token_of(".".join(parts[:-1]))
            if token is not None:
                writes.add(token)
    return reads, writes
