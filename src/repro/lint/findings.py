"""Finding: one diagnostic produced by one rule at one source location.

Findings are value objects: rules yield them, the engine filters them
through suppressions and the baseline, reporters render them.  The
*fingerprint* deliberately excludes the line number so that unrelated
edits above a grandfathered finding do not un-baseline it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic at one location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching (line-number free)."""
        return (self.rule, normalize_path(self.path), self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def normalize_path(path: str) -> str:
    """Stable, platform-independent form of a finding's path."""
    return path.replace("\\", "/")
