"""The on-disk lint cache: skip everything about an unchanged file.

One JSON document (``.repro-lint-cache.json`` by default) maps each
file's ``os.path.realpath`` to its content hash, per-file findings,
suppression count and the :class:`~repro.lint.flow.summary.ModuleSummary`
the whole-program phase needs.  A warm run therefore re-parses nothing:
per-file findings come straight from the cache and the project index is
rebuilt from cached summaries.

Invalidation is by construction, not by mtime: an entry is used only
when the file's SHA-256 matches, and the whole cache is discarded when
the *rule signature* changes — the engine version, the summary-format
version, the set of selected rule ids (different rules produce
different findings), or the source of any module defining a registered
rule.  The source digest is what makes *adding* a rule module
invalidate the cache: a new module changes no version number and no
selected id set (ids are hashed from the registry, which the new
module joins at import time), but its bytes land in the digest.
Delete the file to force a cold run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from .findings import Finding
from .flow.summary import SUMMARY_VERSION, ModuleSummary

#: Bump when the cache document shape changes.
CACHE_VERSION = 1

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def rules_source_digest() -> str:
    """SHA-256 over the source of every module defining a registered rule.

    Computed fresh on each call (the registry can grow mid-process when
    tests register fixture rules), over the sorted, deduplicated set of
    defining modules plus the id -> module mapping — so adding, editing
    or moving a rule module all change the digest even though the
    engine/summary versions stay put.
    """
    import sys

    from .rules.base import _REGISTRY

    digest = hashlib.sha256()
    seen: Dict[str, str] = {}
    for rule_id in sorted(_REGISTRY):
        module_name = _REGISTRY[rule_id].__module__
        digest.update(f"{rule_id}={module_name}\n".encode("utf-8"))
        if module_name in seen:
            continue
        module = sys.modules.get(module_name)
        path = getattr(module, "__file__", None)
        try:
            with open(path, "rb") as handle:  # type: ignore[arg-type]
                source = handle.read()
        except (OSError, TypeError):
            source = module_name.encode("utf-8")  # builtin/virtual module
        seen[module_name] = ""
        digest.update(source)
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def rule_signature(rule_ids: Sequence[str]) -> str:
    """Identity of an engine configuration, for cache invalidation."""
    from .engine import ENGINE_VERSION  # local import: engine imports us

    ids = ",".join(sorted(set(rule_ids)))
    sources = rules_source_digest()
    return (
        f"engine={ENGINE_VERSION};summary={SUMMARY_VERSION};"
        f"rules={ids};sources={sources}"
    )


@dataclass
class CacheEntry:
    """Everything the engine would recompute for one unchanged file."""

    sha256: str
    path: str
    findings: List[Finding]
    suppressed: int
    summary: Optional[ModuleSummary]

    def to_json(self) -> Dict[str, Any]:
        return {
            "sha256": self.sha256,
            "path": self.path,
            "findings": [
                [f.path, f.line, f.col, f.rule, f.message] for f in self.findings
            ],
            "suppressed": self.suppressed,
            "summary": None if self.summary is None else self.summary.to_json(),
        }

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "CacheEntry":
        summary_raw = raw.get("summary")
        return cls(
            sha256=str(raw["sha256"]),
            path=str(raw["path"]),
            findings=[
                Finding(str(r[0]), int(r[1]), int(r[2]), str(r[3]), str(r[4]))
                for r in raw["findings"]
            ],
            suppressed=int(raw["suppressed"]),
            summary=(
                None if summary_raw is None else ModuleSummary.from_json(summary_raw)
            ),
        )


class LintCache:
    """Content-hash keyed store of per-file lint results."""

    def __init__(self, path: str, signature: str) -> None:
        self.path = path
        self.signature = signature
        self._entries: Dict[str, CacheEntry] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return  # missing or corrupt: start cold
        if not isinstance(document, dict):
            return
        if document.get("version") != CACHE_VERSION:
            return
        if document.get("signature") != self.signature:
            return  # rules or engine changed: every entry is stale
        files = document.get("files")
        if not isinstance(files, dict):
            return
        for real_path, raw in files.items():
            try:
                self._entries[str(real_path)] = CacheEntry.from_json(raw)
            except (KeyError, ValueError, TypeError, IndexError):
                continue  # skip individually corrupt entries

    def get(self, real_path: str, sha256: str) -> Optional[CacheEntry]:
        entry = self._entries.get(real_path)
        if entry is not None and entry.sha256 == sha256:
            return entry
        return None

    def put(self, real_path: str, entry: CacheEntry) -> None:
        self._entries[real_path] = entry
        self._dirty = True

    def save(self) -> None:
        """Write atomically (write-to-temp + rename) if anything changed."""
        if not self._dirty:
            return
        document = {
            "version": CACHE_VERSION,
            "signature": self.signature,
            "files": {
                real: entry.to_json() for real, entry in sorted(self._entries.items())
            },
        }
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=directory,
            prefix=os.path.basename(self.path) + ".",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(document, handle, sort_keys=True)
                handle.write("\n")
            os.replace(handle.name, self.path)
        except OSError:
            try:  # best effort: a broken cache write must not fail the lint
                os.unlink(handle.name)
            except OSError:
                pass
        self._dirty = False
