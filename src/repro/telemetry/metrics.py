"""Label-aware metric primitives (counters, gauges, histograms).

The paper's headline cost numbers (Table 3) are *counts* — HTTP GETs by
category, accounts burned, throttle strikes — so the observability layer
is built around a small Prometheus-flavoured metrics model:

* a :class:`MetricsRegistry` owns named metric *families*;
* each family fans out into label-keyed *series* via :meth:`labels`;
* :func:`render_prometheus` serialises the whole registry in the
  Prometheus text exposition format for scraping or offline diffing.

Everything is plain in-process Python on the simulated pipeline — there
is no background thread and no real network; the registry is just a
structured, queryable replacement for ad-hoc ``self.count += 1`` fields.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, tuned for seconds-scale durations (polite
#: sleeps, backoff penalties, request wall time).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labelnames: Sequence[str], labels: Mapping[str, str]) -> LabelKey:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared labelnames "
            f"{sorted(labelnames)}"
        )
    return tuple((name, str(labels[name])) for name in labelnames)


class Counter:
    """A monotonically increasing series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (got {amount})")
        self.value += amount


class Gauge:
    """A series that can go up and down (e.g. usable accounts)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A bucketed distribution (cumulative buckets, Prometheus-style)."""

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.bucket_counts[bisect_left(self.buckets, value)] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


class MetricFamily:
    """A named metric plus all its label-keyed series."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if len(set(labelnames)) != len(labelnames):
            raise ValueError(f"duplicate label names in {labelnames!r}")
        self.name = name
        self.help_text = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets)
        self._series: Dict[LabelKey, object] = {}

    def _make_series(self) -> object:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self._buckets)

    def labels(self, **labels: str):
        """The series for this exact label combination (created lazily)."""
        key = _label_key(self.labelnames, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = self._make_series()
        return series

    def series(self) -> Dict[LabelKey, object]:
        """All live series, keyed by ``((label, value), ...)`` tuples."""
        return dict(self._series)

    # Convenience aggregates -------------------------------------------
    def total(self) -> float:
        """Sum of counter/gauge values (or observation counts) across series."""
        if self.kind == "histogram":
            return float(sum(s.count for s in self._series.values()))  # type: ignore[union-attr]
        return float(sum(s.value for s in self._series.values()))  # type: ignore[union-attr]

    def series_count(self) -> int:
        return len(self._series)


class MetricsRegistry:
    """Owns every metric family of one telemetry session."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.labelnames!r}"
                )
            return existing
        family = MetricFamily(name, help_text, kind, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, help_text, "counter", labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, help_text, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, help_text, "histogram", labelnames, buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def collect(self) -> Iterable[MetricFamily]:
        return list(self._families.values())


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = [f'{name}="{_escape_label_value(value)}"' for name, value in (*key, *extra)]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Serialise every family in the Prometheus text format (0.0.4)."""
    lines: List[str] = []
    for family in registry.collect():
        if family.help_text:
            lines.append(f"# HELP {family.name} {family.help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, series in sorted(family.series().items()):
            if family.kind == "histogram":
                assert isinstance(series, Histogram)
                for bound, cum in series.cumulative():
                    labels = _format_labels(key, (("le", _format_value(bound)),))
                    lines.append(f"{family.name}_bucket{labels} {cum}")
                labels = _format_labels(key)
                lines.append(f"{family.name}_sum{labels} {_format_value(series.sum)}")
                lines.append(f"{family.name}_count{labels} {series.count}")
            else:
                assert isinstance(series, (Counter, Gauge))
                labels = _format_labels(key)
                lines.append(f"{family.name}{labels} {_format_value(series.value)}")
    return "\n".join(lines) + ("\n" if lines else "")
