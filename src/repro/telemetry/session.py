"""Crawl-session reports: the event stream folded into Table-3 shape.

A :class:`CrawlSessionReport` is a pure function of the telemetry event
stream — it can be built live from a memory sink or offline from a
replayed JSONL trace (``python -m repro trace``), and both constructions
yield an identical report.  It breaks the session down three ways:

* **per phase** (seeds → core → candidates → scoring → threshold):
  page fetches, raw GET attempts, throttles, backoff sleep, and the
  simulated seconds the phase consumed;
* **per account**: requests carried, throttles absorbed, strikes
  earned, and whether the site disabled the account (the paper's
  "accounts lost" cost);
* **per category**: the Table-3 request decomposition (seeds /
  profiles / friend_lists / other), cross-checkable against
  :class:`~repro.crawler.effort.EffortReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from .events import TelemetryEvent

_CATEGORY_ORDER = ("seeds", "profiles", "friend_lists", "other")


@dataclass
class PhaseStats:
    """What one pipeline phase cost."""

    pages: int = 0
    attempts: int = 0
    throttles: int = 0
    backoff_seconds: float = 0.0
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0


@dataclass
class AccountStats:
    """What one crawl account carried (and whether it survived)."""

    requests: int = 0
    throttles: int = 0
    strikes: int = 0
    disabled: bool = False


@dataclass
class CrawlSessionReport:
    """Per-phase / per-account / per-category breakdown of one session."""

    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    accounts: Dict[str, AccountStats] = field(default_factory=dict)
    categories: Dict[str, int] = field(default_factory=dict)
    total_requests: int = 0
    total_attempts: int = 0
    total_throttles: int = 0
    total_backoff_seconds: float = 0.0
    sim_duration_seconds: float = 0.0
    event_count: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events: Iterable[TelemetryEvent]) -> "CrawlSessionReport":
        report = cls()
        first_ts: float | None = None
        last_ts: float | None = None
        for event in events:
            report.event_count += 1
            first_ts = event.sim_ts if first_ts is None else first_ts
            last_ts = event.sim_ts
            kind = event.kind
            fields = event.fields
            if kind == "request":
                phase = report._phase(event.phase)
                phase.pages += 1
                account = report._account(fields.get("account"))
                account.requests += 1
                category = str(fields.get("category", "other"))
                report.categories[category] = report.categories.get(category, 0) + 1
                report.total_requests += 1
            elif kind == "http":
                report._phase(event.phase).attempts += 1
                report.total_attempts += 1
            elif kind == "throttle":
                phase = report._phase(event.phase)
                phase.throttles += 1
                slept = float(fields.get("slept", 0.0))
                phase.backoff_seconds += slept
                report._account(fields.get("account")).throttles += 1
                report.total_throttles += 1
                report.total_backoff_seconds += slept
            elif kind == "strike":
                account = report._account(fields.get("account"))
                account.strikes = max(account.strikes, int(fields.get("strikes", 0)))
            elif kind in ("account_disabled", "account_lost"):
                report._account(fields.get("account")).disabled = True
            elif kind == "span":
                phase = report._phase(str(fields.get("name", event.phase)))
                phase.sim_seconds += float(fields.get("sim_seconds", 0.0))
                phase.wall_seconds += float(fields.get("wall_seconds", 0.0))
        if first_ts is not None and last_ts is not None:
            report.sim_duration_seconds = last_ts - first_ts
        return report

    def _phase(self, name: str) -> PhaseStats:
        stats = self.phases.get(name)
        if stats is None:
            stats = self.phases[name] = PhaseStats()
        return stats

    def _account(self, account: object) -> AccountStats:
        key = str(account)
        stats = self.accounts.get(key)
        if stats is None:
            stats = self.accounts[key] = AccountStats()
        return stats

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------
    @property
    def accounts_used(self) -> int:
        return sum(1 for a in self.accounts.values() if a.requests > 0)

    @property
    def accounts_lost(self) -> int:
        return sum(1 for a in self.accounts.values() if a.disabled)

    def category_count(self, category: str) -> int:
        return self.categories.get(category, 0)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, title: str = "Crawl-session report") -> str:
        """The ASCII report ``python -m repro trace`` prints."""
        sections: List[str] = [title + "\n" + "=" * len(title)]

        phase_rows = [
            (
                name,
                str(stats.pages),
                str(stats.attempts),
                str(stats.throttles),
                f"{stats.backoff_seconds:.1f}",
                f"{stats.sim_seconds:.1f}",
            )
            for name, stats in self.phases.items()
        ]
        sections.append(
            _table(
                ("phase", "pages", "GETs", "throttles", "backoff s", "sim s"),
                phase_rows,
            )
        )

        account_rows = [
            (
                account,
                str(stats.requests),
                str(stats.throttles),
                str(stats.strikes),
                "lost" if stats.disabled else "ok",
            )
            for account, stats in sorted(
                self.accounts.items(), key=lambda item: _account_sort_key(item[0])
            )
        ]
        sections.append(
            _table(
                ("account", "requests", "throttles", "strikes", "status"),
                account_rows,
            )
        )

        ordered = [c for c in _CATEGORY_ORDER if c in self.categories]
        ordered += sorted(set(self.categories) - set(_CATEGORY_ORDER))
        sections.append(
            _table(
                ("category", "requests"),
                [(c, str(self.categories[c])) for c in ordered],
            )
        )

        sections.append(
            "\n".join(
                [
                    f"total requests (effort): {self.total_requests}",
                    f"raw GET attempts:        {self.total_attempts}",
                    f"throttles:               {self.total_throttles}",
                    f"backoff slept:           {self.total_backoff_seconds:.1f} s",
                    f"accounts used/lost:      {self.accounts_used}/{self.accounts_lost}",
                    f"sim crawl duration:      {self.sim_duration_seconds:.1f} s",
                    f"events:                  {self.event_count}",
                ]
            )
        )
        return "\n\n".join(sections) + "\n"


def _account_sort_key(account: str) -> Tuple[int, object]:
    try:
        return (0, int(account))
    except ValueError:
        return (1, account)


def _table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Minimal fixed-width table (first column left-, rest right-aligned)."""
    if not rows:
        rows = [tuple("-" for _ in header)]
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(header))
    ]

    def fmt(cells: Sequence[str]) -> str:
        parts = [str(cells[0]).ljust(widths[0])]
        parts += [str(cell).rjust(width) for cell, width in zip(cells[1:], widths[1:])]
        return "  ".join(parts).rstrip()

    rule = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(header), rule, *(fmt(row) for row in rows)])
