"""The per-session telemetry handle threaded through the pipeline.

One :class:`Telemetry` object accompanies one crawl session.  It bundles
the three observability primitives — a :class:`MetricsRegistry`, a
:class:`Tracer` on the session's simulated clock, and an
:class:`EventBus` with whatever sinks the caller attached — and stamps
every published event with simulated time, a sequence number, and the
currently open pipeline phase.

Instrumented components treat their telemetry reference as optional:
``None`` means observability is off and the hot path must not allocate
anything (the overhead benchmark holds instrumentation under 10% even
with the JSONL sink on; with no telemetry the cost is one ``is None``
check per call site).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.osn.clock import SimClock

from .events import EventBus, JsonlSink, MemorySink, PrometheusSink, Sink, TelemetryEvent
from .metrics import MetricsRegistry
from .tracing import NO_PHASE, Span, Tracer


class Telemetry:
    """Registry + tracer + event bus for one crawl session."""

    def __init__(
        self,
        clock: SimClock,
        sinks: Iterable[Sink] = (),
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.clock = clock
        self.registry = registry if registry is not None else MetricsRegistry()
        self.bus = EventBus(sinks)
        self.tracer = Tracer(clock, emit=self.emit)
        self._seq = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def in_memory(cls, clock: SimClock) -> "Telemetry":
        """A telemetry session whose events stay in a memory sink."""
        return cls(clock, sinks=[MemorySink()])

    @classmethod
    def to_jsonl(
        cls, clock: SimClock, path: str, keep_in_memory: bool = False
    ) -> "Telemetry":
        """A telemetry session that writes a JSONL trace on close."""
        sinks: List[Sink] = [JsonlSink(path)]
        if keep_in_memory:
            sinks.insert(0, MemorySink())
        return cls(clock, sinks=sinks)

    def add_prometheus(self, path: str) -> None:
        """Also snapshot the metrics registry to ``path`` on close."""
        self.bus.add_sink(PrometheusSink(path, self.registry))

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    @property
    def phase(self) -> str:
        """The innermost open span's name (events are attributed to it)."""
        return self.tracer.current or NO_PHASE

    def emit(self, kind: str, **fields) -> TelemetryEvent:
        """Stamp and publish one event to every sink."""
        phase = fields.pop("phase", None)
        event = TelemetryEvent(
            kind=kind,
            seq=self._seq,
            sim_ts=self.clock.seconds(),
            phase=phase if phase is not None else self.phase,
            fields=fields,
        )
        self._seq += 1
        self.bus.publish(event)
        return event

    def span(self, name: str) -> Span:
        """Open a pipeline phase; closing it emits a ``span`` event."""
        return self.tracer.span(name)

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[TelemetryEvent]:
        """Events captured by the first memory sink (empty if none)."""
        for sink in self.bus.sinks:
            if isinstance(sink, MemorySink):
                return sink.events
        return []

    @property
    def event_count(self) -> int:
        return self._seq

    def close(self) -> None:
        """Flush every sink exactly once."""
        if not self._closed:
            self._closed = True
            self.bus.close()
