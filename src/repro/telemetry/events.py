"""The telemetry event stream: one typed record per noteworthy moment.

Counters answer "how much"; events answer "what happened, in order".
Every instrumented component publishes :class:`TelemetryEvent` records
to an :class:`EventBus`, which fans them out to pluggable sinks:

* :class:`MemorySink` — keeps events in a list (tests, live reports);
* :class:`JsonlSink` — buffers JSON lines and writes them on close, so
  a crawl session can be replayed later (``python -m repro trace``);
* :class:`PrometheusSink` — ignores the event stream but snapshots the
  metrics registry to a text-exposition file on close.

Events are stamped with *simulated* time (the paper's unit of crawl
effort) plus a monotonic sequence number, so a JSONL trace replays into
exactly the report the live run produced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List

from .metrics import MetricsRegistry, render_prometheus


@dataclass(frozen=True)
class TelemetryEvent:
    """One timestamped happening in the crawl pipeline."""

    kind: str
    seq: int
    sim_ts: float
    phase: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "kind": self.kind,
            "seq": self.seq,
            "sim_ts": self.sim_ts,
            "phase": self.phase,
            **self.fields,
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TelemetryEvent":
        payload = json.loads(line)
        return cls(
            kind=payload.pop("kind"),
            seq=payload.pop("seq"),
            sim_ts=payload.pop("sim_ts"),
            phase=payload.pop("phase", "-"),
            fields=payload,
        )


class Sink:
    """Interface for event consumers attached to the bus."""

    def handle(self, event: TelemetryEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush any buffered output; called once when the session ends."""


class MemorySink(Sink):
    """Collects every event in memory (the default sink for tests)."""

    def __init__(self) -> None:
        self.events: List[TelemetryEvent] = []

    def handle(self, event: TelemetryEvent) -> None:
        self.events.append(event)


class JsonlSink(Sink):
    """Buffers events as JSON lines and writes the file on close.

    Buffering keeps the per-event cost to one ``json.dumps`` and a list
    append, so instrumentation overhead stays far below the 10% budget
    the overhead benchmark enforces.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lines: List[str] = []
        self._closed = False

    def handle(self, event: TelemetryEvent) -> None:
        self._lines.append(event.to_json())

    @property
    def event_count(self) -> int:
        return len(self._lines)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with open(self.path, "w", encoding="utf-8") as handle:
            for line in self._lines:
                handle.write(line)
                handle.write("\n")


class PrometheusSink(Sink):
    """Writes a Prometheus text-exposition snapshot of the registry on close."""

    def __init__(self, path: str, registry: MetricsRegistry) -> None:
        self.path = str(path)
        self.registry = registry

    def handle(self, event: TelemetryEvent) -> None:
        pass

    def close(self) -> None:
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(self.registry))


class EventBus:
    """Fans events out to every attached sink, in order."""

    def __init__(self, sinks: Iterable[Sink] = ()) -> None:
        self.sinks: List[Sink] = list(sinks)

    def add_sink(self, sink: Sink) -> None:
        self.sinks.append(sink)

    def publish(self, event: TelemetryEvent) -> None:
        for sink in self.sinks:
            sink.handle(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_jsonl(path: str) -> List[TelemetryEvent]:
    """Load a JSONL trace back into event records (see :mod:`.replay`)."""
    events: List[TelemetryEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TelemetryEvent.from_json(line))
    return events
