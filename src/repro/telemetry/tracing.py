"""Sim-clock-aware spans over the attack pipeline.

The paper measures crawl cost in *simulated* time (polite sleeps and
backoff penalties advance a :class:`~repro.osn.clock.SimClock`, never
the wall clock), so a span here records two durations:

* ``sim_seconds`` — how much simulated crawl time the step consumed,
  the unit Table 3's "crawl duration" is expressed in;
* ``wall_seconds`` — how long the step actually took to compute, the
  number perf work cares about.

Spans nest; the innermost open span names the pipeline *phase* that
every metric increment and event is attributed to (seeds, core,
candidates, scoring, threshold).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.osn.clock import SimClock

#: Phase label used when no span is open.
NO_PHASE = "-"


@dataclass
class SpanRecord:
    """A finished span."""

    name: str
    parent: str
    sim_start: float
    sim_end: float
    wall_seconds: float

    @property
    def sim_seconds(self) -> float:
        return self.sim_end - self.sim_start


class Span:
    """An open span; use via ``with tracer.span("seeds"):``."""

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self.tracer = tracer
        self.name = name
        self.parent = tracer.current or NO_PHASE
        self.sim_start = tracer.clock.seconds()
        self.wall_start = time.perf_counter()

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._finish(self, error=exc_type is not None)


class Tracer:
    """Tracks nested spans against a simulated clock."""

    def __init__(
        self,
        clock: SimClock,
        emit: Optional[Callable[..., None]] = None,
    ) -> None:
        self.clock = clock
        self._emit = emit
        self._stack: List[Span] = []
        self.finished: List[SpanRecord] = []

    @property
    def current(self) -> Optional[str]:
        """Name of the innermost open span, or ``None``."""
        return self._stack[-1].name if self._stack else None

    def span(self, name: str) -> Span:
        return Span(self, name)

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _finish(self, span: Span, error: bool = False) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(f"span {span.name!r} closed out of order")
        self._stack.pop()
        record = SpanRecord(
            name=span.name,
            parent=span.parent,
            sim_start=span.sim_start,
            sim_end=self.clock.seconds(),
            wall_seconds=time.perf_counter() - span.wall_start,
        )
        self.finished.append(record)
        if self._emit is not None:
            self._emit(
                "span",
                name=record.name,
                parent=record.parent,
                sim_start=record.sim_start,
                sim_seconds=record.sim_seconds,
                wall_seconds=record.wall_seconds,
                error=error,
            )
