"""Replay a JSONL trace into the same report the live session produced.

``python -m repro attack --telemetry out.jsonl`` records the session;
``python -m repro trace out.jsonl`` calls :func:`replay_report` to fold
the file back into a :class:`~repro.telemetry.session.CrawlSessionReport`.
Because the report is a pure function of the event stream, the replayed
report is *identical* to one built live from a memory sink — the
round-trip test in ``tests/test_telemetry_session.py`` asserts equality.
"""

from __future__ import annotations

from typing import List

from .events import TelemetryEvent, read_jsonl
from .session import CrawlSessionReport


def load_trace(path: str) -> List[TelemetryEvent]:
    """Read a JSONL trace written by :class:`~repro.telemetry.events.JsonlSink`."""
    return read_jsonl(path)


def replay_report(path: str) -> CrawlSessionReport:
    """Fold a JSONL trace into a crawl-session report."""
    return CrawlSessionReport.from_events(load_trace(path))
