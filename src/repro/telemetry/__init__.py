"""Observability for the attack pipeline: metrics, traces, events, reports.

The paper's central quantitative claim is *measurement effort* — HTTP
GETs, accounts burned, throttle penalties, crawl duration (Section 4.5,
Table 3).  This package turns that bookkeeping into a first-class
subsystem:

* :mod:`.metrics` — label-aware counters/gauges/histograms plus
  Prometheus text exposition;
* :mod:`.tracing` — sim-clock-aware spans (simulated crawl seconds
  alongside wall seconds);
* :mod:`.events` — the event bus and its sinks (memory, JSONL,
  Prometheus snapshot);
* :mod:`.runtime` — the :class:`Telemetry` handle threaded through the
  frontend, rate limiter, pacer, crawl client and profiler;
* :mod:`.session` / :mod:`.replay` — per-phase / per-account /
  per-category crawl-session reports, buildable live or from a trace.

Telemetry is strictly opt-in: every instrumented component accepts
``telemetry=None`` and keeps its original fast path when it is absent.
"""

from .events import (
    EventBus,
    JsonlSink,
    MemorySink,
    PrometheusSink,
    Sink,
    TelemetryEvent,
    read_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    render_prometheus,
)
from .replay import load_trace, replay_report
from .runtime import Telemetry
from .session import AccountStats, CrawlSessionReport, PhaseStats
from .tracing import NO_PHASE, Span, SpanRecord, Tracer

__all__ = [
    "AccountStats",
    "Counter",
    "CrawlSessionReport",
    "DEFAULT_BUCKETS",
    "EventBus",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricFamily",
    "MetricsRegistry",
    "NO_PHASE",
    "PhaseStats",
    "PrometheusSink",
    "Sink",
    "Span",
    "SpanRecord",
    "Telemetry",
    "TelemetryEvent",
    "Tracer",
    "load_trace",
    "read_jsonl",
    "render_prometheus",
    "replay_report",
]
