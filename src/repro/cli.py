"""Command-line interface: run the paper's experiments from a shell.

Examples
--------
::

    python -m repro attack --preset hs1 --enhanced --filtering -t 400
    python -m repro attack --preset hs1 --telemetry trace.jsonl
    python -m repro trace trace.jsonl
    python -m repro sweep --preset hs1 --thresholds 200,300,400,500
    python -m repro tables --preset facebook
    python -m repro coppaless --preset hs1
    python -m repro countermeasure --preset hs1
    python -m repro worldinfo --preset hs2
    python -m repro bench run --all
    python -m repro bench compare old-records/ benchmarks/output

Every subcommand builds the requested synthetic world (deterministic
per ``--seed``), runs the corresponding experiment through the
crawlable frontend, and prints paper-style tables/series.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.figures import (
    figure1,
    figure3,
    figure4,
    log10_gap_at_matched_coverage,
    render_figure,
)
from repro.analysis.tables import ascii_table, render_policy_table
from repro.core.api import make_client, run_attack
from repro.core.coppaless import run_natural_approach
from repro.analysis.robustness import run_across_seeds
from repro.core.countermeasures import run_countermeasure_comparison, run_countermeasure_suite
from repro.core.evaluation import (
    evaluate_full,
    natural_approach_points,
    sweep_full,
    with_coppa_minimal_points,
)
from repro.core.profiler import ProfilerConfig
from repro.lint.cli import add_lint_arguments, run_lint
from repro.osn.policy import policy_by_name
from repro.perf.cli import add_bench_arguments, run_bench
from repro.telemetry import Telemetry, replay_report
from repro.worldgen.export import export_world_json
from repro.worldgen.presets import PRESETS, preset
from repro.worldgen.world import World, build_world


def _parse_thresholds(raw: str) -> List[int]:
    try:
        values = [int(part) for part in raw.split(",") if part]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad threshold list: {raw!r}") from None
    if not values:
        raise argparse.ArgumentTypeError("threshold list is empty")
    return values


def _add_world_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="hs1",
        help="which calibrated world to build",
    )
    parser.add_argument("--seed", type=int, default=None, help="world RNG seed")
    parser.add_argument(
        "--accounts", type=int, default=2, help="number of fake crawl accounts"
    )
    parser.add_argument(
        "--without-coppa",
        action="store_true",
        help="build the Section-7 counterfactual world (no age ban, no lying)",
    )


def _build_world_from(args: argparse.Namespace) -> World:
    config = preset(args.preset, args.seed)
    if args.without_coppa:
        config = config.without_coppa()
    return build_world(config)


def _profiler_config(args: argparse.Namespace) -> ProfilerConfig:
    return ProfilerConfig(
        threshold=args.threshold,
        enhanced=args.enhanced,
        filtering=args.filtering,
        epsilon=args.epsilon,
    )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_attack(args: argparse.Namespace) -> int:
    world = _build_world_from(args)
    telemetry = None
    if args.telemetry:
        # Sinks buffer and write on close; reject an unwritable path now
        # rather than after the whole crawl has run.
        for sink_path in filter(None, (args.telemetry, args.prometheus)):
            try:
                with open(sink_path, "w", encoding="utf-8"):
                    pass
            except OSError as exc:
                print(f"error: cannot write {sink_path!r}: {exc}", file=sys.stderr)
                return 2
        telemetry = Telemetry.to_jsonl(world.clock, args.telemetry)
        if args.prometheus:
            telemetry.add_prometheus(args.prometheus)
    result = run_attack(
        world,
        accounts=args.accounts,
        config=_profiler_config(args),
        telemetry=telemetry,
    )
    truth = world.ground_truth()
    evaluation = evaluate_full(result, truth, args.threshold)
    rows = [
        ("school", result.school.name),
        ("seeds", len(result.seeds)),
        ("core users", result.initial_core_size),
        ("extended core", result.extended_core_size),
        ("candidates", len(result.candidates)),
        ("HTTP GETs", result.effort.total),
        ("threshold t", evaluation.threshold),
        ("students found", f"{evaluation.found} ({100 * evaluation.found_fraction:.0f}%)"),
        ("correct year", f"{evaluation.correct_year} ({100 * evaluation.year_accuracy:.0f}%)"),
        (
            "false positives",
            f"{evaluation.false_positives} ({100 * evaluation.false_positive_rate:.0f}%)",
        ),
    ]
    print(ascii_table(("metric", "value"), rows, title="Attack summary"))
    if telemetry is not None:
        telemetry.close()
        print(
            f"\ntelemetry: {telemetry.event_count} events -> {args.telemetry}"
            + (f" (metrics -> {args.prometheus})" if args.prometheus else "")
        )
        print(f"replay with: python -m repro trace {args.telemetry}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    try:
        report = replay_report(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: {args.trace!r} is not a telemetry trace: {exc}", file=sys.stderr)
        return 2
    print(report.render(title=f"Crawl-session report ({args.trace})"))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    world = _build_world_from(args)
    config = _profiler_config(args)
    if config.threshold is None:
        config = ProfilerConfig(
            threshold=max(args.thresholds),
            enhanced=config.enhanced,
            filtering=config.filtering,
            epsilon=config.epsilon,
        )
    result = run_attack(world, accounts=args.accounts, config=config)
    evals = sweep_full(result, world.ground_truth(), args.thresholds)
    print(render_figure(figure1(evals, args.preset.upper())))
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    policy = policy_by_name(args.policy)
    label = "Table 1" if args.policy == "facebook" else "Table 6"
    print(
        render_policy_table(
            policy,
            f"{label}: {args.policy} - default and worst-case information "
            "available to strangers",
        )
    )
    return 0


def cmd_coppaless(args: argparse.Namespace) -> int:
    world = _build_world_from(args)
    minimal_truth = world.minimal_profile_students()
    current = world.current_year
    attack = run_attack(
        world,
        accounts=args.accounts,
        config=ProfilerConfig(
            threshold=args.threshold or 500, enhanced=True, filtering=True
        ),
    )
    natural = run_natural_approach(
        make_client(world, args.accounts),
        world.school().school_id,
        [current - 1, current - 2],
    )
    fig = figure3(
        with_coppa_minimal_points(attack, minimal_truth),
        natural_approach_points(natural, minimal_truth),
    )
    print(render_figure(fig))
    gap = log10_gap_at_matched_coverage(fig)
    if gap is not None:
        print(f"\nlog10 false-positive gap at matched coverage: {gap:.2f}")
    return 0


def cmd_countermeasure(args: argparse.Namespace) -> int:
    world = _build_world_from(args)
    report = run_countermeasure_comparison(
        world,
        accounts=args.accounts,
        config=ProfilerConfig(
            threshold=args.threshold or 500, enhanced=True, filtering=True
        ),
        thresholds=args.thresholds,
    )
    print(render_figure(figure4(report, args.preset.upper())))
    return 0


def cmd_worldinfo(args: argparse.Namespace) -> int:
    world = _build_world_from(args)
    truth = world.ground_truth()
    stats = world.network.population_stats()
    rows = [
        ("school", world.school().name),
        ("enrolled students", truth.enrolled_count),
        ("students on OSN (|M|)", truth.on_osn_count),
        ("registered-minor students", len(world.registered_minor_students())),
        ("adult-registered students", len(world.adult_registered_students())),
        ("minimal-profile students", len(world.minimal_profile_students())),
        ("total accounts", int(stats["users"])),
        ("age liars (all accounts)", int(stats["age_liars"])),
        ("friendship edges", int(stats["edges"])),
        ("mean degree", f"{stats['mean_degree']:.1f}"),
    ]
    print(ascii_table(("metric", "value"), rows, title="World summary"))
    return 0


def cmd_defences(args: argparse.Namespace) -> int:
    config = preset(args.preset, args.seed)
    if args.without_coppa:
        config = config.without_coppa()
    outcomes = run_countermeasure_suite(
        config,
        accounts=args.accounts,
        config=ProfilerConfig(
            threshold=args.threshold, enhanced=True, filtering=True
        ),
        t=args.threshold,
    )
    rows = [
        (o.name, f"{o.found_percent:.0f}%", o.false_positives, o.core_size, o.seeds)
        for o in outcomes
    ]
    print(
        ascii_table(
            ("defence", "students found", "false positives", "core", "seeds"),
            rows,
            title="Defence portfolio vs the attack",
        )
    )
    return 0


def cmd_robustness(args: argparse.Namespace) -> int:
    config = preset(args.preset, args.seed)
    summary = run_across_seeds(
        config,
        seeds=args.seeds,
        attack_config=ProfilerConfig(
            threshold=args.threshold, enhanced=True, filtering=True
        ),
        accounts=args.accounts,
        t=args.threshold,
    )
    rows = [
        (
            r.seed,
            f"{100 * r.evaluation.found_fraction:.0f}%",
            f"{100 * r.evaluation.false_positive_rate:.0f}%",
            r.core_size,
        )
        for r in summary.runs
    ]
    print(ascii_table(("seed", "coverage", "FP rate", "core"), rows))
    print("\n" + summary.describe())
    return 0


def cmd_worldgen(args: argparse.Namespace) -> int:
    from repro.colgen import TIER_NAMES, bench_worldgen, write_bench_json

    record = bench_worldgen(
        args.tier,
        seed=args.seed,
        school=args.school,
        blocks=args.blocks,
    )
    rows = [
        ("tier", record["tier"]),
        ("backend", record["backend"]),
        ("accounts", f"{record['accounts']:,}"),
        ("friendship edges", f"{record['edges']:,}"),
        ("graph materialised", record["graph_materialized"]),
        ("accounts / second", f"{record['accounts_per_second']:,.0f}"),
        ("wall seconds", f"{record['wall_seconds']:.2f}"),
        ("graph build seconds", f"{record['graph_build_seconds']:.2f}"),
        ("column bytes", f"{record['column_nbytes']:,}"),
        ("graph bytes", f"{record['graph_nbytes']:,}"),
        ("peak RSS", f"{record['peak_rss_bytes'] / 2**20:,.0f} MiB"),
    ]
    print(ascii_table(("metric", "value"), rows, title="Columnar worldgen"))
    if args.bench_out:
        write_bench_json(record, args.bench_out)
        print(f"wrote bench record to {args.bench_out}")
    return 0


def cmd_crawl(args: argparse.Namespace) -> int:
    """Concurrent school crawl through the async engine."""
    from repro.colgen import generate
    from repro.colgen.serve import (
        columnar_frontend,
        first_school_id,
        frontend_for_object_world,
        session_accounts,
    )
    from repro.crawler.accounts import AccountPool
    from repro.crawler.client import CrawlClient
    from repro.crawler.engine import CrawlPlan, CrawlScheduler
    from repro.osn.rendercache import RenderCache

    cache = RenderCache() if args.cache else None
    if args.tier:
        if args.serve != "columnar":
            print(
                "error: --tier worlds have no object representation; "
                "use --serve columnar",
                file=sys.stderr,
            )
            return 2
        columnar = generate(args.tier, seed=args.seed or 1)
        frontend = columnar_frontend(columnar, cache=cache)
        uids = session_accounts(frontend, args.accounts)
        school_id = first_school_id(frontend)
        label = f"tier={args.tier}"
        seed = columnar.seed
    else:
        world = _build_world_from(args)
        if args.serve == "columnar":
            frontend = frontend_for_object_world(world, cache=cache)
            uids = session_accounts(frontend, args.accounts)
        else:
            frontend = world.frontend
            if cache is not None:
                frontend.set_cache(cache)
            uids = world.create_attacker_accounts(args.accounts)
        school_id = world.school().school_id
        label = f"preset={args.preset}"
        seed = world.config.seed

    client = CrawlClient(frontend, AccountPool.of(uids), seed=seed)
    plan = CrawlPlan(school_id=school_id, max_profiles=args.budget)
    result = CrawlScheduler(client, plan, jobs=args.jobs).run()

    effort = result.effort
    rows = [
        ("world", f"{label} seed={seed} serve={args.serve}"),
        ("accounts", str(len(uids))),
        ("pages", str(result.pages)),
        ("sim_seconds", f"{result.sim_seconds:.1f}"),
        ("pages_per_sim_second", f"{result.pages_per_sim_second:.3f}"),
        ("seeds", str(len(result.seeds))),
        ("profiles", str(len(result.profiles))),
        ("friend_lists", str(len(result.friend_lists))),
        ("seed_requests", str(effort.seed_requests)),
        ("profile_requests", str(effort.profile_requests)),
        ("friend_list_requests", str(effort.friend_list_requests)),
    ]
    if result.cache_stats is not None:
        rows.append(
            ("cache_hit_rate", f"{result.cache_stats['hit_rate'] * 100:.1f}%")
        )
        rows.append(("cache_entries", str(int(result.cache_stats["entries"]))))
    print(ascii_table(("metric", "value"), rows, title="Concurrent crawl"))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    world = _build_world_from(args)
    export_world_json(world, args.output, include_individuals=args.full)
    print(f"wrote {'full' if args.full else 'aggregate'} snapshot to {args.output}")
    return 0


# ----------------------------------------------------------------------
# Parser assembly
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Profiling High-School Students with "
        "Facebook' (IMC 2013) on a synthetic OSN.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    attack = sub.add_parser("attack", help="run the methodology once")
    _add_world_args(attack)
    attack.add_argument("-t", "--threshold", type=int, default=None)
    attack.add_argument("--enhanced", action="store_true")
    attack.add_argument("--filtering", action="store_true")
    attack.add_argument("--epsilon", type=float, default=1.0)
    attack.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="record a JSONL crawl trace to PATH (replay with 'repro trace')",
    )
    attack.add_argument(
        "--prometheus",
        metavar="PATH",
        default=None,
        help="with --telemetry, also snapshot metrics in Prometheus text format",
    )
    attack.set_defaults(func=cmd_attack)

    trace = sub.add_parser(
        "trace", help="replay a JSONL telemetry trace into a session report"
    )
    trace.add_argument("trace", help="path to a trace written by attack --telemetry")
    trace.set_defaults(func=cmd_trace)

    sweep = sub.add_parser("sweep", help="Figure-1-style threshold sweep")
    _add_world_args(sweep)
    sweep.add_argument("-t", "--threshold", type=int, default=None)
    sweep.add_argument("--enhanced", action="store_true", default=True)
    sweep.add_argument("--filtering", action="store_true", default=True)
    sweep.add_argument("--epsilon", type=float, default=1.0)
    sweep.add_argument(
        "--thresholds", type=_parse_thresholds, default=[200, 300, 400, 500]
    )
    sweep.set_defaults(func=cmd_sweep)

    tables = sub.add_parser("tables", help="print a policy table (1 or 6)")
    tables.add_argument(
        "--policy", choices=("facebook", "googleplus"), default="facebook"
    )
    tables.set_defaults(func=cmd_tables)

    coppaless = sub.add_parser("coppaless", help="Figure-3 with/without COPPA")
    _add_world_args(coppaless)
    coppaless.add_argument("-t", "--threshold", type=int, default=None)
    coppaless.set_defaults(func=cmd_coppaless)

    counter = sub.add_parser("countermeasure", help="Figure-4 reverse lookup")
    _add_world_args(counter)
    counter.add_argument("-t", "--threshold", type=int, default=None)
    counter.add_argument(
        "--thresholds", type=_parse_thresholds, default=[200, 300, 400, 500]
    )
    counter.set_defaults(func=cmd_countermeasure)

    worldinfo = sub.add_parser("worldinfo", help="summarise a synthetic world")
    _add_world_args(worldinfo)
    worldinfo.set_defaults(func=cmd_worldinfo)

    defences = sub.add_parser("defences", help="evaluate the defence portfolio")
    _add_world_args(defences)
    defences.add_argument("-t", "--threshold", type=int, default=400)
    defences.set_defaults(func=cmd_defences)

    robustness = sub.add_parser("robustness", help="attack across several seeds")
    _add_world_args(robustness)
    robustness.add_argument("-t", "--threshold", type=int, default=400)
    robustness.add_argument(
        "--seeds", type=_parse_thresholds, default=[11, 22, 33],
        help="comma-separated world seeds",
    )
    robustness.set_defaults(func=cmd_robustness)

    crawl = sub.add_parser(
        "crawl",
        help="run the async multi-account crawl engine against one school",
    )
    _add_world_args(crawl)
    crawl.add_argument(
        "--serve",
        choices=("object", "columnar"),
        default="object",
        help="serving path: per-account objects or the columnar world",
    )
    crawl.add_argument(
        "--tier",
        choices=("smoke", "paper", "city", "metro"),
        default=None,
        help="crawl a native columnar tier instead of a preset "
        "(implies --serve columnar)",
    )
    crawl.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="cap the crawl at N profiles (and their friend lists)",
    )
    crawl.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="tie-broken wake-ups released per scheduler turn "
        "(results are identical for every value)",
    )
    crawl.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="LRU render cache on the serving side (--no-cache disables)",
    )
    crawl.set_defaults(func=cmd_crawl)

    export = sub.add_parser("export", help="export a world snapshot to JSON")
    _add_world_args(export)
    export.add_argument("-o", "--output", default="world.json")
    export.add_argument(
        "--full", action="store_true",
        help="include per-account records and the edge list",
    )
    export.set_defaults(func=cmd_export)

    worldgen = sub.add_parser(
        "worldgen",
        help="generate a columnar world at a named size tier",
    )
    worldgen.add_argument(
        "--tier",
        default="smoke",
        choices=("smoke", "paper", "city", "metro"),
        help="size tier to generate (default: smoke)",
    )
    worldgen.add_argument("--seed", type=int, default=1, help="world seed")
    worldgen.add_argument(
        "--school",
        default="hs1",
        choices=("hs1", "hs2", "hs3"),
        help="school preset for the paper tier (default: hs1)",
    )
    worldgen.add_argument(
        "--blocks",
        type=int,
        default=None,
        help="override the native tiers' block count (smaller test runs)",
    )
    worldgen.add_argument(
        "--bench-out",
        default=None,
        metavar="PATH",
        help="write the machine-readable bench record (BENCH_worldgen.json)",
    )
    worldgen.set_defaults(func=cmd_worldgen)

    bench = sub.add_parser(
        "bench",
        help="perf trajectory: run benchmarks, compare records, gate CI",
    )
    add_bench_arguments(bench)
    bench.set_defaults(func=run_bench)

    lint = sub.add_parser(
        "lint",
        help="oracle-boundary / determinism / sim-clock static checks",
    )
    add_lint_arguments(lint)
    lint.set_defaults(func=run_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
