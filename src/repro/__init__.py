"""repro - reproduction of "Profiling High-School Students with Facebook:
How Online Privacy Laws Can Actually Increase Minors' Risk"
(Dey, Ding, Ross - IMC 2013).

The live Facebook of 2012 is gone, so this package ships a complete
substitute substrate plus the paper's methodology on top of it:

* :mod:`repro.osn` - a simulated OSN: accounts with real vs. registered
  birth dates, per-field privacy, the documented Facebook/Google+ minor
  policies (Tables 1/6), people search that excludes registered minors,
  an HTML frontend and anti-crawling rate limits.
* :mod:`repro.worldgen` - calibrated synthetic populations (schools,
  churn, alumni, parents, externals) with the COPPA age-lying model.
* :mod:`repro.crawler` - the attacker's I/O: account pool, politeness,
  effort accounting, page parsing, SQLite storage.
* :mod:`repro.core` - the attack: seeds -> core set -> reverse-lookup
  scoring -> threshold selection, with the enhanced/filtering variants,
  profile extension, hidden-link inference, the without-COPPA analysis
  and the reverse-lookup countermeasure.
* :mod:`repro.analysis` - regenerate every table and figure.

Quickstart::

    from repro import build_world, hs1, run_attack, ProfilerConfig, evaluate_full

    world = build_world(hs1())
    result = run_attack(world, accounts=2,
                        config=ProfilerConfig(threshold=400, enhanced=True, filtering=True))
    print(evaluate_full(result, world.ground_truth()).found_fraction)
"""

from .core import (
    AttackResult,
    FilterConfig,
    FullEvaluation,
    HighSchoolProfiler,
    PartialEvaluation,
    ProfilerConfig,
    ScoringRule,
    build_extended_profiles,
    collect_test_users,
    evaluate_full,
    evaluate_partial,
    infer_hidden_links,
    make_client,
    run_attack,
    run_countermeasure_comparison,
    run_natural_approach,
    sweep_full,
    sweep_partial,
    table5_stats,
)
from .osn import SocialNetwork, facebook_policy, googleplus_policy
from .worldgen import World, WorldConfig, build_world, hs1, hs2, hs3, preset, tiny

__version__ = "1.0.0"

__all__ = [
    "AttackResult",
    "FilterConfig",
    "FullEvaluation",
    "HighSchoolProfiler",
    "PartialEvaluation",
    "ProfilerConfig",
    "ScoringRule",
    "SocialNetwork",
    "World",
    "WorldConfig",
    "__version__",
    "build_extended_profiles",
    "build_world",
    "collect_test_users",
    "evaluate_full",
    "evaluate_partial",
    "facebook_policy",
    "googleplus_policy",
    "hs1",
    "hs2",
    "hs3",
    "infer_hidden_links",
    "make_client",
    "preset",
    "run_attack",
    "run_countermeasure_comparison",
    "run_natural_approach",
    "sweep_full",
    "sweep_partial",
    "table5_stats",
]
