"""Contact-vector assessment: the spear-phishing threat (paper, Section 2).

"The profiles could also be used to fuel large-scale and highly
personalized spear-phishing attacks against minors.  Messages could
automatically be generated which mention the target students' high
schools, graduation years, and friends."

This module quantifies that capability on the inferred student set —
who is *directly messageable* by a stranger (minors registered as
adults), who is reachable only by friend request (everyone) — and can
run a simulated campaign through the crawl client so the OSN's policy
is exercised end to end.  The generated text is a neutral placeholder:
we measure reachability, we do not craft lures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.crawler.client import CrawlClient

from .extension import ExtendedProfile


def compose_personalized_message(
    profile: ExtendedProfile, friend_names: List[str]
) -> str:
    """A placeholder message carrying the personalization *signals*.

    What makes the paper's scenario dangerous is not the copywriting but
    that a stranger can reference the school, class year and real
    friends; we include exactly those signals and nothing manipulative.
    """
    friends = ", ".join(friend_names[:2]) if friend_names else "your classmates"
    year = profile.inferred_year if profile.inferred_year is not None else "soon"
    return (
        f"[simulated personalized message] Hi {profile.name.split(' ')[0]} - "
        f"about {profile.school_name}, class of {year}; "
        f"mutual context: {friends}."
    )


@dataclass
class OutreachReport:
    """How contactable the inferred student body is."""

    targets: int = 0
    directly_messageable: int = 0
    messages_delivered: int = 0
    message_failures: int = 0
    friend_requests_sent: int = 0
    per_year: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def messageable_fraction(self) -> float:
        return self.directly_messageable / self.targets if self.targets else 0.0

    def record(self, year: Optional[int], messageable: bool) -> None:
        self.targets += 1
        if messageable:
            self.directly_messageable += 1
        if year is not None:
            total, ok = self.per_year.get(year, (0, 0))
            self.per_year[year] = (total + 1, ok + (1 if messageable else 0))


def assess_contactability(
    extended: Mapping[int, ExtendedProfile]
) -> OutreachReport:
    """Count who a stranger could message, from crawled views alone."""
    report = OutreachReport()
    for profile in extended.values():
        messageable = bool(profile.view and profile.view.message_button)
        report.record(profile.inferred_year, messageable)
    return report


def run_outreach_campaign(
    extended: Mapping[int, ExtendedProfile],
    client: CrawlClient,
    name_of: Optional[Mapping[int, str]] = None,
    send_messages: bool = True,
    send_friend_requests: bool = False,
) -> OutreachReport:
    """Actually exercise the contact surfaces through the frontend.

    Message sends are attempted only where the crawled view showed a
    Message button; the OSN re-checks policy on delivery, so any
    discrepancy (e.g. a stale view) shows up in ``message_failures``.
    Friend requests, if enabled, go to every target — the OSN allows
    them toward minors, which is exactly the Section-2 concern.
    """
    names = dict(name_of or {})
    report = OutreachReport()
    for uid, profile in extended.items():
        messageable = bool(profile.view and profile.view.message_button)
        report.record(profile.inferred_year, messageable)
        friend_names = [
            names[f] for f in sorted(profile.reverse_friends) if f in names
        ]
        if send_messages and messageable:
            text = compose_personalized_message(profile, friend_names)
            if client.send_message(uid, text):
                report.messages_delivered += 1
            else:
                report.message_failures += 1
        if send_friend_requests:
            if client.send_friend_request(uid):
                report.friend_requests_sent += 1
    return report
