"""Data-broker linkage: pin students to street addresses (paper, Section 2).

Given the extended high-school profiles and a purchased voter registry,
the broker matches each student's *last name + inferred city* against
registered voters to obtain candidate home addresses.  When one of the
student's recovered friends shares the student's surname and matches a
voter record — almost certainly a parent on the friend list — the
association is high-confidence: "if a parent appears in the friend
list, then the street-address association can be done with greater
certainty."

Everything here uses only attacker-visible data: names from crawled
pages and the public registry.  The evaluation helper (which *does*
look at ground truth) lives at the bottom, clearly separated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
)

from .extension import ExtendedProfile
from .oracle import GroundTruthOracle

if TYPE_CHECKING:
    from .oracle import WorldLike


class VoterRecordLike(Protocol):
    """One row of the purchased registry: a registered voter."""

    street_address: str
    city: str


class VoterFile(Protocol):
    """The data broker's purchased public-records interface.

    The paper's broker buys a voter registry — public data, so querying
    it is inside the attacker's threat model.  Structural typing keeps
    this module decoupled from the simulator's concrete
    ``repro.worldgen.records.VoterRegistry``.
    """

    def lookup(self, last_name: str, city: str) -> Sequence[VoterRecordLike]:
        """All registered voters with this surname in this city."""
        ...

    def lookup_person(
        self, first_name: str, last_name: str, city: str
    ) -> Optional[VoterRecordLike]:
        """An exact (first, last, city) match, if registered."""
        ...


class Confidence(enum.Enum):
    HIGH = "high"      # a same-surname friend (likely parent) matched
    MEDIUM = "medium"  # surname+city matched a unique household
    LOW = "low"        # surname+city matched several households


@dataclass(frozen=True)
class AddressCandidate:
    """One possible home address for a student."""

    street_address: str
    city: str
    confidence: Confidence
    matched_voters: int
    via_friend: Optional[str] = None  # the (likely parent) friend's name


def _surname(full_name: str) -> str:
    return full_name.rsplit(" ", 1)[-1]


def link_home_addresses(
    extended: Mapping[int, ExtendedProfile],
    registry: VoterFile,
    friend_name_of: Optional[Callable[[int], Optional[str]]] = None,
) -> Dict[int, List[AddressCandidate]]:
    """Match every extended profile against the voter file.

    ``friend_name_of`` resolves a friend uid to a display name (e.g.
    from crawled pages); without it only the surname+city channel runs.
    Returns uid -> candidates ordered best first.
    """
    linked: Dict[int, List[AddressCandidate]] = {}
    for uid, profile in extended.items():
        surname = _surname(profile.name)
        city = profile.inferred_city
        candidates: List[AddressCandidate] = []

        # High-confidence channel: a same-surname friend in the voter file.
        if friend_name_of is not None:
            friend_ids = (
                profile.direct_friends
                if profile.direct_friends is not None
                else sorted(profile.reverse_friends)
            )
            for friend_uid in friend_ids:
                friend_name = friend_name_of(friend_uid)
                if friend_name is None:
                    continue
                if _surname(friend_name).lower() != surname.lower():
                    continue
                record = registry.lookup_person(
                    friend_name.split(" ", 1)[0], surname, city
                )
                if record is not None:
                    candidates.append(
                        AddressCandidate(
                            street_address=record.street_address,
                            city=record.city,
                            confidence=Confidence.HIGH,
                            matched_voters=1,
                            via_friend=friend_name,
                        )
                    )

        # Fallback channel: every same-surname household in the city.
        if not candidates:
            records = registry.lookup(surname, city)
            addresses = sorted({r.street_address for r in records})
            confidence = Confidence.MEDIUM if len(addresses) == 1 else Confidence.LOW
            candidates.extend(
                AddressCandidate(
                    street_address=address,
                    city=city,
                    confidence=confidence,
                    matched_voters=len(records),
                )
                for address in addresses
            )

        if candidates:
            linked[uid] = candidates
    return linked


# ----------------------------------------------------------------------
# Evaluation (uses ground truth; never available to the broker)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LinkageEvaluation:
    """How often the broker's best candidate is the true home address."""

    students_with_known_address: int
    linked: int
    correct_best: int
    high_confidence: int
    high_confidence_correct: int

    @property
    def precision_of_best(self) -> float:
        return self.correct_best / self.linked if self.linked else 0.0

    @property
    def high_confidence_precision(self) -> float:
        return (
            self.high_confidence_correct / self.high_confidence
            if self.high_confidence
            else 0.0
        )

    @property
    def coverage(self) -> float:
        return (
            self.linked / self.students_with_known_address
            if self.students_with_known_address
            else 0.0
        )


def evaluate_linkage(
    linked: Mapping[int, List[AddressCandidate]],
    world: WorldLike,
    school_index: int = 0,
) -> LinkageEvaluation:
    """Score address links against the ground-truth households.

    Ground truth arrives through the evaluation seam
    (:class:`~repro.core.oracle.GroundTruthOracle`), never by reading
    simulator internals here.
    """
    true_address = GroundTruthOracle.coerce(world, school_index).known_addresses

    linked_known = {
        uid: candidates for uid, candidates in linked.items() if uid in true_address
    }
    correct_best = sum(
        1
        for uid, candidates in linked_known.items()
        if candidates and candidates[0].street_address == true_address[uid]
    )
    high = [
        (uid, c)
        for uid, candidates in linked_known.items()
        for c in candidates
        if c.confidence is Confidence.HIGH
    ]
    high_correct = sum(
        1 for uid, c in high if c.street_address == true_address[uid]
    )
    return LinkageEvaluation(
        students_with_known_address=len(true_address),
        linked=len(linked_known),
        correct_best=correct_best,
        high_confidence=len(high),
        high_confidence_correct=high_correct,
    )
