"""Convenience entry points tying worlds, crawlers and the profiler together.

These helpers are what the examples and benchmarks call: build a world
from a preset, point a crawl client at its frontend with N fake
accounts, and run the chosen methodology variant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.crawler.accounts import AccountPool
from repro.crawler.client import CrawlClient
from repro.crawler.politeness import PolitenessPolicy
from repro.crawler.storage import CrawlStore
from repro.telemetry.runtime import Telemetry

from .profiler import AttackResult, HighSchoolProfiler, ProfilerConfig

if TYPE_CHECKING:
    # Typing only: at runtime the world arrives as an opaque handle and
    # everything the attack sees flows through its HTML frontend.
    from repro.worldgen.world import World


def make_client(
    world: World,
    accounts: int = 2,
    politeness: Optional[PolitenessPolicy] = None,
    telemetry: Optional[Telemetry] = None,
) -> CrawlClient:
    """A crawl client with ``accounts`` fresh fake accounts on this world.

    Passing a :class:`~repro.telemetry.runtime.Telemetry` instruments
    the whole stack for this session — the world's HTML frontend and
    rate limiter included — so request spans, throttle strikes and
    effort counters all land in one registry/event stream.
    """
    pool = AccountPool.of(world.create_attacker_accounts(accounts))
    if telemetry is not None:
        world.frontend.set_telemetry(telemetry)
    return CrawlClient(world.frontend, pool, politeness, telemetry=telemetry)


def run_attack(
    world: World,
    school_index: int = 0,
    accounts: int = 2,
    config: Optional[ProfilerConfig] = None,
    politeness: Optional[PolitenessPolicy] = None,
    store: Optional[CrawlStore] = None,
    client: Optional[CrawlClient] = None,
    telemetry: Optional[Telemetry] = None,
) -> AttackResult:
    """Run the profiling methodology against one school of a world.

    Uses the school's true OSN id and a fresh client unless one is
    supplied.  Everything the attack sees flows through the HTML
    frontend; ground truth stays untouched.
    """
    if client is None:
        client = make_client(world, accounts, politeness, telemetry)
    school_id = world.school(school_index).school_id
    profiler = HighSchoolProfiler(client, school_id, config, store)
    return profiler.run()
