"""Candidate filter rules (paper, Section 4.4).

Filtering removes candidates whose public profiles mark them as likely
*former* students — transferred out or already graduated.  The paper's
four rules, each individually toggleable for the ablation bench:

1. **graduate school** — the profile lists a graduate school;
2. **different high school** — it lists high school(s), none of them
   the target;
3. **out-of-range class year** — it lists the target school with a
   graduation year outside [current, current+3];
4. **different current city** — it lists a current city other than the
   school's city.

Filtering helps at small thresholds but, as the paper observes, starts
removing true positives at large ones — the crossover the Table-4 bench
reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.osn.view import ProfileView

RULE_GRADUATE_SCHOOL = "graduate_school"
RULE_DIFFERENT_HIGH_SCHOOL = "different_high_school"
RULE_GRADUATION_YEAR = "graduation_year"
RULE_CURRENT_CITY = "current_city"

ALL_RULES = (
    RULE_GRADUATE_SCHOOL,
    RULE_DIFFERENT_HIGH_SCHOOL,
    RULE_GRADUATION_YEAR,
    RULE_CURRENT_CITY,
)


@dataclass(frozen=True)
class FilterConfig:
    """Which of the four rules are active."""

    graduate_school: bool = True
    different_high_school: bool = True
    graduation_year: bool = True
    current_city: bool = True

    @classmethod
    def none(cls) -> "FilterConfig":
        return cls(False, False, False, False)

    @classmethod
    def only(cls, rule: str) -> "FilterConfig":
        if rule not in ALL_RULES:
            raise ValueError(f"unknown filter rule {rule!r}")
        return cls(**{r.replace("-", "_"): (r == rule) for r in ALL_RULES})

    def enabled_rules(self) -> Tuple[str, ...]:
        flags = {
            RULE_GRADUATE_SCHOOL: self.graduate_school,
            RULE_DIFFERENT_HIGH_SCHOOL: self.different_high_school,
            RULE_GRADUATION_YEAR: self.graduation_year,
            RULE_CURRENT_CITY: self.current_city,
        }
        return tuple(rule for rule, on in flags.items() if on)


def filter_reason(
    view: ProfileView,
    school_id: int,
    school_city: str,
    current_year: int,
    config: FilterConfig = FilterConfig(),
    horizon_years: int = 4,
) -> Optional[str]:
    """The first rule that eliminates this candidate, or ``None``.

    Rules only ever *remove* candidates based on positive profile
    evidence; an empty (minimal) profile is never filtered.
    """
    if config.graduate_school and view.graduate_school is not None:
        return RULE_GRADUATE_SCHOOL

    target = next((a for a in view.high_schools if a.school_id == school_id), None)
    if config.different_high_school and view.high_schools and target is None:
        return RULE_DIFFERENT_HIGH_SCHOOL

    if (
        config.graduation_year
        and target is not None
        and target.graduation_year is not None
        and not (current_year <= target.graduation_year <= current_year + horizon_years - 1)
    ):
        return RULE_GRADUATION_YEAR

    if (
        config.current_city
        and view.current_city is not None
        and view.current_city != school_city
    ):
        return RULE_CURRENT_CITY

    return None


def apply_filters(
    profiles: Mapping[int, ProfileView],
    school_id: int,
    school_city: str,
    current_year: int,
    config: FilterConfig = FilterConfig(),
) -> Dict[int, str]:
    """uid -> eliminating rule, for every filtered candidate."""
    eliminated: Dict[int, str] = {}
    for uid, view in profiles.items():
        reason = filter_reason(view, school_id, school_city, current_year, config)
        if reason is not None:
            eliminated[uid] = reason
    return eliminated
