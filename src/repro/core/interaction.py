"""Interaction-graph scoring (the paper's suggested optimization).

Section 4.3: "It is also possible to ... use interaction graphs [26],
or consider the evolution of the activity between users [25] to
optimize the results."  This module implements that suggestion on the
observable surface our OSN exposes: wall posts on public profiles carry
author ids, so the attacker can count *interactions* between candidates
and core users, not just friendships.

A candidate who merely appears in a core user's friend list might be a
distant acquaintance; one who also posts on core users' walls is almost
certainly a schoolmate.  The combined score multiplies the paper's x(u)
by an interaction boost:

    x'(u) = x(u) * (1 + alpha * log(1 + I(u)))

where I(u) is the number of wall posts by u observed on core users'
profiles.  ``alpha = 0`` recovers the paper's ranking exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Set

from repro.osn.view import ProfileView

from .coreset import CoreSet
from .scoring import CandidateScore, ScoreTable, ScoringRule, score_candidates


def interaction_counts(
    core: CoreSet, profiles: Mapping[int, ProfileView]
) -> Dict[int, int]:
    """I(u): wall posts authored by u on core users' (visible) walls.

    Only the crawled profile views are consulted — the interaction graph
    is exactly what a stranger can scrape.
    """
    counts: Dict[int, int] = {}
    for core_uid in core.core:
        view = profiles.get(core_uid)
        if view is None:
            continue
        for post in view.wall_posts:
            if post.author_id != core_uid:
                counts[post.author_id] = counts.get(post.author_id, 0) + 1
    return counts


def score_with_interactions(
    core: CoreSet,
    profiles: Mapping[int, ProfileView],
    alpha: float = 0.5,
    rule: ScoringRule = ScoringRule.MAX_FRACTION,
    denominator_floor: int = 3,
) -> ScoreTable:
    """Rank candidates with the interaction-boosted score x'(u).

    Produces a :class:`ScoreTable` compatible with everything downstream
    (ranking, selection, evaluation); year assignment is unchanged —
    interactions say "schoolmate", not "which class year".
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    base = score_candidates(core, rule, denominator_floor)
    if alpha == 0:
        return base
    interactions = interaction_counts(core, profiles)
    boosted = ScoreTable(rule=rule)
    for uid, entry in base.scores.items():
        boost = 1.0 + alpha * math.log1p(interactions.get(uid, 0))
        boosted.scores[uid] = CandidateScore(
            uid=uid,
            counts=entry.counts,
            fractions=entry.fractions,
            score=entry.score * boost,
            year=entry.year,
        )
    return boosted


@dataclass(frozen=True)
class InteractionStats:
    """Summary of the observable interaction evidence."""

    core_profiles_with_walls: int
    total_posts_observed: int
    candidates_with_interactions: int

    @property
    def has_signal(self) -> bool:
        return self.candidates_with_interactions > 0


def summarize_interactions(
    core: CoreSet, profiles: Mapping[int, ProfileView]
) -> InteractionStats:
    """How much interaction evidence the crawl actually captured."""
    with_walls = sum(
        1
        for uid in core.core
        if (view := profiles.get(uid)) is not None and view.wall_posts
    )
    counts = interaction_counts(core, profiles)
    return InteractionStats(
        core_profiles_with_walls=with_walls,
        total_posts_observed=sum(counts.values()),
        candidates_with_interactions=len(counts),
    )
