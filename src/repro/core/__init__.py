"""The paper's primary contribution: the high-school profiling attack.

Seed harvesting, core-set extraction, reverse-lookup scoring, threshold
selection, the enhanced and filtering variants, profile extension,
hidden-link inference, the without-COPPA analysis and the
reverse-lookup countermeasure — plus full- and partial-ground-truth
evaluation matching the paper's Sections 4–8.
"""

from .api import make_client, run_attack
from .coppaless import NaturalApproachResult, run_natural_approach
from .coreset import CoreSet, claimed_graduation_year, extract_claims
from .countermeasures import (
    CountermeasurePoint,
    CountermeasureReport,
    DefenceOutcome,
    run_countermeasure_comparison,
    run_countermeasure_suite,
)
from .evaluation import (
    CoveragePoint,
    FullEvaluation,
    PartialEvaluation,
    collect_test_users,
    evaluate_full,
    evaluate_partial,
    natural_approach_points,
    sweep_full,
    sweep_partial,
    with_coppa_minimal_points,
)
from .extension import (
    AdultRegisteredStats,
    ExtendedProfile,
    build_extended_profiles,
    infer_birth_year,
    registered_minor_friend_average,
    table5_stats,
)
from .filtering import (
    ALL_RULES,
    FilterConfig,
    apply_filters,
    filter_reason,
)
from .age_inference import (
    AgeEstimate,
    AgeInferenceEvaluation,
    estimate_birth_years,
    evaluate_age_inference,
)
from .interaction import (
    InteractionStats,
    interaction_counts,
    score_with_interactions,
    summarize_interactions,
)
from .outreach import (
    OutreachReport,
    assess_contactability,
    compose_personalized_message,
    run_outreach_campaign,
)
from .linkage import (
    AddressCandidate,
    Confidence,
    LinkageEvaluation,
    evaluate_linkage,
    link_home_addresses,
)
from .hidden_links import (
    InferredLink,
    LinkInferenceEvaluation,
    evaluate_link_inference,
    infer_hidden_links,
    jaccard_index,
)
from .profiler import AttackResult, HighSchoolProfiler, ProfilerConfig
from .scoring import (
    CandidateScore,
    ScoreTable,
    ScoringRule,
    reverse_lookup_index,
    score_candidates,
)

__all__ = [
    "ALL_RULES",
    "AddressCandidate",
    "AgeEstimate",
    "AgeInferenceEvaluation",
    "AdultRegisteredStats",
    "AttackResult",
    "CandidateScore",
    "Confidence",
    "CoreSet",
    "CountermeasurePoint",
    "CountermeasureReport",
    "CoveragePoint",
    "DefenceOutcome",
    "ExtendedProfile",
    "FilterConfig",
    "FullEvaluation",
    "HighSchoolProfiler",
    "InferredLink",
    "InteractionStats",
    "LinkInferenceEvaluation",
    "LinkageEvaluation",
    "NaturalApproachResult",
    "OutreachReport",
    "PartialEvaluation",
    "ProfilerConfig",
    "ScoreTable",
    "ScoringRule",
    "apply_filters",
    "assess_contactability",
    "build_extended_profiles",
    "claimed_graduation_year",
    "collect_test_users",
    "compose_personalized_message",
    "estimate_birth_years",
    "evaluate_age_inference",
    "evaluate_full",
    "evaluate_link_inference",
    "evaluate_linkage",
    "evaluate_partial",
    "extract_claims",
    "filter_reason",
    "infer_birth_year",
    "infer_hidden_links",
    "interaction_counts",
    "jaccard_index",
    "link_home_addresses",
    "make_client",
    "natural_approach_points",
    "registered_minor_friend_average",
    "run_attack",
    "run_countermeasure_comparison",
    "run_countermeasure_suite",
    "run_natural_approach",
    "run_outreach_campaign",
    "score_candidates",
    "score_with_interactions",
    "summarize_interactions",
    "sweep_full",
    "sweep_partial",
    "table5_stats",
    "with_coppa_minimal_points",
]
