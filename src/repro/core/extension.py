"""Profile extension (paper, Section 6).

Once H is inferred, the third party enriches every student's profile far
beyond what Facebook displays for a registered minor:

* **inferred attributes** — current school, class year, current city
  (from the school), estimated birth year (from the class year);
* **reverse-lookup friends** — a student's school friends recovered
  from the *other* students' public friend lists, even when the
  student's own list (or whole profile) is hidden;
* **directly harvested attributes** for minors registered as adults —
  full friend lists, photos, relationship info, the Message link
  (Table 5).

``build_extended_profiles`` performs the extra crawling; ``table5_stats``
aggregates the Table-5 rows over the inferred adult-registered minors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.crawler.client import CrawlClient
from repro.osn.public import Gender
from repro.osn.view import ProfileView

from .profiler import AttackResult

#: Estimated age at high-school graduation, used to infer birth year.
ASSUMED_GRADUATION_AGE = 18


@dataclass
class ExtendedProfile:
    """The dossier the third party assembles for one inferred student."""

    user_id: int
    name: str
    gender: Optional[Gender]
    school_name: str
    inferred_year: Optional[int]
    inferred_city: str
    inferred_birth_year: Optional[int]
    appears_registered_adult: bool
    view: Optional[ProfileView]
    reverse_friends: Set[int] = field(default_factory=set)
    direct_friends: Optional[List[int]] = None

    @property
    def friend_count_known(self) -> int:
        """How many of the student's friends the attacker recovered."""
        if self.direct_friends is not None:
            return len(self.direct_friends)
        return len(self.reverse_friends)

    @property
    def school_friend_count(self) -> int:
        return len(self.reverse_friends)


def infer_birth_year(graduation_year: Optional[int]) -> Optional[int]:
    """Estimate birth year from class year (graduate at ~18)."""
    if graduation_year is None:
        return None
    return graduation_year - ASSUMED_GRADUATION_AGE


def build_extended_profiles(
    result: AttackResult,
    client: CrawlClient,
    t: Optional[int] = None,
) -> Dict[int, ExtendedProfile]:
    """Section 6's extension crawl over the inferred student set H.

    Fetches any missing profiles, downloads the friend lists of every H
    member whose list is public, and computes reverse-lookup friend sets
    for everyone — including registered minors whose own pages show
    nothing but name/photo/gender.
    """
    selection = result.select(t)
    profiles: Dict[int, ProfileView] = dict(result.profiles)
    for uid in selection:
        if uid not in profiles:
            view = client.fetch_profile(uid)
            if view is not None:
                profiles[uid] = view

    friend_lists: Dict[int, List[int]] = {
        uid: list(friends)
        for uid, friends in result.core.friend_lists.items()
        if uid in selection
    }
    for uid in selection:
        if uid in friend_lists:
            continue
        view = profiles.get(uid)
        if view is not None and view.friend_list_visible:
            entries = client.fetch_friend_list(uid)
            if entries is not None:
                friend_lists[uid] = [e.user_id for e in entries]

    members = set(selection)
    reverse: Dict[int, Set[int]] = {uid: set() for uid in members}
    for owner, friends in friend_lists.items():
        for friend in friends:
            if friend in reverse and friend != owner:
                reverse[friend].add(owner)
        # The owner's own in-school friends are also known directly.
        reverse.setdefault(owner, set()).update(f for f in friends if f in members)

    extended: Dict[int, ExtendedProfile] = {}
    for uid, year in selection.items():
        view = profiles.get(uid)
        extended[uid] = ExtendedProfile(
            user_id=uid,
            name=view.name if view else result.seeds.get(uid, f"user {uid}"),
            gender=view.gender if view else None,
            school_name=result.school.name,
            inferred_year=year,
            inferred_city=result.school.city,
            inferred_birth_year=infer_birth_year(year),
            appears_registered_adult=bool(view and not view.is_minimal()),
            view=view,
            reverse_friends=reverse.get(uid, set()),
            direct_friends=friend_lists.get(uid),
        )
    return extended


# ----------------------------------------------------------------------
# Table 5: aggregate what is exposed by minors registered as adults
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AdultRegisteredStats:
    """One column of Table 5 (plus the reverse-lookup friend average)."""

    count: int
    pct_friend_list_public: float
    avg_friends_when_public: float
    pct_public_search: float
    pct_message_link: float
    pct_relationship: float
    pct_interested_in: float
    pct_birthday: float
    avg_photos: float


def table5_stats(
    extended: Mapping[int, ExtendedProfile],
    class_years: Sequence[int],
) -> AdultRegisteredStats:
    """Aggregate Table-5 attributes over inferred adult-registered students.

    Following the paper, only students classified into the given class
    years (the first three school years) are counted, since fourth-year
    students may genuinely be adults.
    """
    years = set(class_years)
    cohort = [
        p
        for p in extended.values()
        if p.appears_registered_adult and p.inferred_year in years and p.view is not None
    ]
    if not cohort:
        return AdultRegisteredStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def pct(predicate) -> float:
        return 100.0 * sum(1 for p in cohort if predicate(p)) / len(cohort)

    public_list_sizes = [
        len(p.direct_friends) for p in cohort if p.direct_friends is not None
    ]
    return AdultRegisteredStats(
        count=len(cohort),
        pct_friend_list_public=pct(lambda p: p.view.friend_list_visible),
        avg_friends_when_public=mean(public_list_sizes) if public_list_sizes else 0.0,
        pct_public_search=pct(lambda p: p.view.public_search_listed),
        pct_message_link=pct(lambda p: p.view.message_button),
        pct_relationship=pct(lambda p: p.view.relationship_status is not None),
        pct_interested_in=pct(lambda p: p.view.interested_in is not None),
        pct_birthday=pct(lambda p: p.view.birthday_year is not None),
        avg_photos=mean(p.view.photo_count or 0 for p in cohort),
    )


def registered_minor_friend_average(
    extended: Mapping[int, ExtendedProfile],
    class_years: Sequence[int],
) -> Tuple[int, float]:
    """(count, mean reverse-lookup friends) over inferred registered minors.

    The paper reports 38/141/129 reverse-lookup friends per registered
    minor for HS1/HS2/HS3 (Section 6.1).
    """
    years = set(class_years)
    minors = [
        p
        for p in extended.values()
        if not p.appears_registered_adult and p.inferred_year in years
    ]
    if not minors:
        return 0, 0.0
    return len(minors), mean(len(p.reverse_friends) for p in minors)
