"""Evaluating attack results (paper, Sections 4.2, 5.4 and 5.5).

Two evaluation regimes, matching the paper:

* **Full ground truth** (HS1): the evaluator holds the complete student
  list by class year, so coverage |H ∩ M|/|M|, false positives |H − M|
  and year accuracy are exact.
* **Partial ground truth** (HS2/HS3): a *second*, disjoint seed crawl
  yields test users; the fraction of test users recovered in the top-t
  estimates coverage and false positives through the Section-5.5
  estimator.

It also holds the Figure-3 series builders
(:func:`with_coppa_minimal_points` / :func:`natural_approach_points`):
they compare attack output against the minimal-profile ground truth, so
they belong on this side of the oracle seam, not in the attack code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set

from repro.crawler.client import CrawlClient
from repro.osn.clock import school_class_year
from repro.worldgen.world import SchoolGroundTruth

from .coreset import extract_claims
from .profiler import AttackResult

if TYPE_CHECKING:  # runtime import would cycle: coppaless re-exports us
    from .coppaless import NaturalApproachResult


# ----------------------------------------------------------------------
# Full ground truth (HS1 regime)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FullEvaluation:
    """Exact performance numbers for one threshold t."""

    threshold: int
    selected: int               # |H| = |C'| + t
    found: int                  # |H ∩ M|
    correct_year: int           # of the found, classified in the right year
    false_positives: int        # |H - M|
    students_on_osn: int        # |M|

    @property
    def found_fraction(self) -> float:
        return self.found / self.students_on_osn if self.students_on_osn else 0.0

    @property
    def false_positive_rate(self) -> float:
        return self.false_positives / self.selected if self.selected else 0.0

    @property
    def year_accuracy(self) -> float:
        return self.correct_year / self.found if self.found else 0.0

    @property
    def found_over_correct(self) -> str:
        """Table 4's ``x/y`` cell notation."""
        return f"{self.found}/{self.correct_year}"


def evaluate_full(
    result: AttackResult,
    truth: SchoolGroundTruth,
    t: Optional[int] = None,
) -> FullEvaluation:
    """Score one selection against complete ground truth."""
    t = result.threshold if t is None else t
    selection = result.select(t)
    students = truth.all_student_uids
    found = 0
    correct = 0
    for uid, year in selection.items():
        true_year = truth.year_of_uid(uid)
        if true_year is None:
            continue
        found += 1
        if year == true_year:
            correct += 1
    return FullEvaluation(
        threshold=t,
        selected=len(selection),
        found=found,
        correct_year=correct,
        false_positives=len(selection) - found,
        students_on_osn=truth.on_osn_count,
    )


def sweep_full(
    result: AttackResult,
    truth: SchoolGroundTruth,
    thresholds: Sequence[int],
) -> List[FullEvaluation]:
    """Evaluate one crawl at several thresholds (Figure 1's sweep)."""
    return [evaluate_full(result, truth, t) for t in thresholds]


# ----------------------------------------------------------------------
# Partial ground truth (HS2/HS3 regime, Section 5.5)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PartialEvaluation:
    """Estimator outputs for one threshold t."""

    threshold: int
    test_users: int
    test_found: int                  # z_t
    estimated_students_found: float
    estimated_found_fraction: float
    estimated_false_positives: float
    estimated_false_positive_rate: float
    test_year_accuracy: float

    @property
    def found_percent(self) -> float:
        return 100.0 * self.estimated_found_fraction

    @property
    def false_positive_percent(self) -> float:
        return 100.0 * self.estimated_false_positive_rate


def collect_test_users(
    client: CrawlClient,
    school_id: int,
    exclude: Iterable[int],
    current_year: Optional[int] = None,
) -> Dict[int, int]:
    """Gather the disjoint test-user set with a *second* account pool.

    Crawls a second seed set, keeps the users who claim current
    enrolment at the target school and are not in ``exclude`` (the
    first crawl's seeds).  Returns uid -> claimed class year.
    """
    if current_year is None:
        current_year = school_class_year(client.frontend.clock.now_year)
    excluded = set(exclude)
    seeds = client.collect_seeds(school_id)
    fresh = {uid: name for uid, name in seeds.items() if uid not in excluded}
    profiles = {}
    for uid in fresh:
        view = client.fetch_profile(uid)
        if view is not None:
            profiles[uid] = view
    return extract_claims(profiles, school_id, current_year)


def evaluate_partial(
    result: AttackResult,
    test_users: Dict[int, int],
    school_size: int,
    t: Optional[int] = None,
) -> PartialEvaluation:
    """The Section-5.5 estimator from limited ground truth.

    With z_t test users recovered among the top-t, the estimated number
    of students found is

        core + (z_t / #test) * (school_size - core)

    and the estimated false positives are t minus the non-core students
    found.  ``core`` is the (extended, for the enhanced methodology)
    core-user count, since core users are students by construction.
    """
    if not test_users:
        raise ValueError("cannot evaluate with an empty test-user set")
    t = result.threshold if t is None else t
    selection = result.select(t)
    core_count = result.extended_core_size
    z = sum(1 for uid in test_users if uid in selection)
    correct = sum(
        1 for uid, year in test_users.items() if selection.get(uid) == year
    )
    fraction = z / len(test_users)
    non_core = max(school_size - core_count, 0)
    est_found = core_count + fraction * non_core
    est_fp = t - fraction * non_core
    return PartialEvaluation(
        threshold=t,
        test_users=len(test_users),
        test_found=z,
        estimated_students_found=est_found,
        estimated_found_fraction=est_found / school_size if school_size else 0.0,
        estimated_false_positives=max(est_fp, 0.0),
        estimated_false_positive_rate=(
            max(est_fp, 0.0) / (core_count + t) if (core_count + t) else 0.0
        ),
        test_year_accuracy=(correct / z) if z else 0.0,
    )


def sweep_partial(
    result: AttackResult,
    test_users: Dict[int, int],
    school_size: int,
    thresholds: Sequence[int],
) -> List[PartialEvaluation]:
    """Estimator sweep over thresholds (Figure 2's series)."""
    return [
        evaluate_partial(result, test_users, school_size, t) for t in thresholds
    ]


# ----------------------------------------------------------------------
# Figure 3: apples-to-apples comparison on minimal-profile students
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CoveragePoint:
    """One point of a Figure-3 series."""

    label: str
    found: int
    found_percent: float
    false_positives: int


def natural_approach_points(
    result: "NaturalApproachResult",
    minimal_truth: Set[int],
    ns: Sequence[int] = (1, 2, 3),
) -> List[CoveragePoint]:
    """Without-COPPA series: one point per core-friend threshold n."""
    if not minimal_truth:
        raise ValueError("minimal-profile ground truth is empty")
    points = []
    for n in ns:
        selected = result.select(n)
        found = len(selected & minimal_truth)
        points.append(
            CoveragePoint(
                label=f"n={n}",
                found=found,
                found_percent=100.0 * found / len(minimal_truth),
                false_positives=len(selected) - found,
            )
        )
    return points


def with_coppa_minimal_points(
    result: AttackResult,
    minimal_truth: Set[int],
    thresholds: Sequence[int] = (300, 400, 500),
) -> List[CoveragePoint]:
    """With-COPPA series (Section 7.2): minimal-profile users in the top-t.

    M_t is the set of top-t users (plus C′) whose crawled profile is
    minimal; z_t of them are true minimal-profile students.  Requires an
    attack run whose profile-fetch budget covered the largest t (the
    enhanced methodology with ε = 1 does for t up to the nominal
    threshold).
    """
    if not minimal_truth:
        raise ValueError("minimal-profile ground truth is empty")
    points = []
    for t in thresholds:
        selection = result.select(t)
        m_t = {
            uid
            for uid in selection
            if (view := result.profiles.get(uid)) is not None and view.is_minimal()
        }
        found = len(m_t & minimal_truth)
        points.append(
            CoveragePoint(
                label=f"t={t}",
                found=found,
                found_percent=100.0 * found / len(minimal_truth),
                false_positives=len(m_t) - found,
            )
        )
    return points
