"""Countermeasure evaluation (paper, Section 8 — and beyond).

The paper evaluates one defence, disabling reverse lookup: if a user's
friend list is hidden from a viewer, that user is also omitted from
*other people's* friend lists as shown to that viewer.  Registered
minors then vanish from reverse lookup entirely, gutting the attack
(top-500 coverage falls 92% → 33% for HS1).

The paper also notes that "designing and evaluating all combinations of
possible laws and measures is a major research problem on its own."
:func:`run_countermeasure_suite` takes a first step: it evaluates a
small portfolio of site- and law-side defences under identical attack
conditions —

* ``baseline`` — 2012 Facebook as documented;
* ``no_reverse_lookup`` — the paper's Section-8 defence;
* ``age_verification`` — a law-side fix: ages are verified, so nobody
  is mis-registered (the ban stays; truthful under-13s simply wait);
* ``tiny_search_cap`` — the site throttles people search hard, shrinking
  every seed set;
* ``no_school_search`` — the site stops returning *anyone* for school
  searches (search_result_cap 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from dataclasses import replace as dataclasses_replace

from repro.worldgen.config import WorldConfig
from repro.worldgen.world import World, build_world

from .api import make_client, run_attack
from .evaluation import FullEvaluation, evaluate_full
from .profiler import AttackResult, ProfilerConfig


@dataclass(frozen=True)
class CountermeasurePoint:
    """Coverage with and without reverse lookup at one threshold."""

    threshold: int
    found_percent_with: float
    found_percent_without: float

    @property
    def reduction(self) -> float:
        return self.found_percent_with - self.found_percent_without


@dataclass
class CountermeasureReport:
    """The Figure-4 comparison."""

    with_lookup: AttackResult
    without_lookup: AttackResult
    points: List[CountermeasurePoint]

    def max_reduction(self) -> float:
        return max((p.reduction for p in self.points), default=0.0)


def run_countermeasure_comparison(
    world: World,
    school_index: int = 0,
    accounts: int = 2,
    config: Optional[ProfilerConfig] = None,
    thresholds: Sequence[int] = (200, 250, 300, 350, 400, 450, 500),
) -> CountermeasureReport:
    """Run the attack twice, toggling the reverse-lookup defence.

    The social graph is identical in both runs; only the friend-list
    rendering changes, exactly as a site-side deployment would behave.
    """
    config = config or ProfilerConfig(enhanced=True, filtering=True)
    truth = world.ground_truth(school_index)

    original_flag = world.network.reverse_lookup_enabled
    try:
        world.network.reverse_lookup_enabled = True
        result_with = run_attack(
            world, school_index, accounts=accounts, config=config
        )
        world.network.reverse_lookup_enabled = False
        result_without = run_attack(
            world, school_index, accounts=accounts, config=config
        )
    finally:
        world.network.reverse_lookup_enabled = original_flag

    points = []
    for t in thresholds:
        eval_with = evaluate_full(result_with, truth, t)
        eval_without = evaluate_full(result_without, truth, t)
        points.append(
            CountermeasurePoint(
                threshold=t,
                found_percent_with=100.0 * eval_with.found_fraction,
                found_percent_without=100.0 * eval_without.found_fraction,
            )
        )
    return CountermeasureReport(
        with_lookup=result_with,
        without_lookup=result_without,
        points=points,
    )


# ----------------------------------------------------------------------
# The broader defence portfolio
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DefenceOutcome:
    """Attack performance under one defence."""

    name: str
    found: int
    found_percent: float
    false_positives: int
    core_size: int
    seeds: int


def _evaluate_world(
    world: World, config: ProfilerConfig, t: int, accounts: int, name: str
) -> DefenceOutcome:
    result = run_attack(world, accounts=accounts, config=config)
    truth = world.ground_truth()
    evaluation = evaluate_full(result, truth, t)
    return DefenceOutcome(
        name=name,
        found=evaluation.found,
        found_percent=100.0 * evaluation.found_fraction,
        false_positives=evaluation.false_positives,
        core_size=result.extended_core_size,
        seeds=len(result.seeds),
    )


def run_countermeasure_suite(
    world_config: WorldConfig,
    accounts: int = 2,
    config: Optional[ProfilerConfig] = None,
    t: Optional[int] = None,
    throttled_search_cap: int = 20,
) -> List[DefenceOutcome]:
    """Evaluate the defence portfolio under identical attack conditions.

    Each defence gets a fresh world from the same config/seed (so the
    populations are statistically identical) with the defence applied,
    and the same methodology/threshold is run against it.
    ``throttled_search_cap`` sizes the "tiny_search_cap" defence; its
    effectiveness depends sharply on cap relative to school size.
    """
    config = config or ProfilerConfig(enhanced=True, filtering=True)
    t = t or config.threshold or world_config.schools[0].enrollment
    outcomes: List[DefenceOutcome] = []

    base_world = build_world(world_config)
    outcomes.append(_evaluate_world(base_world, config, t, accounts, "baseline"))

    rl_world = build_world(world_config)
    rl_world.network.reverse_lookup_enabled = False
    outcomes.append(
        _evaluate_world(rl_world, config, t, accounts, "no_reverse_lookup")
    )

    verified_world = build_world(
        dataclasses_replace(
            world_config,
            lying=dataclasses_replace(world_config.lying, p_lie_if_under_13=0.0),
        )
    )
    outcomes.append(
        _evaluate_world(verified_world, config, t, accounts, "age_verification")
    )

    capped_config = dataclasses_replace(
        world_config,
        osn=dataclasses_replace(
            world_config.osn, search_result_cap=throttled_search_cap
        ),
    )
    outcomes.append(
        _evaluate_world(build_world(capped_config), config, t, accounts, "tiny_search_cap")
    )

    blocked_config = dataclasses_replace(
        world_config,
        osn=dataclasses_replace(world_config.osn, search_result_cap=0),
    )
    outcomes.append(
        _evaluate_world(
            build_world(blocked_config), config, t, accounts, "no_school_search"
        )
    )
    return outcomes
