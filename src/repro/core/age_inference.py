"""Birth-year estimation from friends (Dey et al., the paper's ref [16]).

The base attack estimates a student's birth year as
``graduation year − 18``.  The same authors' earlier work showed a
user's age can be estimated from their *friends'* ages, because
friendship networks are strongly age-assortative.  We implement both
estimators on attacker-visible data and let the evaluation compare
them against ground truth:

* **cohort estimator** — birth year = inferred class year − 18;
* **friend estimator** — the median of the implied birth years of the
  student's reverse-lookup friends (each friend's implied birth year is
  their inferred class year − 18; friends with public *registered*
  birthdays contribute those directly, lies and all — which is exactly
  the noise the attacker faces).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from .extension import ASSUMED_GRADUATION_AGE, ExtendedProfile
from .oracle import GroundTruthOracle

if TYPE_CHECKING:
    from .oracle import WorldLike


@dataclass(frozen=True)
class AgeEstimate:
    """One student's estimated birth year, with provenance."""

    user_id: int
    cohort_estimate: Optional[int]
    friend_estimate: Optional[int]
    friend_evidence: int  # how many friends contributed

    def best(self) -> Optional[int]:
        """Prefer the cohort estimate; fall back to friends."""
        return self.cohort_estimate if self.cohort_estimate is not None else self.friend_estimate


def estimate_birth_years(
    extended: Mapping[int, ExtendedProfile]
) -> Dict[int, AgeEstimate]:
    """Estimate every dossier's birth year from attacker-visible data."""
    estimates: Dict[int, AgeEstimate] = {}
    for uid, profile in extended.items():
        cohort = (
            profile.inferred_year - ASSUMED_GRADUATION_AGE
            if profile.inferred_year is not None
            else None
        )
        implied: List[int] = []
        for friend_uid in profile.reverse_friends:
            friend = extended.get(friend_uid)
            if friend is None:
                continue
            if friend.view is not None and friend.view.birthday_year is not None:
                implied.append(friend.view.birthday_year)
            elif friend.inferred_year is not None:
                implied.append(friend.inferred_year - ASSUMED_GRADUATION_AGE)
        friend_estimate = int(round(median(implied))) if implied else None
        estimates[uid] = AgeEstimate(
            user_id=uid,
            cohort_estimate=cohort,
            friend_estimate=friend_estimate,
            friend_evidence=len(implied),
        )
    return estimates


@dataclass(frozen=True)
class AgeInferenceEvaluation:
    """Accuracy of the estimators against ground-truth birth years."""

    evaluated: int
    cohort_mean_abs_error: float
    friend_mean_abs_error: float
    cohort_within_one_year: float
    friend_within_one_year: float


def evaluate_age_inference(
    estimates: Mapping[int, AgeEstimate],
    world: WorldLike,
    school_index: int = 0,
) -> AgeInferenceEvaluation:
    """Compare both estimators to real birth years (ground truth).

    Only inferred students who are *actual* students are scored — the
    estimators cannot be meaningfully right about false positives.
    Ground truth arrives through the narrow evaluation seam
    (:class:`~repro.core.oracle.GroundTruthOracle`), never by reading
    simulator internals here.
    """
    oracle = GroundTruthOracle.coerce(world, school_index)
    cohort_errors: List[float] = []
    friend_errors: List[float] = []
    for uid, estimate in estimates.items():
        real = oracle.real_birth_year(uid)
        if real is None:
            continue
        if estimate.cohort_estimate is not None:
            cohort_errors.append(abs(estimate.cohort_estimate - real))
        if estimate.friend_estimate is not None:
            friend_errors.append(abs(estimate.friend_estimate - real))
    if not cohort_errors and not friend_errors:
        return AgeInferenceEvaluation(0, 0.0, 0.0, 0.0, 0.0)

    def within_one(errors: List[float]) -> float:
        return sum(1 for e in errors if e <= 1.0) / len(errors) if errors else 0.0

    return AgeInferenceEvaluation(
        evaluated=max(len(cohort_errors), len(friend_errors)),
        cohort_mean_abs_error=mean(cohort_errors) if cohort_errors else 0.0,
        friend_mean_abs_error=mean(friend_errors) if friend_errors else 0.0,
        cohort_within_one_year=within_one(cohort_errors),
        friend_within_one_year=within_one(friend_errors),
    )
