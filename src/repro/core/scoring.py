"""Reverse lookup and candidate scoring (paper, Section 4.1 steps 4–5).

For every candidate u ∈ K the attacker computes, per class year i,

    G_i(u) = { v ∈ C_i : u ∈ F(v) }          (Eq. 1)

— *without fetching anything about u*: G_i is read off the already
crawled core friend lists ("reverse lookup").  The score is

    x(u) = max_i |G_i(u)| / |C_i|            (Eq. 2)

and the argmax year is the candidate's inferred class year.  Alternate
scoring rules (sum of fractions, raw counts) are provided for the
ablation benchmarks.

One robustness addition over the paper: a *denominator floor*.  When a
class-year core C_i is very thin (one or two users), Eq. 2 degenerates —
any single friend of that core user scores 1.0 and floods the top of
the ranking with noise.  ``denominator_floor`` (default 3) computes the
fraction as |G_i(u)| / max(|C_i|, floor); with healthy cores (the
paper's |C_i| of 4-5) it changes almost nothing, with degenerate ones
it keeps the ranking sane.  Set it to 1 for the literal Eq. 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .coreset import CoreSet


class ScoringRule(str, enum.Enum):
    """How per-year reverse-lookup evidence folds into one score."""

    MAX_FRACTION = "max_fraction"  # the paper's x(u)
    SUM_FRACTION = "sum_fraction"  # ablation: sum_i |G_i|/|C_i|
    RAW_COUNT = "raw_count"        # ablation: total core friends


@dataclass
class CandidateScore:
    """Reverse-lookup evidence for one candidate."""

    uid: int
    counts: Dict[int, int]          # year -> |G_i(u)|
    fractions: Dict[int, float]     # year -> |G_i(u)| / |C_i|
    score: float                    # x(u) under the chosen rule
    year: Optional[int]             # argmax year (None if no evidence)


@dataclass
class ScoreTable:
    """Scores for every candidate, rank-orderable."""

    scores: Dict[int, CandidateScore] = field(default_factory=dict)
    rule: ScoringRule = ScoringRule.MAX_FRACTION

    def ranked(self, exclude: Optional[Set[int]] = None) -> List[int]:
        """Candidate uids from highest to lowest score.

        Ties break on higher total core-friend count, then on uid, so
        the ordering is deterministic across runs.
        """
        exclude = exclude or set()
        return sorted(
            (uid for uid in self.scores if uid not in exclude),
            key=lambda uid: (
                -self.scores[uid].score,
                -sum(self.scores[uid].counts.values()),
                uid,
            ),
        )

    def year_of(self, uid: int) -> Optional[int]:
        entry = self.scores.get(uid)
        return entry.year if entry else None

    def __len__(self) -> int:
        return len(self.scores)

    def __contains__(self, uid: int) -> bool:
        return uid in self.scores


def reverse_lookup_index(
    friend_lists: Mapping[int, Sequence[int]]
) -> Dict[int, Set[int]]:
    """candidate uid -> set of core owners whose lists contain it."""
    index: Dict[int, Set[int]] = {}
    for owner, friends in friend_lists.items():
        for friend in friends:
            index.setdefault(friend, set()).add(owner)
    return index


def _fold(rule: ScoringRule, fractions: Dict[int, float], counts: Dict[int, int]) -> float:
    if rule is ScoringRule.MAX_FRACTION:
        return max(fractions.values(), default=0.0)
    if rule is ScoringRule.SUM_FRACTION:
        return sum(fractions.values())
    if rule is ScoringRule.RAW_COUNT:
        return float(sum(counts.values()))
    raise ValueError(f"unknown scoring rule: {rule}")


def score_candidates(
    core: CoreSet,
    rule: ScoringRule = ScoringRule.MAX_FRACTION,
    denominator_floor: int = 3,
) -> ScoreTable:
    """Score every candidate in K against the core class sets.

    The year assignment follows the paper: the class year i with the
    highest |G_i(u)|/|C_i|, ties broken toward the year with more raw
    core friends, then the earlier year.  ``denominator_floor`` guards
    against degenerate one-member year-cores (see module docstring).
    """
    if denominator_floor < 1:
        raise ValueError("denominator_floor must be at least 1")
    by_year = core.core_by_year()
    sizes = {
        year: max(len(uids), denominator_floor) if uids else 0
        for year, uids in by_year.items()
    }
    owner_year = dict(core.core)
    index = reverse_lookup_index(core.friend_lists)
    table = ScoreTable(rule=rule)

    for uid, owners in index.items():
        if uid in core.core:
            continue
        counts: Dict[int, int] = {year: 0 for year in core.years}
        for owner in owners:
            year = owner_year.get(owner)
            if year in counts:
                counts[year] += 1
        fractions = {
            year: (counts[year] / sizes[year]) if sizes.get(year) else 0.0
            for year in core.years
        }
        best_year = _argmax_year(fractions, counts)
        table.scores[uid] = CandidateScore(
            uid=uid,
            counts=counts,
            fractions=fractions,
            score=_fold(rule, fractions, counts),
            year=best_year,
        )
    return table


def _argmax_year(
    fractions: Dict[int, float], counts: Dict[int, int]
) -> Optional[int]:
    if not any(counts.values()):
        return None
    return max(fractions, key=lambda y: (fractions[y], counts[y], -y))
