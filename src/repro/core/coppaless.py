"""The without-COPPA analysis (paper, Section 7).

Two questions: in a world with no age ban (so nobody lies), (a) can a
third party still recover the student body, and (b) can it still build
rich profiles?  The paper answers with a "natural approach" heuristic —
start from *recent graduates* (young adults), collect their friends,
keep the minimal-profile ones, and require at least n friends in the
core — and an apples-to-apples comparison on minimal-profile students.

We implement:

* :func:`run_natural_approach` — the Section 7.1 heuristic, driven
  through the crawl client like every other attack;
* :func:`with_coppa_minimal_points` / :func:`natural_approach_points` —
  the two Figure-3 series (false positives, log scale, vs. percentage
  of minimal-profile ground-truth students found);
* a direct counterfactual: run the heuristic inside an actual
  without-COPPA world (``WorldConfig.without_coppa()``), something the
  paper's authors could only approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.crawler.client import CrawlClient
from repro.crawler.effort import EffortReport

from .scoring import reverse_lookup_index


@dataclass
class NaturalApproachResult:
    """Output of the Section-7.1 heuristic."""

    school_id: int
    #: recent-graduate core: uid -> listed graduation year
    core: Dict[int, int]
    candidates: Set[int]
    #: candidates whose public profile is minimal (step 3's filter)
    minimal_candidates: Set[int]
    #: candidate -> number of distinct core users whose lists contain it
    core_friend_counts: Dict[int, int]
    effort: EffortReport

    def select(self, n: int) -> Set[int]:
        """H: minimal-profile candidates with at least ``n`` core friends."""
        if n < 1:
            raise ValueError("n must be at least 1")
        return {
            uid
            for uid in self.minimal_candidates
            if self.core_friend_counts.get(uid, 0) >= n
        }


def run_natural_approach(
    client: CrawlClient,
    school_id: int,
    graduate_years: Sequence[int],
    max_candidate_profiles: Optional[int] = None,
) -> NaturalApproachResult:
    """The without-COPPA heuristic (Section 7.1, steps 1–4).

    1. search for users listing the target school with a graduation
       year in ``graduate_years`` (recent alumni / graduating adults);
       keep those with public friend lists as the core;
    2. union their friend lists into a candidate set;
    3. fetch candidate profiles, keep the minimal-profile ones;
    4. (selection by ``n`` happens in :meth:`NaturalApproachResult.select`).
    """
    wanted = set(graduate_years)
    seeds = client.collect_seeds(school_id)

    core: Dict[int, int] = {}
    friend_lists: Dict[int, List[int]] = {}
    for uid in seeds:
        view = client.fetch_profile(uid)
        if view is None:
            continue
        affiliation = next(
            (a for a in view.high_schools if a.school_id == school_id), None
        )
        if affiliation is None or affiliation.graduation_year not in wanted:
            continue
        friends = client.fetch_friend_list(uid)
        if friends is None:
            continue
        core[uid] = affiliation.graduation_year
        friend_lists[uid] = [e.user_id for e in friends]

    index = reverse_lookup_index(friend_lists)
    candidates = set(index) - set(core)

    minimal: Set[int] = set()
    to_fetch = sorted(candidates)
    if max_candidate_profiles is not None:
        to_fetch = to_fetch[:max_candidate_profiles]
    for uid in to_fetch:
        view = client.fetch_profile(uid)
        if view is not None and view.is_minimal():
            minimal.add(uid)

    return NaturalApproachResult(
        school_id=school_id,
        core=core,
        candidates=candidates,
        minimal_candidates=minimal,
        core_friend_counts={uid: len(owners) for uid, owners in index.items()},
        effort=client.effort_report(),
    )


# ----------------------------------------------------------------------
# Figure 3 scoring moved behind the oracle seam
# ----------------------------------------------------------------------

# The series builders compare attack output against minimal-profile
# ground truth, which is an *evaluator* activity: they now live in
# repro.core.evaluation.  Re-exported here for compatibility.
from .evaluation import (  # noqa: E402,F401
    CoveragePoint,
    natural_approach_points,
    with_coppa_minimal_points,
)


@dataclass(frozen=True)
class ProfileRichnessComparison:
    """Section 7.3: what a profile can contain in each world.

    With COPPA the attacker gets class year, school friends and (for
    adult-registered minors) much more; without COPPA only a
    low-confidence school guess on top of the minimal profile.
    """

    with_coppa_has_year: bool = True
    with_coppa_has_friends: bool = True
    with_coppa_messageable_fraction: float = 0.0
    without_coppa_has_year: bool = False
    without_coppa_has_friends: bool = False
    without_coppa_messageable_fraction: float = 0.0
