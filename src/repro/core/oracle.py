"""The evaluation seam: the one sanctioned window onto ground truth.

Scoring an attack requires the answers — real birth years, real home
addresses, the true student roster.  Rather than letting every
evaluation helper grope around ``World`` internals (and silently blur
the attacker/oracle boundary the paper's result depends on), this
module materialises a :class:`GroundTruthOracle`: a frozen, narrow,
read-only snapshot of exactly the facts evaluation is entitled to.

The module is allowlisted in ``repro.lint.rules.oracle`` as part of
``EVALUATION_MODULES``; everything else under ``repro.core`` and
``repro.crawler`` is refused both the ``repro.worldgen`` imports and
the ground-truth attribute reads that build one of these.  Widening
this class's API is therefore widening the oracle — review accordingly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set, Union

if TYPE_CHECKING:  # typing only: never a runtime path into the simulator
    from repro.worldgen.world import World

    #: What evaluation entry points accept: a full world or a prebuilt oracle.
    WorldLike = Union["World", "GroundTruthOracle"]


class GroundTruthOracle:
    """Read-only ground truth for one school, detached from the World.

    Holds only what scoring needs: the roster of true student account
    ids, each student's real birth year, and each student's real street
    address (when the population assigned one).
    """

    def __init__(
        self,
        student_uids: Set[int],
        birth_years: Dict[int, int],
        street_addresses: Dict[int, str],
    ) -> None:
        self._student_uids = frozenset(student_uids)
        self._birth_years = dict(birth_years)
        self._street_addresses = dict(street_addresses)

    @classmethod
    def for_world(cls, world: "World", school_index: int = 0) -> "GroundTruthOracle":
        """Snapshot one school's ground truth out of a built world."""
        truth = world.ground_truth(school_index)
        uids = truth.all_student_uids
        birth_years: Dict[int, int] = {}
        addresses: Dict[int, str] = {}
        for uid in uids:
            person_id = world.account_index.person_for(uid)
            if person_id is None:
                continue
            person = world.population.person(person_id)
            birth_years[uid] = int(person.birth_year_fraction)
            if person.street_address is not None:
                addresses[uid] = person.street_address
        return cls(uids, birth_years, addresses)

    @classmethod
    def coerce(cls, source: "WorldLike", school_index: int = 0) -> "GroundTruthOracle":
        """Accept either a prebuilt oracle or a world to snapshot."""
        if isinstance(source, cls):
            return source
        return cls.for_world(source, school_index)

    @property
    def student_uids(self) -> Set[int]:
        """Account ids of all true current students (the set M)."""
        return set(self._student_uids)

    def is_student(self, uid: int) -> bool:
        return uid in self._student_uids

    def real_birth_year(self, uid: int) -> Optional[int]:
        """The student's actual birth year, or None if unknown."""
        return self._birth_years.get(uid)

    def real_street_address(self, uid: int) -> Optional[str]:
        """The student's actual home address, or None if unknown."""
        return self._street_addresses.get(uid)

    @property
    def known_addresses(self) -> Dict[int, str]:
        """uid -> true street address for every student with one."""
        return dict(self._street_addresses)
