"""Core-set extraction (paper, Section 4.1 steps 1–3).

From the seed set S the attacker keeps the users who *self-identify* as
current students of the target school (C′, mostly minors who lied about
their age years ago) and, among those, the ones whose friend lists are
public (the core set C).  The core is split by graduation class year
C₁..C₄ — the denominator of the paper's scoring rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.osn.view import ProfileView


def claimed_graduation_year(
    view: ProfileView, school_id: int, current_year: int, horizon_years: int = 4
) -> Optional[int]:
    """The class year a profile claims at the target school, if current.

    A claim is "current" when the listed graduation year is the current
    year or up to ``horizon_years - 1`` years in the future (a four-year
    school has classes graduating in Y .. Y+3).
    """
    affiliation = view.high_schools and next(
        (a for a in view.high_schools if a.school_id == school_id), None
    )
    if not affiliation or affiliation.graduation_year is None:
        return None
    year = affiliation.graduation_year
    if current_year <= year <= current_year + horizon_years - 1:
        return year
    return None


@dataclass
class CoreSet:
    """The attacker's core users and their crawled friend lists.

    ``claimed`` is C′ (uid -> claimed class year); ``core`` is C (the
    subset with public friend lists); ``friend_lists`` holds the crawled
    list for each core user.  The class years are fixed to the four
    cohorts of the current school generation.
    """

    school_id: int
    current_year: int
    claimed: Dict[int, int] = field(default_factory=dict)
    core: Dict[int, int] = field(default_factory=dict)
    friend_lists: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def years(self) -> List[int]:
        return [self.current_year + i for i in range(4)]

    def add_claimed(self, uid: int, year: int) -> None:
        self.claimed[uid] = year

    def add_core(self, uid: int, year: int, friends: Iterable[int]) -> None:
        """Promote a claimed user to the core with their friend list."""
        self.claimed.setdefault(uid, year)
        self.core[uid] = year
        self.friend_lists[uid] = list(friends)

    def core_by_year(self) -> Dict[int, Set[int]]:
        """C_i: core user ids grouped by class year."""
        grouped: Dict[int, Set[int]] = {y: set() for y in self.years}
        for uid, year in self.core.items():
            grouped.setdefault(year, set()).add(uid)
        return grouped

    def year_sizes(self) -> Dict[int, int]:
        """|C_i| per class year."""
        return {year: len(uids) for year, uids in self.core_by_year().items()}

    def candidate_set(self) -> Set[int]:
        """K: the union of core users' friends, minus the core itself."""
        candidates: Set[int] = set()
        for friends in self.friend_lists.values():
            candidates.update(friends)
        candidates -= set(self.core)
        return candidates

    @property
    def core_size(self) -> int:
        return len(self.core)

    @property
    def claimed_size(self) -> int:
        return len(self.claimed)

    def copy(self) -> "CoreSet":
        return CoreSet(
            school_id=self.school_id,
            current_year=self.current_year,
            claimed=dict(self.claimed),
            core=dict(self.core),
            friend_lists={uid: list(fl) for uid, fl in self.friend_lists.items()},
        )


def extract_claims(
    profiles: Mapping[int, ProfileView], school_id: int, current_year: int
) -> Dict[int, int]:
    """C′ from a batch of fetched profiles: uid -> claimed class year."""
    claims: Dict[int, int] = {}
    for uid, view in profiles.items():
        year = claimed_graduation_year(view, school_id, current_year)
        if year is not None:
            claims[uid] = year
    return claims
