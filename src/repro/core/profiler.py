"""The high-school profiling attack, end to end (paper, Section 4).

:class:`HighSchoolProfiler` orchestrates the whole pipeline against a
:class:`~repro.crawler.client.CrawlClient`:

1. harvest seeds from the Find Friends Portal (multiple fake accounts);
2. fetch seed profiles, keep self-identified current students (C′);
3. crawl public friend lists of C′ — the core set C, split by year;
4. reverse lookup: score every candidate u ∈ K with
   x(u) = max_i |G_i(u)|/|C_i|;
5. optionally fetch the top t(1+ε) candidate profiles and
   * *enhanced*: promote self-identified students into the core and
     rescore (Section 4.3),
   * *filtering*: drop candidates the Section-4.4 rules eliminate;
6. rank and select: H = C′ ∪ top-t.

The returned :class:`AttackResult` carries the full ranking, so
evaluation can sweep the threshold t without recrawling — exactly how
the paper produces Table 4 and Figures 1–2 from one data set.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import ContextManager, Dict, List, Optional, Set

from repro.crawler.client import CrawlClient
from repro.osn.clock import school_class_year
from repro.crawler.effort import EffortReport
from repro.crawler.storage import CrawlStore
from repro.osn.public import School
from repro.osn.view import ProfileView

from .coreset import CoreSet, claimed_graduation_year, extract_claims
from .filtering import FilterConfig, apply_filters
from .scoring import ScoreTable, ScoringRule, score_candidates


@dataclass(frozen=True)
class ProfilerConfig:
    """Knobs for one attack run.

    ``threshold`` (t) defaults to the school's public enrollment hint —
    the paper picks t "in the vicinity of the total number of students"
    as found on Wikipedia.  ``epsilon`` sizes the extra profile fetch of
    the enhanced/filtering variants (the paper uses ε = 1 throughout).
    """

    threshold: Optional[int] = None
    epsilon: float = 1.0
    enhanced: bool = False
    filtering: bool = False
    filter_config: FilterConfig = field(default_factory=FilterConfig)
    scoring_rule: ScoringRule = ScoringRule.MAX_FRACTION
    denominator_floor: int = 3
    horizon_years: int = 4
    #: "portal" (Find Friends, the paper's default), "graph_search", or "both"
    seed_source: str = "portal"
    #: Enhancement iterations (paper does 1).  Extra rounds re-fetch the
    #: candidates that newly rose into the top t(1+eps) after rescoring;
    #: they rescue worlds whose initial core is thin in some class year.
    enhancement_rounds: int = 1
    #: Spread the t(1+eps) profile-fetch budget evenly over the four
    #: assigned class years instead of taking the global top.  Targets
    #: the thin-year failure mode: candidates of an under-represented
    #: cohort get fetched (and promoted) even though they rank low
    #: globally.  Off by default (the paper fetches the global top).
    per_year_fetch: bool = False

    @classmethod
    def basic(cls, threshold: Optional[int] = None) -> "ProfilerConfig":
        return cls(threshold=threshold)

    @classmethod
    def basic_filtered(cls, threshold: Optional[int] = None) -> "ProfilerConfig":
        return cls(threshold=threshold, filtering=True)

    @classmethod
    def enhanced_only(cls, threshold: Optional[int] = None) -> "ProfilerConfig":
        return cls(threshold=threshold, enhanced=True)

    @classmethod
    def enhanced_filtered(cls, threshold: Optional[int] = None) -> "ProfilerConfig":
        return cls(threshold=threshold, enhanced=True, filtering=True)


@dataclass
class AttackResult:
    """Everything one run of the methodology produced."""

    school: School
    config: ProfilerConfig
    current_year: int
    seeds: Dict[int, str]
    core: CoreSet
    initial_core_size: int
    initial_claimed_size: int
    candidates: Set[int]
    scores: ScoreTable
    ranking: List[int]
    filtered_out: Dict[int, str]
    profiles: Dict[int, ProfileView]
    threshold: int
    effort: EffortReport

    @property
    def extended_core_size(self) -> int:
        return self.core.core_size

    @property
    def extended_claimed_size(self) -> int:
        return self.core.claimed_size

    def select(self, t: Optional[int] = None) -> Dict[int, Optional[int]]:
        """H = C′ ∪ top-t, as uid -> inferred class year.

        Claimed users carry their self-declared year; ranked candidates
        carry the argmax reverse-lookup year.  Works for any ``t`` up to
        the ranking length, enabling post-hoc threshold sweeps.
        """
        t = self.threshold if t is None else t
        members: Dict[int, Optional[int]] = dict(self.core.claimed)
        for uid in self.ranking[:t]:
            members.setdefault(uid, self.scores.year_of(uid))
        return members

    def top_candidates(self, t: Optional[int] = None) -> List[int]:
        """The top-t ranked candidates (excluding C′)."""
        t = self.threshold if t is None else t
        return self.ranking[:t]


class HighSchoolProfiler:
    """Runs the profiling methodology through a crawl client."""

    def __init__(
        self,
        client: CrawlClient,
        school_id: int,
        config: Optional[ProfilerConfig] = None,
        store: Optional[CrawlStore] = None,
    ) -> None:
        self.client = client
        self.school_id = school_id
        self.config = config or ProfilerConfig()
        self.store = store

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def _span(self, name: str) -> ContextManager:
        """A telemetry phase span, or a no-op when observability is off."""
        telemetry = getattr(self.client, "telemetry", None)
        return telemetry.span(name) if telemetry is not None else nullcontext()

    def run(self) -> AttackResult:
        config = self.config
        with self._span("setup"):
            school = self.client.fetch_school(self.school_id)
        current_year = school_class_year(
            self.client.frontend.clock.now_year
        )
        threshold = config.threshold or school.enrollment_hint or 400

        # Step 1: seeds.
        with self._span("seeds"):
            seeds = self._collect_seeds(current_year)
        if self.store is not None:
            self.store.save_seeds(self.school_id, seeds)

        # Steps 2-3: seed profiles -> C', friend lists of C' -> core set C.
        with self._span("core"):
            profiles = self._fetch_profiles(seeds)
            claims = extract_claims(profiles, self.school_id, current_year)
            core = CoreSet(school_id=self.school_id, current_year=current_year)
            for uid, year in claims.items():
                self._try_promote(core, uid, year)
        initial_core_size = core.core_size
        initial_claimed_size = core.claimed_size

        # Steps 4-5: reverse lookup scoring.
        with self._span("scoring"):
            scores = score_candidates(
                core, config.scoring_rule, config.denominator_floor
            )

        filtered_out: Dict[int, str] = {}
        if config.enhanced or config.filtering:
            with self._span("candidates"):
                budget = int(round((1.0 + config.epsilon) * threshold))
                rounds = max(1, config.enhancement_rounds) if config.enhanced else 1
                for _ in range(rounds):
                    prelim = scores.ranked(exclude=set(core.claimed))
                    targets = self._fetch_targets(prelim, scores, budget)
                    top_views = self._fetch_profiles(
                        {uid: "" for uid in targets if uid not in profiles}
                    )
                    profiles.update(top_views)
                    if not config.enhanced:
                        break
                    promoted = self._extend_core(core, targets, profiles, current_year)
                    scores = score_candidates(
                        core, config.scoring_rule, config.denominator_floor
                    )
                    if promoted == 0:
                        break

                if config.filtering:
                    candidate_profiles = {
                        uid: view
                        for uid, view in profiles.items()
                        if uid in scores and uid not in core.claimed
                    }
                    filtered_out = apply_filters(
                        candidate_profiles,
                        self.school_id,
                        school.city,
                        current_year,
                        config.filter_config,
                    )

        with self._span("threshold"):
            ranking = [
                uid
                for uid in scores.ranked(exclude=set(core.claimed))
                if uid not in filtered_out
            ]

        if self.store is not None:
            self.store.save_profiles(profiles.values(), self.school_id)

        return AttackResult(
            school=school,
            config=config,
            current_year=current_year,
            seeds=seeds,
            core=core,
            initial_core_size=initial_core_size,
            initial_claimed_size=initial_claimed_size,
            candidates=core.candidate_set(),
            scores=scores,
            ranking=ranking,
            filtered_out=filtered_out,
            profiles=profiles,
            threshold=threshold,
            effort=self.client.effort_report(),
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _collect_seeds(self, current_year: int) -> Dict[int, str]:
        """Step 1 via the configured discovery surface(s)."""
        source = self.config.seed_source
        if source not in ("portal", "graph_search", "both"):
            raise ValueError(f"unknown seed_source: {source!r}")
        seeds: Dict[int, str] = {}
        if source in ("portal", "both"):
            seeds.update(self.client.collect_seeds(self.school_id))
        if source in ("graph_search", "both"):
            years = list(range(current_year - 8, current_year + 4))
            seeds.update(
                self.client.collect_seeds_graph_search(self.school_id, years)
            )
        return seeds

    def _fetch_targets(
        self, prelim: List[int], scores: ScoreTable, budget: int
    ) -> List[int]:
        """Which candidate profiles to download this round."""
        if not self.config.per_year_fetch:
            return prelim[:budget]
        by_year: Dict[Optional[int], List[int]] = {}
        for uid in prelim:
            by_year.setdefault(scores.year_of(uid), []).append(uid)
        share = max(1, budget // max(len(by_year), 1))
        targets: List[int] = []
        for year_uids in by_year.values():
            targets.extend(year_uids[:share])
        # Backfill any leftover budget from the global ranking.
        if len(targets) < budget:
            chosen = set(targets)
            targets.extend(
                uid for uid in prelim if uid not in chosen
            )
        return targets[:budget]

    def _fetch_profiles(self, uids: Dict[int, str]) -> Dict[int, ProfileView]:
        views: Dict[int, ProfileView] = {}
        for uid in uids:
            view = self.client.fetch_profile(uid)
            if view is not None:
                views[uid] = view
        return views

    def _try_promote(self, core: CoreSet, uid: int, year: int) -> bool:
        """Fetch a claimed user's friend list; promote to C if public."""
        friends = self.client.fetch_friend_list(uid)
        if friends is None:
            core.add_claimed(uid, year)
            return False
        core.add_core(uid, year, (e.user_id for e in friends))
        if self.store is not None:
            self.store.save_friend_list(uid, friends)
        return True

    def _extend_core(
        self,
        core: CoreSet,
        fetched_uids: List[int],
        profiles: Dict[int, ProfileView],
        current_year: int,
    ) -> int:
        """Section 4.3: promote self-identified T+ users into the core.

        Returns how many users were newly claimed (iterative rounds stop
        when a pass promotes nobody).
        """
        promoted = 0
        for uid in fetched_uids:
            view = profiles.get(uid)
            if view is None or uid in core.claimed:
                continue
            year = claimed_graduation_year(
                view, self.school_id, current_year, self.config.horizon_years
            )
            if year is not None:
                self._try_promote(core, uid, year)
                promoted += 1
        return promoted
