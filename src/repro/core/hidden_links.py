"""Hidden-friendship inference via the Jaccard index (paper, Section 6.1).

Reverse lookup never reveals a friendship between two registered
minors — neither friend list is visible.  But if Alice and Bob share
many reverse-lookup friends, they are very likely friends themselves.
The paper proposes scoring candidate pairs with

    J(A, B) = |F_A ∩ F_B| / |F_A ∪ F_B|

over the reverse-lookup friend sets, and declaring a hidden link when
J is high.  We implement the inference plus a precision/recall
evaluation against world ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple


def jaccard_index(a: Set[int], b: Set[int]) -> float:
    """|a ∩ b| / |a ∪ b| (0 for two empty sets)."""
    if not a and not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / (len(a) + len(b) - intersection)


@dataclass(frozen=True)
class InferredLink:
    """A predicted hidden friendship with its evidence."""

    pair: Tuple[int, int]
    jaccard: float
    common_friends: int


def infer_hidden_links(
    reverse_friends: Mapping[int, Set[int]],
    threshold: float = 0.2,
    min_common: int = 2,
) -> List[InferredLink]:
    """Predict hidden friendships among users with reverse-lookup sets.

    Pairs sharing at least ``min_common`` reverse-lookup friends and a
    Jaccard index of at least ``threshold`` are declared friends.  An
    inverted index over common friends keeps this near-linear in the
    number of co-occurrences rather than quadratic in users.
    """
    by_friend: Dict[int, List[int]] = {}
    for uid, friends in reverse_friends.items():
        for friend in friends:
            by_friend.setdefault(friend, []).append(uid)

    common_counts: Dict[Tuple[int, int], int] = {}
    for users in by_friend.values():
        if len(users) < 2:
            continue
        users_sorted = sorted(users)
        for a, b in combinations(users_sorted, 2):
            key = (a, b)
            common_counts[key] = common_counts.get(key, 0) + 1

    links: List[InferredLink] = []
    for (a, b), common in common_counts.items():
        if common < min_common:
            continue
        j = jaccard_index(reverse_friends[a], reverse_friends[b])
        if j >= threshold:
            links.append(InferredLink(pair=(a, b), jaccard=j, common_friends=common))
    links.sort(key=lambda l: (-l.jaccard, -l.common_friends, l.pair))
    return links


@dataclass(frozen=True)
class LinkInferenceEvaluation:
    """Precision/recall of hidden-link inference against ground truth."""

    predicted: int
    true_positives: int
    hidden_true_links: int

    @property
    def precision(self) -> float:
        return self.true_positives / self.predicted if self.predicted else 0.0

    @property
    def recall(self) -> float:
        return (
            self.true_positives / self.hidden_true_links
            if self.hidden_true_links
            else 0.0
        )

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def evaluate_link_inference(
    links: Iterable[InferredLink],
    are_friends: Callable[[int, int], bool],
    hidden_pairs: Iterable[Tuple[int, int]],
) -> LinkInferenceEvaluation:
    """Score predictions against the true graph.

    ``hidden_pairs`` is the set of *actually existing* friendships that
    reverse lookup could not see (e.g. minor–minor edges among inferred
    students); recall is measured against it.
    """
    predictions = [l.pair for l in links]
    true_positives = sum(1 for a, b in predictions if are_friends(a, b))
    hidden = {tuple(sorted(p)) for p in hidden_pairs}
    return LinkInferenceEvaluation(
        predicted=len(predictions),
        true_positives=true_positives,
        hidden_true_links=len(hidden),
    )
