"""Attack report generation: a human-readable markdown dossier.

Turns an :class:`~repro.core.profiler.AttackResult` (plus optional
evaluation, extension and outreach data) into the kind of report a
security team or policymaker would read: what was crawled, what was
inferred, how accurate it was, and what contact vectors exist.

Everything in the report is attacker-visible except the clearly marked
"ground-truth evaluation" section.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.evaluation import FullEvaluation
from repro.core.extension import ExtendedProfile
from repro.core.outreach import OutreachReport
from repro.core.profiler import AttackResult


def _heading(level: int, text: str) -> str:
    return f"{'#' * level} {text}"


def _table(headers: List[str], rows: List[List[object]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(str(c) for c in row) + " |" for row in rows)
    return "\n".join(lines)


def attack_report_markdown(
    result: AttackResult,
    evaluations: Optional[List[FullEvaluation]] = None,
    extended: Optional[Mapping[int, ExtendedProfile]] = None,
    outreach: Optional[OutreachReport] = None,
    max_sample_dossiers: int = 5,
) -> str:
    """Render a complete markdown report for one attack run."""
    sections: List[str] = []
    sections.append(_heading(1, f"High-school profiling report: {result.school.name}"))
    sections.append(
        f"Target: **{result.school.name}** ({result.school.city}); "
        f"methodology: {'enhanced' if result.config.enhanced else 'basic'}"
        f"{' with filtering' if result.config.filtering else ''}; "
        f"threshold t = {result.threshold}."
    )

    sections.append(_heading(2, "Crawl summary"))
    sections.append(
        _table(
            ["stage", "count"],
            [
                ["seeds from people search", len(result.seeds)],
                ["self-identified current students (C')", result.extended_claimed_size],
                ["core users (public friend lists)", result.extended_core_size],
                ["candidates via reverse lookup", len(result.candidates)],
                ["candidates eliminated by filters", len(result.filtered_out)],
                ["profiles downloaded", len(result.profiles)],
                ["HTTP requests total", result.effort.total],
            ],
        )
    )

    selection = result.select()
    years: Dict[Optional[int], int] = {}
    for year in selection.values():
        years[year] = years.get(year, 0) + 1
    sections.append(_heading(2, "Inferred student body"))
    sections.append(
        _table(
            ["class year", "inferred students"],
            [[y if y is not None else "unknown", n] for y, n in sorted(
                years.items(), key=lambda kv: (kv[0] is None, kv[0])
            )],
        )
    )

    if evaluations:
        sections.append(_heading(2, "Ground-truth evaluation"))
        sections.append(
            _table(
                ["top t", "found", "% of school", "correct year", "false positives"],
                [
                    [
                        e.threshold,
                        e.found,
                        f"{100 * e.found_fraction:.0f}%",
                        f"{100 * e.year_accuracy:.0f}%",
                        e.false_positives,
                    ]
                    for e in evaluations
                ],
            )
        )

    if extended:
        minors = [p for p in extended.values() if not p.appears_registered_adult]
        adults = [p for p in extended.values() if p.appears_registered_adult]
        sections.append(_heading(2, "Profile extension"))
        sections.append(
            f"Dossiers built: **{len(extended)}** "
            f"({len(minors)} registered minors, {len(adults)} registered as adults). "
            "Every dossier includes inferred school, class year, city and birth "
            "year; registered minors additionally carry reverse-lookup friend "
            "lists their privacy settings were supposed to hide."
        )
        samples = [p for p in minors if p.reverse_friends][:max_sample_dossiers]
        if samples:
            sections.append(_heading(3, "Sample dossiers (registered minors)"))
            sections.append(
                _table(
                    ["name", "class year", "inferred birth year", "school friends recovered"],
                    [
                        [p.name, p.inferred_year, p.inferred_birth_year, len(p.reverse_friends)]
                        for p in samples
                    ],
                )
            )

    if outreach:
        sections.append(_heading(2, "Contact surfaces"))
        sections.append(
            f"Of {outreach.targets} inferred students, "
            f"**{outreach.directly_messageable}** "
            f"({100 * outreach.messageable_fraction:.0f}%) can be messaged "
            "directly by a stranger; friend requests can reach all of them."
        )

    sections.append(_heading(2, "Method"))
    sections.append(
        "Seeds were harvested from people search (which excludes registered "
        "minors); the core set consists of self-identified current students — "
        "predominantly minors whose registered age is adult because they lied "
        "at sign-up to bypass the under-13 ban.  Candidates were scored by "
        "reverse lookup over core friend lists (Eq. 2 of Dey, Ding & Ross, "
        "IMC 2013) and the top-t selected."
    )
    return "\n\n".join(sections) + "\n"
