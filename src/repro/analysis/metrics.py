"""Shared metric utilities: trade-off curves and summary statistics.

The attack's operating point is a threshold on a ranking, so its
quality is best described as a *trade-off curve* — students found vs.
false positives as t sweeps — rather than any single number.  This
module builds those curves from an attack result and reduces them to
comparable scalars (area-under-curve style).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.evaluation import evaluate_full
from repro.core.profiler import AttackResult
from repro.worldgen.world import SchoolGroundTruth


@dataclass(frozen=True)
class TradeoffCurve:
    """Coverage vs. false positives over a threshold sweep.

    ``points`` are (false_positives, found) pairs in increasing-t
    order; both coordinates are monotone non-decreasing in t.
    """

    points: Tuple[Tuple[int, int], ...]
    students_on_osn: int

    def coverage_at_fp_budget(self, max_false_positives: int) -> float:
        """Best coverage achievable within a false-positive budget."""
        best = 0
        for fps, found in self.points:
            if fps <= max_false_positives:
                best = max(best, found)
        return best / self.students_on_osn if self.students_on_osn else 0.0

    def normalized_auc(self) -> float:
        """Area under coverage (y) vs FP-fraction (x), both in [0, 1].

        1.0 would mean full coverage at zero false positives; a random
        ranking scores near the candidate-set base rate.  Computed by
        trapezoid over the swept range and normalised by the x-span, so
        curves swept over the same thresholds are comparable.
        """
        if len(self.points) < 2 or self.students_on_osn == 0:
            return 0.0
        max_fp = self.points[-1][0]
        if max_fp == 0:
            return self.points[-1][1] / self.students_on_osn
        area = 0.0
        for (fp0, found0), (fp1, found1) in zip(self.points, self.points[1:]):
            width = (fp1 - fp0) / max_fp
            height = (found0 + found1) / (2.0 * self.students_on_osn)
            area += width * height
        return area

    def dominates(self, other: "TradeoffCurve") -> bool:
        """Whether this curve is at least as good everywhere (same sweep)."""
        if len(self.points) != len(other.points):
            raise ValueError("curves must come from the same threshold sweep")
        return all(
            mine_found >= theirs_found and mine_fp <= theirs_fp
            for (mine_fp, mine_found), (theirs_fp, theirs_found) in zip(
                self.points, other.points
            )
        )


def tradeoff_curve(
    result: AttackResult,
    truth: SchoolGroundTruth,
    thresholds: Optional[Sequence[int]] = None,
) -> TradeoffCurve:
    """Build the coverage/FP trade-off curve for one attack run."""
    if thresholds is None:
        top = max(len(result.ranking), 1)
        step = max(top // 20, 1)
        thresholds = list(range(step, top + 1, step))
    points: List[Tuple[int, int]] = []
    for t in thresholds:
        evaluation = evaluate_full(result, truth, t)
        points.append((evaluation.false_positives, evaluation.found))
    return TradeoffCurve(points=tuple(points), students_on_osn=truth.on_osn_count)
