"""Regenerating the paper's tables from live engine behaviour.

Tables 1 and 6 are produced by *probing the policy engine* (building
fully populated minor/adult accounts under default and worst-case
settings and rendering their stranger views), so the table is guaranteed
to describe what the simulator actually enforces.  Tables 2–5 aggregate
attack results and world statistics.

All tables render to aligned ASCII via :func:`ascii_table`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.evaluation import FullEvaluation
from repro.core.extension import AdultRegisteredStats
from repro.core.profiler import AttackResult
from repro.osn.clock import SimClock
from repro.osn.network import SocialNetwork
from repro.osn.policy import SitePolicy
from repro.osn.privacy import PrivacySettings
from repro.osn.profile import (
    Birthday,
    ContactInfo,
    Gender,
    Name,
    Profile,
    SchoolAffiliation,
    WallPost,
)
from repro.osn.view import ProfileView


# ----------------------------------------------------------------------
# Generic ASCII table rendering
# ----------------------------------------------------------------------

def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned, pipe-separated ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(row, widths))

    separator = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0]))
    lines.append(separator)
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)


def check(flag: bool) -> str:
    """The paper's checkmark convention."""
    return "x" if flag else ""


# ----------------------------------------------------------------------
# Tables 1 and 6: policy visibility matrices, probed from the engine
# ----------------------------------------------------------------------

#: (row label, predicate over the stranger's ProfileView)
_VisibilityRow = Tuple[str, Callable[[ProfileView], bool]]

FACEBOOK_ROWS: Tuple[_VisibilityRow, ...] = (
    (
        "Name, Gender, Networks, Profile Photo",
        lambda v: v.gender is not None and bool(v.networks) and v.has_profile_photo,
    ),
    (
        "HS, Relationship, Interested In",
        lambda v: bool(v.high_schools)
        and v.relationship_status is not None
        and v.interested_in is not None,
    ),
    ("Birthday", lambda v: v.birthday_year is not None),
    (
        "Hometown, Current City, Friendlist",
        lambda v: v.hometown is not None
        and v.current_city is not None
        and v.friend_list_visible,
    ),
    ("Photos", lambda v: v.photo_count is not None),
    ("Contact Information", lambda v: v.contact_email is not None),
    ("Public Search", lambda v: v.public_search_listed),
)

GOOGLEPLUS_ROWS: Tuple[_VisibilityRow, ...] = (
    ("Name, Profile Picture", lambda v: v.has_profile_photo),
    (
        "Gender, Employment, HS, Hometown, Current City",
        lambda v: v.gender is not None
        and v.employer is not None
        and bool(v.high_schools)
        and v.hometown is not None
        and v.current_city is not None,
    ),
    ("Home and Work Phone", lambda v: v.contact_phone is not None),
    (
        "Relationship, Looking",
        lambda v: v.relationship_status is not None and v.interested_in is not None,
    ),
    ("Birthday", lambda v: v.birthday_year is not None),
    ("Photos", lambda v: v.photo_count is not None),
    ("Public Search", lambda v: v.public_search_listed),
    ("In Your Circles", lambda v: v.friend_list_visible),
    ("Have You in Circles", lambda v: v.friend_list_visible),
)


def _full_profile(name: Name, school_id: int) -> Profile:
    """A profile with every field populated, to probe visibility."""
    return Profile(
        name=name,
        gender=Gender.FEMALE,
        networks=("Springfield High",),
        has_profile_photo=True,
        high_schools=(SchoolAffiliation(school_id, "Springfield High", 2014),),
        relationship_status="Single",
        interested_in="Men",
        birthday=Birthday(1996),
        hometown="Springfield",
        current_city="Springfield",
        employer="Acme Corp",
        graduate_school="State University",
        photo_count=12,
        wall_posts=[WallPost(author_id=0, text="hi")],
        contact_info=ContactInfo(email="probe@example.com", phone="555-0100"),
    )


def policy_visibility_matrix(policy: SitePolicy) -> List[Tuple[str, bool, bool, bool, bool]]:
    """(row, default minor, default adult, worst minor, worst adult) flags.

    Probes the policy engine: four fully populated accounts — a
    registered minor and a registered adult, each under the site's
    default settings and under maximum sharing — rendered as a stranger
    sees them.
    """
    clock = SimClock(now_year=2012.25)
    network = SocialNetwork(policy=policy, clock=clock)
    school = network.register_school("Springfield High", "Springfield")
    probes = {}
    specs = (
        ("default_minor", Birthday(1997), policy.default_minor_settings),
        ("default_adult", Birthday(1985), policy.default_adult_settings),
        ("worst_minor", Birthday(1997), PrivacySettings.everything_public()),
        ("worst_adult", Birthday(1985), PrivacySettings.everything_public()),
    )
    for label, birthday, settings in specs:
        account = network.register_account(
            profile=_full_profile(Name("Probe", label.title()), school.school_id),
            registered_birthday=birthday,
            settings=settings,
            enforce_minimum_age=False,
        )
        probes[label] = network.view_profile(None, account.user_id)

    rows = FACEBOOK_ROWS if policy.name == "facebook" else GOOGLEPLUS_ROWS
    return [
        (
            label,
            predicate(probes["default_minor"]),
            predicate(probes["default_adult"]),
            predicate(probes["worst_minor"]),
            predicate(probes["worst_adult"]),
        )
        for label, predicate in rows
    ]


def render_policy_table(policy: SitePolicy, title: str) -> str:
    """Tables 1 and 6: default/worst-case stranger visibility."""
    matrix = policy_visibility_matrix(policy)
    rows = [
        (label, check(dm), check(da), check(wm), check(wa))
        for label, dm, da, wm, wa in matrix
    ]
    headers = (
        "Information",
        "Default Reg. Minors",
        "Default Reg. Adults",
        "Worst-case Reg. Minors",
        "Worst-case Reg. Adults",
    )
    return ascii_table(headers, rows, title=title)


# ----------------------------------------------------------------------
# Table 2: seeds, core users and candidates per school
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DatasetRow:
    """One school's dataset summary (Table 2)."""

    school: str
    enrolled: int
    on_osn: Optional[int]
    seeds: int
    core_users: int
    candidates: int
    extended_core: int


def dataset_row(
    school_label: str,
    result: AttackResult,
    enrolled: int,
    on_osn: Optional[int] = None,
) -> DatasetRow:
    return DatasetRow(
        school=school_label,
        enrolled=enrolled,
        on_osn=on_osn,
        seeds=len(result.seeds),
        core_users=result.initial_core_size,
        candidates=len(result.candidates),
        extended_core=result.extended_core_size,
    )


def render_table2(rows: Sequence[DatasetRow]) -> str:
    headers = (
        "High school",
        "# students",
        "# on OSN",
        "# seeds",
        "# core users",
        "# candidates",
        "# extended core",
    )
    body = [
        (
            r.school,
            r.enrolled,
            r.on_osn if r.on_osn is not None else "N/A",
            r.seeds,
            r.core_users,
            r.candidates,
            r.extended_core,
        )
        for r in rows
    ]
    return ascii_table(headers, body, title="Table 2: seeds, core users, candidates")


# ----------------------------------------------------------------------
# Table 3: measurement effort
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class EffortRow:
    """One school's effort summary (Table 3)."""

    school: str
    accounts: int
    seed_requests: int
    profile_requests: int
    friend_list_requests: int
    total_basic: int
    total_enhanced: int


def effort_row(
    school_label: str, basic: AttackResult, enhanced: AttackResult
) -> EffortRow:
    b = basic.effort
    e = enhanced.effort
    return EffortRow(
        school=school_label,
        accounts=e.accounts_used,
        seed_requests=b.seed_requests,
        profile_requests=b.profile_requests,
        friend_list_requests=b.friend_list_requests,
        total_basic=b.total,
        total_enhanced=e.total,
    )


def render_table3(rows: Sequence[EffortRow]) -> str:
    headers = (
        "High school",
        "Accounts",
        "Seed reqs",
        "Profile reqs",
        "Friend-list reqs",
        "Total (basic)",
        "Total (enhanced)",
    )
    body = [
        (
            r.school,
            r.accounts,
            r.seed_requests,
            r.profile_requests,
            r.friend_list_requests,
            r.total_basic,
            r.total_enhanced,
        )
        for r in rows
    ]
    return ascii_table(headers, body, title="Table 3: measurement effort (HTTP GETs)")


# ----------------------------------------------------------------------
# Table 4: HS1 results grid
# ----------------------------------------------------------------------

def render_table4(
    evaluations: Mapping[str, Sequence[FullEvaluation]],
    thresholds: Sequence[int],
) -> str:
    """The found/correct-year grid over methodology variants and t."""
    headers = ["Methodology"] + [f"Top {t}" for t in thresholds]
    body = []
    for variant, evals in evaluations.items():
        by_t = {e.threshold: e for e in evals}
        body.append(
            [variant] + [by_t[t].found_over_correct if t in by_t else "-" for t in thresholds]
        )
    return ascii_table(headers, body, title="Table 4: results for HS1 (found/correct-year)")


# ----------------------------------------------------------------------
# Table 5: extending profiles of minors registered as adults
# ----------------------------------------------------------------------

def render_table5(stats: Mapping[str, AdultRegisteredStats]) -> str:
    schools = list(stats)
    rows = [
        ["# minors registered as adults"] + [stats[s].count for s in schools],
        ["entire friend list public"]
        + [f"{stats[s].pct_friend_list_public:.0f}%" for s in schools],
        ["avg # friends (public lists)"]
        + [f"{stats[s].avg_friends_when_public:.0f}" for s in schools],
        ["public search enabled"]
        + [f"{stats[s].pct_public_search:.0f}%" for s in schools],
        ["Message link"] + [f"{stats[s].pct_message_link:.0f}%" for s in schools],
        ["relationship info"] + [f"{stats[s].pct_relationship:.0f}%" for s in schools],
        ["interested in"] + [f"{stats[s].pct_interested_in:.0f}%" for s in schools],
        ["birthday"] + [f"{stats[s].pct_birthday:.0f}%" for s in schools],
        ["average # of photos shared"]
        + [f"{stats[s].avg_photos:.0f}" for s in schools],
    ]
    return ascii_table(
        ["Attribute"] + schools,
        rows,
        title="Table 5: extending the profile for minors registered as adults",
    )
