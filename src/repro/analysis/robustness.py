"""Multi-seed robustness: are the headline results seed-luck?

The paper ran once against live Facebook; a simulator can do better.
:func:`run_across_seeds` rebuilds the world and reruns the attack under
N different RNG seeds and summarises coverage / false-positive-rate /
year-accuracy distributions, so every headline claim can be stated with
dispersion rather than as a single draw.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from statistics import mean, pstdev
from typing import List, Optional, Sequence

from repro.core.api import run_attack
from repro.core.evaluation import FullEvaluation, evaluate_full
from repro.core.profiler import ProfilerConfig
from repro.worldgen.config import WorldConfig
from repro.worldgen.world import build_world


@dataclass(frozen=True)
class SeedRun:
    """One seed's outcome."""

    seed: int
    evaluation: FullEvaluation
    core_size: int
    candidates: int


@dataclass(frozen=True)
class RobustnessSummary:
    """Distribution of the headline metrics across seeds."""

    runs: tuple
    threshold: int

    def _values(self, getter) -> List[float]:
        return [getter(r) for r in self.runs]

    @property
    def coverage_mean(self) -> float:
        return mean(self._values(lambda r: r.evaluation.found_fraction))

    @property
    def coverage_std(self) -> float:
        return pstdev(self._values(lambda r: r.evaluation.found_fraction))

    @property
    def coverage_min(self) -> float:
        return min(self._values(lambda r: r.evaluation.found_fraction))

    @property
    def coverage_max(self) -> float:
        return max(self._values(lambda r: r.evaluation.found_fraction))

    @property
    def fp_rate_mean(self) -> float:
        return mean(self._values(lambda r: r.evaluation.false_positive_rate))

    @property
    def fp_rate_std(self) -> float:
        return pstdev(self._values(lambda r: r.evaluation.false_positive_rate))

    @property
    def year_accuracy_mean(self) -> float:
        return mean(self._values(lambda r: r.evaluation.year_accuracy))

    @property
    def core_mean(self) -> float:
        return mean(self._values(lambda r: float(r.core_size)))

    def describe(self) -> str:
        return (
            f"coverage {100 * self.coverage_mean:.0f}% "
            f"± {100 * self.coverage_std:.0f} "
            f"(min {100 * self.coverage_min:.0f}%, max {100 * self.coverage_max:.0f}%), "
            f"FP rate {100 * self.fp_rate_mean:.0f}% ± {100 * self.fp_rate_std:.0f}, "
            f"year accuracy {100 * self.year_accuracy_mean:.0f}% "
            f"over {len(self.runs)} seeds at t={self.threshold}"
        )


def run_across_seeds(
    base_config: WorldConfig,
    seeds: Sequence[int],
    attack_config: Optional[ProfilerConfig] = None,
    accounts: int = 2,
    t: Optional[int] = None,
) -> RobustnessSummary:
    """Rebuild + re-attack the same world recipe under each seed."""
    if not seeds:
        raise ValueError("need at least one seed")
    attack_config = attack_config or ProfilerConfig(enhanced=True, filtering=True)
    runs: List[SeedRun] = []
    threshold = t or attack_config.threshold or base_config.schools[0].enrollment
    for seed in seeds:
        world = build_world(replace(base_config, seed=seed))
        result = run_attack(world, accounts=accounts, config=attack_config)
        runs.append(
            SeedRun(
                seed=seed,
                evaluation=evaluate_full(result, world.ground_truth(), threshold),
                core_size=result.extended_core_size,
                candidates=len(result.candidates),
            )
        )
    return RobustnessSummary(runs=tuple(runs), threshold=threshold)
