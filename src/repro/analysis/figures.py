"""Series builders for the paper's figures, with ASCII rendering.

Each ``figureN`` helper turns attack results into the same x/y series
the paper plots; :func:`render_figure` prints them as aligned columns
(the benchmarks' output), so "regenerating Figure N" means printing the
series a plotting script would consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.evaluation import CoveragePoint
from repro.core.countermeasures import CountermeasureReport
from repro.core.evaluation import FullEvaluation, PartialEvaluation


@dataclass(frozen=True)
class Series:
    """One named line of a figure."""

    name: str
    points: Tuple[Tuple[float, float], ...]

    @classmethod
    def of(cls, name: str, points: Sequence[Tuple[float, float]]) -> "Series":
        return cls(name=name, points=tuple(points))

    def ys(self) -> List[float]:
        return [y for _, y in self.points]

    def xs(self) -> List[float]:
        return [x for x, _ in self.points]


@dataclass
class Figure:
    """A figure: shared x axis, one or more series."""

    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    log_y: bool = False

    def series_by_name(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)


def render_figure(figure: Figure, precision: int = 1) -> str:
    """Render a figure's series as aligned columns of numbers."""
    xs: List[float] = sorted({x for s in figure.series for x, _ in s.points})
    lookup: Dict[str, Dict[float, float]] = {
        s.name: dict(s.points) for s in figure.series
    }
    headers = [figure.x_label] + [s.name for s in figure.series]
    rows: List[List[str]] = []
    for x in xs:
        row = [f"{x:g}"]
        for s in figure.series:
            y = lookup[s.name].get(x)
            row.append("-" if y is None else f"{y:.{precision}f}")
        rows.append(row)
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [figure.title, f"(y: {figure.y_label}{', log scale' if figure.log_y else ''})"]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 1: HS1 coverage / false positives vs threshold
# ----------------------------------------------------------------------

def figure1(evaluations: Sequence[FullEvaluation], school_label: str = "HS1") -> Figure:
    found = Series.of(
        f"% of students found for {school_label}",
        [(e.threshold, 100.0 * e.found_fraction) for e in evaluations],
    )
    fps = Series.of(
        f"% of false positives for {school_label}",
        [(e.threshold, 100.0 * e.false_positive_rate) for e in evaluations],
    )
    return Figure(
        title=f"Figure 1: overall performance of enhanced methodology for {school_label}",
        x_label="Top t value",
        y_label="percentage",
        series=[found, fps],
    )


# ----------------------------------------------------------------------
# Figure 2: HS2/HS3 estimated coverage / false positives vs threshold
# ----------------------------------------------------------------------

def figure2(
    evaluations_by_school: Mapping[str, Sequence[PartialEvaluation]]
) -> Figure:
    series: List[Series] = []
    for school, evals in evaluations_by_school.items():
        series.append(
            Series.of(
                f"% of students found for {school}",
                [(e.threshold, e.found_percent) for e in evals],
            )
        )
        series.append(
            Series.of(
                f"% of false positives for {school}",
                [(e.threshold, e.false_positive_percent) for e in evals],
            )
        )
    return Figure(
        title="Figure 2: overall performance of enhanced methodology (partial ground truth)",
        x_label="Top t value",
        y_label="estimated percentage",
        series=series,
    )


# ----------------------------------------------------------------------
# Figure 3: false positives (log) vs % minimal-profile students found
# ----------------------------------------------------------------------

def figure3(
    with_coppa: Sequence[CoveragePoint],
    without_coppa: Sequence[CoveragePoint],
) -> Figure:
    """With- vs without-COPPA false positives at matched coverage."""
    with_series = Series.of(
        "With-COPPA",
        [(p.found_percent, float(max(p.false_positives, 1))) for p in with_coppa],
    )
    without_series = Series.of(
        "Without-COPPA",
        [(p.found_percent, float(max(p.false_positives, 1))) for p in without_coppa],
    )
    return Figure(
        title="Figure 3: false positives, with-COPPA vs without-COPPA",
        x_label="% of minimal-profile students found",
        y_label="number of false positives",
        series=[with_series, without_series],
        log_y=True,
    )


def log10_gap_at_matched_coverage(figure: Figure) -> Optional[float]:
    """Order-of-magnitude FP gap between the two Figure-3 series.

    Finds the pair of points (one per series) closest in coverage and
    returns log10(FP_without / FP_with) — the paper's headline is a gap
    of one to two orders of magnitude.
    """
    try:
        with_s = figure.series_by_name("With-COPPA")
        without_s = figure.series_by_name("Without-COPPA")
    except KeyError:
        return None
    best: Optional[Tuple[float, float, float]] = None
    for xw, yw in with_s.points:
        for xo, yo in without_s.points:
            gap = abs(xw - xo)
            if best is None or gap < best[0]:
                best = (gap, yw, yo)
    if best is None or best[1] <= 0:
        return None
    return math.log10(best[2] / best[1])


# ----------------------------------------------------------------------
# Figure 4: coverage with and without reverse lookup
# ----------------------------------------------------------------------

def figure4(report: CountermeasureReport, school_label: str = "HS1") -> Figure:
    with_series = Series.of(
        "With reverse lookup",
        [(p.threshold, p.found_percent_with) for p in report.points],
    )
    without_series = Series.of(
        "Without reverse lookup",
        [(p.threshold, p.found_percent_without) for p in report.points],
    )
    return Figure(
        title=f"Figure 4: percentage of {school_label} students found with and without reverse lookup",
        x_label="Top t value",
        y_label="% of students found",
        series=[with_series, without_series],
    )
