"""Analysis layer: regenerate every table and figure, plus attack reports."""

from .figures import (
    Figure,
    Series,
    figure1,
    figure2,
    figure3,
    figure4,
    log10_gap_at_matched_coverage,
    render_figure,
)
from .metrics import TradeoffCurve, tradeoff_curve
from .report import attack_report_markdown
from .robustness import RobustnessSummary, SeedRun, run_across_seeds
from .svg import render_figure_svg, save_figure_svg
from .tables import (
    DatasetRow,
    EffortRow,
    ascii_table,
    dataset_row,
    effort_row,
    policy_visibility_matrix,
    render_policy_table,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)

__all__ = [
    "DatasetRow",
    "EffortRow",
    "Figure",
    "RobustnessSummary",
    "SeedRun",
    "Series",
    "TradeoffCurve",
    "ascii_table",
    "attack_report_markdown",
    "dataset_row",
    "effort_row",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "log10_gap_at_matched_coverage",
    "policy_visibility_matrix",
    "render_figure",
    "render_policy_table",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_figure_svg",
    "render_table5",
    "run_across_seeds",
    "save_figure_svg",
    "tradeoff_curve",
]
