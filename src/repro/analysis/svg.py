"""SVG rendering for figures: actual plots, stdlib only.

The benchmark harness prints each figure's series as aligned numbers;
this module additionally renders them as a self-contained SVG line
chart (axes, ticks, legend, optional log-y) so "regenerate Figure N"
produces a picture a reader can compare with the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .figures import Figure, Series

#: A small qualitative palette (colour-blind friendly).
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#56B4E9", "#E69F00")


@dataclass(frozen=True)
class ChartGeometry:
    """Pixel layout of the chart area."""

    width: int = 640
    height: int = 420
    margin_left: int = 70
    margin_right: int = 20
    margin_top: int = 50
    margin_bottom: int = 90

    @property
    def plot_width(self) -> int:
        return self.width - self.margin_left - self.margin_right

    @property
    def plot_height(self) -> int:
        return self.height - self.margin_top - self.margin_bottom


def _nice_ticks(low: float, high: float, count: int = 5) -> List[float]:
    """Roughly ``count`` round-numbered ticks covering [low, high]."""
    if high <= low:
        return [low]
    span = high - low
    raw_step = span / max(count - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 2.5, 5, 10):
        step = multiple * magnitude
        if span / step <= count:
            break
    start = math.floor(low / step) * step
    ticks = []
    tick = start
    while tick <= high + step / 2:
        if tick >= low - step / 2:
            ticks.append(round(tick, 10))
        tick += step
    return ticks


def _log_ticks(low: float, high: float) -> List[float]:
    """Decade ticks for a log axis."""
    low = max(low, 1e-9)
    first = math.floor(math.log10(low))
    last = math.ceil(math.log10(max(high, low * 10)))
    return [10.0 ** e for e in range(first, last + 1)]


class SvgChartBuilder:
    """Builds one line chart from a :class:`Figure`."""

    def __init__(self, figure: Figure, geometry: Optional[ChartGeometry] = None):
        self.figure = figure
        self.geom = geometry or ChartGeometry()
        xs = [x for s in figure.series for x, _ in s.points]
        ys = [y for s in figure.series for _, y in s.points]
        if not xs:
            raise ValueError("cannot render a figure with no points")
        self.x_min, self.x_max = min(xs), max(xs)
        self.y_min, self.y_max = min(ys), max(ys)
        if figure.log_y:
            self.y_min = max(self.y_min, 1e-9)
        if self.x_min == self.x_max:
            self.x_max = self.x_min + 1
        if self.y_min == self.y_max:
            self.y_max = self.y_min + 1

    # ------------------------------------------------------------------
    # Coordinate transforms
    # ------------------------------------------------------------------
    def _x_px(self, x: float) -> float:
        frac = (x - self.x_min) / (self.x_max - self.x_min)
        return self.geom.margin_left + frac * self.geom.plot_width

    def _y_px(self, y: float) -> float:
        if self.figure.log_y:
            y = max(y, 1e-9)
            frac = (math.log10(y) - math.log10(self.y_min)) / (
                math.log10(self.y_max) - math.log10(self.y_min)
            )
        else:
            frac = (y - self.y_min) / (self.y_max - self.y_min)
        return self.geom.margin_top + (1.0 - frac) * self.geom.plot_height

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.geom.width}" '
            f'height="{self.geom.height}" viewBox="0 0 {self.geom.width} '
            f'{self.geom.height}" font-family="sans-serif">',
            f'<rect width="{self.geom.width}" height="{self.geom.height}" fill="white"/>',
            self._title(),
            self._axes(),
            self._grid_and_ticks(),
        ]
        for i, series in enumerate(self.figure.series):
            parts.append(self._series_path(series, PALETTE[i % len(PALETTE)]))
        parts.append(self._legend())
        parts.append("</svg>")
        return "\n".join(p for p in parts if p)

    def _title(self) -> str:
        return (
            f'<text x="{self.geom.width / 2}" y="24" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_esc(self.figure.title)}</text>'
        )

    def _axes(self) -> str:
        g = self.geom
        x0, y0 = g.margin_left, g.margin_top + g.plot_height
        x1 = g.margin_left + g.plot_width
        y1 = g.margin_top
        return (
            f'<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/>'
            f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>'
            f'<text x="{(x0 + x1) / 2}" y="{y0 + 36}" text-anchor="middle" '
            f'font-size="12">{_esc(self.figure.x_label)}</text>'
            f'<text x="18" y="{(y0 + y1) / 2}" text-anchor="middle" font-size="12" '
            f'transform="rotate(-90 18 {(y0 + y1) / 2})">{_esc(self.figure.y_label)}</text>'
        )

    def _grid_and_ticks(self) -> str:
        g = self.geom
        parts: List[str] = []
        for tick in _nice_ticks(self.x_min, self.x_max):
            px = self._x_px(tick)
            y0 = g.margin_top + g.plot_height
            parts.append(
                f'<line x1="{px:.1f}" y1="{y0}" x2="{px:.1f}" y2="{y0 + 5}" stroke="black"/>'
                f'<text x="{px:.1f}" y="{y0 + 18}" text-anchor="middle" '
                f'font-size="10">{tick:g}</text>'
            )
        y_ticks = (
            _log_ticks(self.y_min, self.y_max)
            if self.figure.log_y
            else _nice_ticks(self.y_min, self.y_max)
        )
        for tick in y_ticks:
            py = self._y_px(tick)
            parts.append(
                f'<line x1="{g.margin_left - 5}" y1="{py:.1f}" '
                f'x2="{g.margin_left}" y2="{py:.1f}" stroke="black"/>'
                f'<line x1="{g.margin_left}" y1="{py:.1f}" '
                f'x2="{g.margin_left + g.plot_width}" y2="{py:.1f}" '
                f'stroke="#dddddd" stroke-width="0.5"/>'
                f'<text x="{g.margin_left - 8}" y="{py + 3:.1f}" text-anchor="end" '
                f'font-size="10">{tick:g}</text>'
            )
        return "".join(parts)

    def _series_path(self, series: Series, colour: str) -> str:
        points = sorted(series.points)
        coords = " ".join(
            f"{self._x_px(x):.1f},{self._y_px(y):.1f}" for x, y in points
        )
        markers = "".join(
            f'<circle cx="{self._x_px(x):.1f}" cy="{self._y_px(y):.1f}" r="3" '
            f'fill="{colour}"/>'
            for x, y in points
        )
        return (
            f'<polyline points="{coords}" fill="none" stroke="{colour}" '
            f'stroke-width="2"/>{markers}'
        )

    def _legend(self) -> str:
        g = self.geom
        parts: List[str] = []
        y = g.height - 40
        x = g.margin_left
        for i, series in enumerate(self.figure.series):
            colour = PALETTE[i % len(PALETTE)]
            parts.append(
                f'<rect x="{x}" y="{y - 9}" width="12" height="12" fill="{colour}"/>'
                f'<text x="{x + 18}" y="{y + 1}" font-size="11">{_esc(series.name)}</text>'
            )
            y += 16
            if y > g.height - 8:
                y = g.height - 40
                x += g.plot_width // 2
        return "".join(parts)


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def render_figure_svg(figure: Figure) -> str:
    """Render a :class:`Figure` to a standalone SVG document."""
    return SvgChartBuilder(figure).render()


def save_figure_svg(figure: Figure, path: str) -> None:
    """Render and write an SVG file."""
    with open(path, "w") as handle:
        handle.write(render_figure_svg(figure))
